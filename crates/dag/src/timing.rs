//! Schedule timing analysis: earliest/latest event times, slack, and the
//! *Critical DAG* extraction used by `GetNextPareto` (paper Algorithm 2,
//! steps ② and ③).
//!
//! The analysis operates on an **edge-centric** DAG: nodes are dependency
//! events, and each edge carries a duration (a computation, or a
//! zero-duration pure dependency). Earliest event times double as the
//! execution start times of the schedule, because pipeline DAGs encode
//! per-stage serialization as explicit edges.

use crate::graph::{Dag, DagError, EdgeId, NodeId};

/// Result of a forward/backward pass over an edge-weighted DAG.
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    /// Earliest time each node (event) can occur.
    pub earliest: Vec<f64>,
    /// Latest time each node can occur without extending the makespan.
    pub latest: Vec<f64>,
    /// Total schedule length (`earliest` of the latest sink).
    pub makespan: f64,
}

impl TimingAnalysis {
    /// Runs the critical-path-method pass over `dag`, reading each edge's
    /// duration through `dur`.
    ///
    /// All sources are pinned to time 0 and all sinks to the makespan.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Cyclic`] if the graph is not acyclic.
    pub fn compute<N, E>(
        dag: &Dag<N, E>,
        dur: impl FnMut(EdgeId, &E) -> f64,
    ) -> Result<TimingAnalysis, DagError> {
        let order = dag.topo_order()?;
        Ok(Self::compute_with_order(dag, &order, dur))
    }

    /// [`TimingAnalysis::compute`] with a precomputed topological order —
    /// the fast path for repeated passes over a structurally static graph.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `order` covers every node exactly once.
    pub fn compute_with_order<N, E>(
        dag: &Dag<N, E>,
        order: &[NodeId],
        mut dur: impl FnMut(EdgeId, &E) -> f64,
    ) -> TimingAnalysis {
        debug_assert_eq!(order.len(), dag.node_count());
        let n = dag.node_count();
        let mut earliest = vec![0.0f64; n];
        // Cache durations so the closure runs once per edge.
        let mut durations = vec![0.0f64; dag.edge_count()];
        for r in dag.edge_refs() {
            durations[r.id.index()] = dur(r.id, r.payload);
        }
        for &u in order {
            for e in dag.out_edges(u) {
                let cand = earliest[u.index()] + durations[e.id.index()];
                if cand > earliest[e.dst.index()] {
                    earliest[e.dst.index()] = cand;
                }
            }
        }
        let makespan = earliest.iter().copied().fold(0.0, f64::max);
        let mut latest = vec![makespan; n];
        for &u in order.iter().rev() {
            for e in dag.out_edges(u) {
                let cand = latest[e.dst.index()] - durations[e.id.index()];
                if cand < latest[u.index()] {
                    latest[u.index()] = cand;
                }
            }
        }
        TimingAnalysis {
            earliest,
            latest,
            makespan,
        }
    }

    /// Slack of edge `e = (u, v)` with duration `d`:
    /// `latest[v] - earliest[u] - d`. Zero (within tolerance) means the edge
    /// lies on a critical path.
    pub fn slack(&self, src: NodeId, dst: NodeId, duration: f64) -> f64 {
        self.latest[dst.index()] - self.earliest[src.index()] - duration
    }

    /// True iff the node's occurrence time is fixed (it lies on every
    /// timing-feasible schedule at the same instant).
    pub fn node_is_critical(&self, n: NodeId, tol: f64) -> bool {
        (self.latest[n.index()] - self.earliest[n.index()]).abs() <= tol
    }
}

/// The critical sub-DAG of an edge-centric computation DAG: every edge with
/// zero slack, i.e. every computation that lies on some critical path.
///
/// Reducing the makespan of the full DAG by `τ` is exactly reducing the
/// length of *all* critical paths by `τ` (paper §4.3), so the cut search
/// only needs this subgraph.
#[derive(Debug, Clone)]
pub struct CriticalDag<N, E> {
    /// The filtered graph containing only critical edges.
    pub graph: Dag<N, E>,
    /// Old node id -> new node id (None if dropped).
    pub node_map: Vec<Option<NodeId>>,
    /// For each edge in `graph`, the id of the originating edge in the
    /// full DAG.
    pub edge_origin: Vec<EdgeId>,
}

impl<N: Clone, E: Clone> CriticalDag<N, E> {
    /// Extracts the critical sub-DAG.
    ///
    /// `timing` must come from [`TimingAnalysis::compute`] over the same
    /// graph with the same durations; `tol` is the absolute slack tolerance
    /// below which an edge counts as critical (pick a small fraction of the
    /// unit time `τ`).
    pub fn extract<F>(
        dag: &Dag<N, E>,
        timing: &TimingAnalysis,
        mut dur: F,
        tol: f64,
    ) -> CriticalDag<N, E>
    where
        F: FnMut(EdgeId, &E) -> f64,
    {
        let mut critical = vec![false; dag.edge_count()];
        for r in dag.edge_refs() {
            let d = dur(r.id, r.payload);
            critical[r.id.index()] = timing.slack(r.src, r.dst, d) <= tol;
        }
        let (graph, node_map) = dag.filter_edges(|r| critical[r.id.index()], |_| false);
        // Recover edge origins: filter_edges preserves edge insertion order.
        let mut edge_origin = Vec::with_capacity(graph.edge_count());
        for r in dag.edge_refs() {
            if critical[r.id.index()] {
                edge_origin.push(r.id);
            }
        }
        debug_assert_eq!(edge_origin.len(), graph.edge_count());
        CriticalDag {
            graph,
            node_map,
            edge_origin,
        }
    }
}
