use crate::{CriticalDag, Dag, DagError, NodeId, TimingAnalysis};

fn diamond() -> (Dag<&'static str, f64>, [NodeId; 4]) {
    // s -> a (2.0) -> t (1.0)
    // s -> b (1.0) -> t (1.0)
    let mut g = Dag::new();
    let s = g.add_node("s");
    let a = g.add_node("a");
    let b = g.add_node("b");
    let t = g.add_node("t");
    g.add_edge(s, a, 2.0).unwrap();
    g.add_edge(s, b, 1.0).unwrap();
    g.add_edge(a, t, 1.0).unwrap();
    g.add_edge(b, t, 1.0).unwrap();
    (g, [s, a, b, t])
}

#[test]
fn add_and_query_nodes() {
    let mut g: Dag<u32, ()> = Dag::new();
    let a = g.add_node(10);
    let b = g.add_node(20);
    assert_eq!(g.node_count(), 2);
    assert_eq!(*g.node(a), 10);
    *g.node_mut(b) = 21;
    assert_eq!(*g.node(b), 21);
}

#[test]
fn self_loop_rejected() {
    let mut g: Dag<(), ()> = Dag::new();
    let a = g.add_node(());
    assert_eq!(g.add_edge(a, a, ()), Err(DagError::SelfLoop(a)));
}

#[test]
fn cycle_rejected() {
    let mut g: Dag<(), ()> = Dag::new();
    let a = g.add_node(());
    let b = g.add_node(());
    let c = g.add_node(());
    g.add_edge(a, b, ()).unwrap();
    g.add_edge(b, c, ()).unwrap();
    assert!(matches!(
        g.add_edge(c, a, ()),
        Err(DagError::WouldCycle { .. })
    ));
}

#[test]
fn invalid_node_rejected() {
    let mut g: Dag<(), ()> = Dag::new();
    let a = g.add_node(());
    let ghost = NodeId(99);
    assert_eq!(g.add_edge(a, ghost, ()), Err(DagError::InvalidNode(ghost)));
}

#[test]
fn unchecked_cycle_detected_by_topo() {
    let mut g: Dag<(), ()> = Dag::new();
    let a = g.add_node(());
    let b = g.add_node(());
    g.add_edge_unchecked(a, b, ());
    g.add_edge_unchecked(b, a, ());
    assert_eq!(g.topo_order(), Err(DagError::Cyclic));
}

#[test]
fn topo_order_respects_edges() {
    let (g, _) = diamond();
    let order = g.topo_order().unwrap();
    let pos: Vec<usize> = g
        .node_ids()
        .map(|n| order.iter().position(|&x| x == n).unwrap())
        .collect();
    for e in g.edge_refs() {
        assert!(pos[e.src.index()] < pos[e.dst.index()]);
    }
}

#[test]
fn sources_and_sinks() {
    let (g, [s, _, _, t]) = diamond();
    assert_eq!(g.sources(), vec![s]);
    assert_eq!(g.sinks(), vec![t]);
}

#[test]
fn reachability() {
    let (g, [s, a, b, t]) = diamond();
    assert!(g.is_reachable(s, t));
    assert!(g.is_reachable(a, t));
    assert!(!g.is_reachable(a, b));
    assert!(!g.is_reachable(t, s));
    assert!(g.is_reachable(b, b));
}

#[test]
fn degrees() {
    let (g, [s, a, _, t]) = diamond();
    assert_eq!(g.out_degree(s), 2);
    assert_eq!(g.in_degree(s), 0);
    assert_eq!(g.in_degree(t), 2);
    assert_eq!(g.out_degree(a), 1);
}

#[test]
fn timing_makespan_and_slack() {
    let (g, [s, a, b, t]) = diamond();
    let timing = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    assert_eq!(timing.makespan, 3.0);
    assert_eq!(timing.earliest[t.index()], 3.0);
    assert_eq!(timing.earliest[a.index()], 2.0);
    assert_eq!(timing.earliest[b.index()], 1.0);
    // b can start as late as t=2 without delaying the schedule.
    assert_eq!(timing.latest[b.index()], 2.0);
    assert_eq!(timing.slack(s, b, 1.0), 1.0);
    assert_eq!(timing.slack(s, a, 2.0), 0.0);
}

#[test]
fn node_criticality() {
    let (g, [s, a, b, t]) = diamond();
    let timing = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    assert!(timing.node_is_critical(s, 1e-9));
    assert!(timing.node_is_critical(a, 1e-9));
    assert!(timing.node_is_critical(t, 1e-9));
    assert!(!timing.node_is_critical(b, 1e-9));
}

#[test]
fn critical_dag_drops_slack_path() {
    let (g, _) = diamond();
    let timing = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    let crit = CriticalDag::extract(&g, &timing, |_, &d| d, 1e-9);
    // Only the s->a->t path survives: 2 edges, 3 nodes.
    assert_eq!(crit.graph.edge_count(), 2);
    assert_eq!(crit.graph.node_count(), 3);
    // Edge origins point back into the full graph.
    for (i, r) in crit.graph.edge_refs().enumerate() {
        let orig = g.edge(crit.edge_origin[i]);
        assert_eq!(orig.payload, r.payload);
    }
}

#[test]
fn critical_dag_keeps_parallel_critical_paths() {
    // Two equal-length parallel paths: both must survive.
    let mut g: Dag<(), f64> = Dag::new();
    let s = g.add_node(());
    let a = g.add_node(());
    let b = g.add_node(());
    let t = g.add_node(());
    g.add_edge(s, a, 2.0).unwrap();
    g.add_edge(s, b, 2.0).unwrap();
    g.add_edge(a, t, 1.0).unwrap();
    g.add_edge(b, t, 1.0).unwrap();
    let timing = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    let crit = CriticalDag::extract(&g, &timing, |_, &d| d, 1e-9);
    assert_eq!(crit.graph.edge_count(), 4);
}

#[test]
fn empty_graph_timing() {
    let g: Dag<(), f64> = Dag::new();
    let timing = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    assert_eq!(timing.makespan, 0.0);
}

#[test]
fn single_chain_timing() {
    let mut g: Dag<(), f64> = Dag::new();
    let nodes: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1], 1.5).unwrap();
    }
    let timing = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    assert!((timing.makespan - 6.0).abs() < 1e-12);
    // Everything is critical on a chain.
    for n in g.node_ids() {
        assert!(timing.node_is_critical(n, 1e-9));
    }
}

#[test]
fn filter_edges_forced_node() {
    let (g, [_, _, b, _]) = diamond();
    let (fg, map) = g.filter_edges(|_| false, |n| n == b);
    assert_eq!(fg.node_count(), 1);
    assert_eq!(fg.edge_count(), 0);
    assert!(map[b.index()].is_some());
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random DAG by only ever adding forward edges (i < j).
    fn arb_dag() -> impl Strategy<Value = Dag<(), f64>> {
        (
            2usize..24,
            proptest::collection::vec((any::<u16>(), any::<u16>(), 0.1f64..10.0), 1..80),
        )
            .prop_map(|(n, raw)| {
                let mut g: Dag<(), f64> = Dag::new();
                let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
                for (a, b, d) in raw {
                    let i = (a as usize) % n;
                    let j = (b as usize) % n;
                    if i < j {
                        g.add_edge_unchecked(ids[i], ids[j], d);
                    }
                }
                g
            })
    }

    proptest! {
        #[test]
        fn topo_is_consistent(g in arb_dag()) {
            let order = g.topo_order().unwrap();
            let mut pos = vec![0usize; g.node_count()];
            for (i, n) in order.iter().enumerate() { pos[n.index()] = i; }
            for e in g.edge_refs() {
                prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
            }
        }

        #[test]
        fn earliest_le_latest(g in arb_dag()) {
            let t = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
            for n in g.node_ids() {
                prop_assert!(t.earliest[n.index()] <= t.latest[n.index()] + 1e-9);
            }
        }

        #[test]
        fn slack_nonnegative(g in arb_dag()) {
            let t = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
            for e in g.edge_refs() {
                prop_assert!(t.slack(e.src, e.dst, *e.payload) >= -1e-9);
            }
        }

        #[test]
        fn critical_dag_preserves_makespan(g in arb_dag()) {
            let t = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
            let crit = CriticalDag::extract(&g, &t, |_, &d| d, 1e-9);
            if crit.graph.edge_count() > 0 {
                let ct = TimingAnalysis::compute(&crit.graph, |_, &d| d).unwrap();
                prop_assert!((ct.makespan - t.makespan).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn compute_with_order_matches_compute() {
    let (g, _) = diamond();
    let order = g.topo_order().unwrap();
    let a = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    let b = TimingAnalysis::compute_with_order(&g, &order, |_, &d| d);
    assert_eq!(a.earliest, b.earliest);
    assert_eq!(a.latest, b.latest);
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn deep_chain_timing_is_exact() {
    // A 10k-node chain: stresses the longest-path accumulation and would
    // expose any stack-recursion in the timing pass.
    let mut g: Dag<(), f64> = Dag::new();
    let nodes: Vec<_> = (0..10_000).map(|_| g.add_node(())).collect();
    for w in nodes.windows(2) {
        g.add_edge_unchecked(w[0], w[1], 0.5);
    }
    let t = TimingAnalysis::compute(&g, |_, &d| d).unwrap();
    assert!((t.makespan - 4999.5).abs() < 1e-6);
}
