//! Directed-acyclic-graph substrate for Perseus.
//!
//! Perseus represents one training iteration as a DAG whose nodes are
//! forward/backward computations and whose edges are dependencies (§3.2 of
//! the paper). The frontier algorithm (§4.3) additionally needs:
//!
//! * an **edge-centric** view of the same DAG, where computations live on
//!   edges and nodes are pure synchronization points,
//! * **earliest / latest start** annotation to extract the *Critical DAG*
//!   (computations with zero slack),
//! * longest-path (makespan) evaluation of a schedule.
//!
//! This crate provides those building blocks, generic over node and edge
//! payloads, with no knowledge of GPUs or pipelines.
//!
//! # Examples
//!
//! ```
//! use perseus_dag::Dag;
//!
//! let mut dag: Dag<&str, f64> = Dag::new();
//! let a = dag.add_node("a");
//! let b = dag.add_node("b");
//! dag.add_edge(a, b, 1.5).unwrap();
//! assert_eq!(dag.topo_order().unwrap(), vec![a, b]);
//! ```

mod graph;
mod timing;

pub use graph::{Dag, DagError, EdgeId, EdgeRef, NodeId};
pub use timing::{CriticalDag, TimingAnalysis};

#[cfg(test)]
mod tests;
