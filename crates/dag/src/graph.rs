//! Generic DAG container with index-based node and edge handles.

use std::fmt;

/// Handle to a node inside a [`Dag`].
///
/// Node ids are dense indices assigned in insertion order and remain valid
/// for the lifetime of the graph (nodes are never removed; build a new graph
/// with [`Dag::filter_edges`] instead).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Handle to an edge inside a [`Dag`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Index of this node in the graph's dense node storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Index of this edge in the graph's dense edge storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors produced by DAG construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An operation referenced a node id that does not exist in this graph.
    InvalidNode(NodeId),
    /// Adding the edge would have created a cycle.
    WouldCycle { src: NodeId, dst: NodeId },
    /// A self-loop was requested (`src == dst`).
    SelfLoop(NodeId),
    /// The graph contains a cycle (detected during a topological sort).
    Cyclic,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::InvalidNode(n) => write!(f, "node {n:?} does not exist"),
            DagError::WouldCycle { src, dst } => {
                write!(f, "edge {src:?} -> {dst:?} would create a cycle")
            }
            DagError::SelfLoop(n) => write!(f, "self-loop on {n:?}"),
            DagError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for DagError {}

/// A materialized edge: endpoints plus a reference to its payload.
#[derive(Debug)]
pub struct EdgeRef<'a, E> {
    /// Edge handle.
    pub id: EdgeId,
    /// Tail (source) node.
    pub src: NodeId,
    /// Head (destination) node.
    pub dst: NodeId,
    /// Payload attached to the edge.
    pub payload: &'a E,
}

impl<E> Clone for EdgeRef<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}

// Manual impl: `&E` is always `Copy`, so no `E: Copy` bound is needed
// (the derive would add one).
impl<E> Copy for EdgeRef<'_, E> {}

#[derive(Debug, Clone)]
struct EdgeData<E> {
    src: NodeId,
    dst: NodeId,
    payload: E,
}

/// A directed acyclic graph with payloads on both nodes and edges.
///
/// Acyclicity is enforced lazily: [`Dag::add_edge`] performs a reachability
/// check so the structure can never hold a cycle, which keeps every
/// downstream algorithm (topological sort, longest path) total.
#[derive(Debug, Clone)]
pub struct Dag<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeData<E>>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for Dag<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Dag<N, E> {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            edges: Vec::new(),
            succ: Vec::new(),
            pred: Vec::new(),
        }
    }

    /// Creates an empty DAG with capacity for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Dag {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            succ: Vec::with_capacity(nodes),
            pred: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node carrying `payload` and returns its handle.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(payload);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    fn check_node(&self, n: NodeId) -> Result<(), DagError> {
        if n.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(DagError::InvalidNode(n))
        }
    }

    /// Adds an edge `src -> dst`, rejecting self-loops and cycles.
    ///
    /// Cycle prevention costs a DFS reachability query from `dst` to `src`;
    /// for bulk construction of graphs known to be acyclic (e.g. pipeline
    /// schedules where edges always point forward in time), prefer
    /// [`Dag::add_edge_unchecked`].
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> Result<EdgeId, DagError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(DagError::SelfLoop(src));
        }
        if self.is_reachable(dst, src) {
            return Err(DagError::WouldCycle { src, dst });
        }
        Ok(self.push_edge(src, dst, payload))
    }

    /// Adds an edge without the cycle check.
    ///
    /// The caller must guarantee that `src -> dst` does not close a cycle;
    /// violating this makes later topological queries return
    /// [`DagError::Cyclic`] (it is a logic error, not memory unsafety).
    pub fn add_edge_unchecked(&mut self, src: NodeId, dst: NodeId, payload: E) -> EdgeId {
        debug_assert!(src.index() < self.nodes.len() && dst.index() < self.nodes.len());
        self.push_edge(src, dst, payload)
    }

    fn push_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { src, dst, payload });
        self.succ[src.index()].push(id);
        self.pred[dst.index()].push(id);
        id
    }

    /// Payload of node `n`.
    pub fn node(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }

    /// Mutable payload of node `n`.
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }

    /// Edge endpoints and payload for `e`.
    pub fn edge(&self, e: EdgeId) -> EdgeRef<'_, E> {
        let d = &self.edges[e.index()];
        EdgeRef {
            id: e,
            src: d.src,
            dst: d.dst,
            payload: &d.payload,
        }
    }

    /// Mutable payload of edge `e`.
    pub fn edge_payload_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.index()].payload
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edges.
    pub fn edge_refs(&self) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges.iter().enumerate().map(|(i, d)| EdgeRef {
            id: EdgeId(i as u32),
            src: d.src,
            dst: d.dst,
            payload: &d.payload,
        })
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.succ[n.index()].iter().map(move |&e| self.edge(e))
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.pred[n.index()].iter().map(move |&e| self.edge(e))
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succ[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.pred[n.index()].len()
    }

    /// True iff `to` is reachable from `from` (including `from == to`).
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(u) = stack.pop() {
            for &e in &self.succ[u.index()] {
                let v = self.edges[e.index()].dst;
                if v == to {
                    return true;
                }
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Kahn topological sort.
    ///
    /// Returns [`DagError::Cyclic`] if unchecked edge insertion introduced a
    /// cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, DagError> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.pred[i].len()).collect();
        let mut queue: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &e in &self.succ[u.index()] {
                let v = self.edges[e.index()].dst;
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DagError::Cyclic)
        }
    }

    /// Source nodes (in-degree zero).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Sink nodes (out-degree zero).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// Builds a new DAG retaining only edges for which `keep` returns true,
    /// dropping nodes that end up isolated (unless `keep_node` forces them).
    ///
    /// Returns the filtered graph together with the mapping from old node
    /// ids to new ones (`None` for dropped nodes).
    pub fn filter_edges<F, G>(
        &self,
        mut keep: F,
        mut keep_node: G,
    ) -> (Dag<N, E>, Vec<Option<NodeId>>)
    where
        N: Clone,
        E: Clone,
        F: FnMut(EdgeRef<'_, E>) -> bool,
        G: FnMut(NodeId) -> bool,
    {
        let kept_edges: Vec<EdgeId> = self
            .edge_refs()
            .filter(|r| keep(*r))
            .map(|r| r.id)
            .collect();
        let mut used = vec![false; self.nodes.len()];
        for &e in &kept_edges {
            let d = &self.edges[e.index()];
            used[d.src.index()] = true;
            used[d.dst.index()] = true;
        }
        for n in self.node_ids() {
            if keep_node(n) {
                used[n.index()] = true;
            }
        }
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut out = Dag::with_capacity(self.nodes.len(), kept_edges.len());
        for n in self.node_ids() {
            if used[n.index()] {
                mapping[n.index()] = Some(out.add_node(self.nodes[n.index()].clone()));
            }
        }
        for &e in &kept_edges {
            let d = &self.edges[e.index()];
            let (src, dst) = (
                mapping[d.src.index()].expect("endpoint kept"),
                mapping[d.dst.index()].expect("endpoint kept"),
            );
            out.add_edge_unchecked(src, dst, d.payload.clone());
        }
        (out, mapping)
    }
}
