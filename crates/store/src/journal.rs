//! The write-ahead journal: an append-only file of checksummed,
//! length-prefixed records.
//!
//! # On-disk format
//!
//! ```text
//! file   := header record*
//! header := magic:"PWAL" version:u32le
//! record := len:u32le crc:u32le body          (len = body length in bytes)
//! body   := seq:u64le payload:bytes           (crc = crc32(body))
//! ```
//!
//! Sequence numbers ascend strictly; they are the replay watermark
//! (records at or below a snapshot's sequence are skipped) and the
//! idempotence key (a record whose sequence was already applied is a
//! no-op on replay).
//!
//! # Corruption semantics
//!
//! [`Journal::open`] scans the file record by record and stops at the
//! first record that is torn (length overruns the file), fails its CRC,
//! or decodes to a non-monotone sequence. The file is truncated to the
//! last valid record and the journal continues from there — a crash
//! mid-append or a scribbled tail loses the unreadable suffix, nothing
//! before it. No resynchronization is attempted past the first bad
//! record: once framing is lost, anything after it is untrustworthy.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::checksum::crc32;
use crate::codec::StoreError;

const MAGIC: &[u8; 4] = b"PWAL";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
/// Upper bound on one record body; a length prefix beyond this is treated
/// as corruption rather than an allocation request.
const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// One journal record: its sequence number and opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Strictly ascending sequence number (1-based).
    pub seq: u64,
    /// The event bytes (encoded by the journal's user).
    pub payload: Vec<u8>,
}

/// Counters describing a journal's history since it was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended through this handle.
    pub appends: u64,
    /// Valid records found on disk when the journal was opened.
    pub recovered_records: u64,
    /// Unreadable tail segments discarded at open (0 or 1 per open: once
    /// framing is lost nothing after the first bad record is parseable).
    pub truncated_records: u64,
    /// Bytes the open-time truncation discarded.
    pub truncated_bytes: u64,
}

/// An open write-ahead journal. See the module docs for the format.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Byte offset of the end of the last valid record.
    end: u64,
    next_seq: u64,
    stats: JournalStats,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, scans it, truncates any
    /// unreadable tail, and returns the handle plus every valid record in
    /// order — the replay input.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`]
    /// if the file exists but its header is not a journal header (a
    /// header-less file is *not* silently truncated to empty — that would
    /// destroy a file the caller pointed at by mistake).
    pub fn open(path: impl Into<PathBuf>) -> Result<(Journal, Vec<Record>), StoreError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file_len = file.metadata()?.len();

        let mut stats = JournalStats::default();
        let mut records = Vec::new();
        let mut end = HEADER_LEN;
        let mut next_seq = 1u64;

        if file_len == 0 {
            // Fresh journal: write the header.
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.flush()?;
        } else {
            let mut bytes = Vec::with_capacity(file_len as usize);
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut bytes)?;
            if bytes.len() < HEADER_LEN as usize || &bytes[0..4] != MAGIC {
                return Err(StoreError::corrupt(format!(
                    "{} is not a Perseus journal (bad magic)",
                    path.display()
                )));
            }
            let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
            if version != VERSION {
                return Err(StoreError::corrupt(format!(
                    "unsupported journal version {version}"
                )));
            }
            let mut pos = HEADER_LEN as usize;
            loop {
                match next_record(&bytes, pos, next_seq) {
                    Some((seq, payload, next_pos)) => {
                        records.push(Record {
                            seq,
                            payload: payload.to_vec(),
                        });
                        next_seq = seq + 1;
                        pos = next_pos;
                        end = next_pos as u64;
                    }
                    None => {
                        if pos < bytes.len() {
                            stats.truncated_records = 1;
                            stats.truncated_bytes = (bytes.len() - pos) as u64;
                        }
                        break;
                    }
                }
            }
            stats.recovered_records = records.len() as u64;
            // Truncate the unreadable tail so future appends extend a
            // valid file.
            file.set_len(end)?;
        }
        file.seek(SeekFrom::Start(end))?;
        Ok((
            Journal {
                file,
                path,
                end,
                next_seq,
                stats,
            },
            records,
        ))
    }

    /// Appends a record with the next sequence number; returns that
    /// sequence. The write is flushed to the OS before returning.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failures.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        self.append_with_seq(seq, payload)?;
        Ok(seq)
    }

    /// Appends a record with an explicit sequence number (compaction and
    /// test-journal construction; live appends use [`Journal::append`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failures.
    pub fn append_with_seq(&mut self, seq: u64, payload: &[u8]) -> Result<(), StoreError> {
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(payload);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.end += frame.len() as u64;
        self.next_seq = self.next_seq.max(seq + 1);
        self.stats.appends += 1;
        Ok(())
    }

    /// The sequence number the next [`Journal::append`] will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Counters for this handle (appends, open-time recovery/truncation).
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte length of the valid journal (header + records).
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Forces the journal contents to stable storage (fsync).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the sync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Drops every record at or below `watermark` by atomically rewriting
    /// the journal (called after a snapshot covering those records). The
    /// sequence counter is preserved, so post-compaction appends continue
    /// the same numbering.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn compact_below(&mut self, watermark: u64) -> Result<(), StoreError> {
        // Re-read the surviving tail from our own valid range.
        let mut bytes = Vec::with_capacity(self.end as usize);
        self.file.seek(SeekFrom::Start(0))?;
        std::io::Read::by_ref(&mut self.file)
            .take(self.end)
            .read_to_end(&mut bytes)?;
        let mut keep: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut pos = HEADER_LEN as usize;
        let mut expect = 1u64;
        while let Some((seq, payload, next_pos)) = next_record(&bytes, pos, expect) {
            if seq > watermark {
                keep.push((seq, payload.to_vec()));
            }
            expect = seq + 1;
            pos = next_pos;
        }

        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(MAGIC)?;
            out.write_all(&VERSION.to_le_bytes())?;
            for (seq, payload) in &keep {
                let mut body = Vec::with_capacity(8 + payload.len());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(payload);
                out.write_all(&(body.len() as u32).to_le_bytes())?;
                out.write_all(&crc32(&body).to_le_bytes())?;
                out.write_all(&body)?;
            }
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let next_seq = self.next_seq;
        let stats = self.stats;
        let (reopened, _) = Journal::open(&self.path)?;
        self.file = reopened.file;
        self.end = reopened.end;
        self.next_seq = next_seq.max(reopened.next_seq);
        self.stats = stats;
        Ok(())
    }

    /// Every valid record with sequence strictly greater than
    /// `after_seq`, in order — the replication feed. Re-reads the
    /// journal's own valid range (like [`Journal::compact_below`]), so a
    /// scribbled-but-unflushed tail never ships downstream.
    ///
    /// Compaction may have dropped records at or below a snapshot
    /// watermark; callers asking for a tail older than the oldest
    /// surviving record must fall back to a checkpoint transfer. The
    /// returned records always form a gap-free run ending at the
    /// journal's last appended sequence.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn tail_from(&mut self, after_seq: u64) -> Result<Vec<Record>, StoreError> {
        let mut bytes = Vec::with_capacity(self.end as usize);
        self.file.seek(SeekFrom::Start(0))?;
        std::io::Read::by_ref(&mut self.file)
            .take(self.end)
            .read_to_end(&mut bytes)?;
        self.file.seek(SeekFrom::Start(self.end))?;
        let mut out = Vec::new();
        let mut pos = HEADER_LEN as usize;
        let mut expect = 1u64;
        while let Some((seq, payload, next_pos)) = next_record(&bytes, pos, expect) {
            if seq > after_seq {
                out.push(Record {
                    seq,
                    payload: payload.to_vec(),
                });
            }
            expect = seq + 1;
            pos = next_pos;
        }
        Ok(out)
    }

    /// Chaos hook: writes `garbage` straight into the record stream at
    /// the journal's cursor, simulating a scribbled tail. Every record
    /// appended *after* the scribble is unreachable on the next open
    /// (framing is lost at the garbage), which is exactly the failure
    /// mode [`Journal::open`]'s truncation recovers from.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failures.
    pub fn scribble_garbage(&mut self, garbage: &[u8]) -> Result<(), StoreError> {
        self.file.write_all(garbage)?;
        self.file.flush()?;
        self.end += garbage.len() as u64;
        Ok(())
    }
}

/// Parses the record starting at `pos`, returning `(seq, payload,
/// next_pos)` or `None` if the bytes from `pos` are not a valid record
/// whose sequence is at least `min_seq`.
fn next_record(bytes: &[u8], pos: usize, min_seq: u64) -> Option<(u64, &[u8], usize)> {
    let frame_start = pos;
    if bytes.len() - frame_start < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[frame_start..frame_start + 4].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[frame_start + 4..frame_start + 8].try_into().ok()?);
    if !(8..=MAX_RECORD_LEN).contains(&len) {
        return None;
    }
    let body_start = frame_start + 8;
    let body_end = body_start.checked_add(len as usize)?;
    if body_end > bytes.len() {
        return None; // torn write: record extends past end of file
    }
    let body = &bytes[body_start..body_end];
    if crc32(body) != crc {
        return None;
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().ok()?);
    if seq < min_seq {
        // Sequences ascend strictly; a rewind means the framing drifted
        // onto stale bytes.
        return None;
    }
    Some((seq, &body[8..], body_end))
}
