//! Atomic snapshot files: one checksummed record holding a compacted
//! serialization of the full server state.
//!
//! # On-disk format
//!
//! ```text
//! file := magic:"PSNP" version:u32le len:u64le crc:u32le payload:bytes
//! ```
//!
//! Snapshots are written to a temp file in the same directory and
//! renamed into place, so a crash mid-write leaves the previous snapshot
//! untouched. A snapshot that fails validation (bad magic, short file,
//! CRC mismatch) is reported as [`StoreError::Corrupt`]; the caller is
//! expected to fall back to journal-only recovery rather than abort.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::checksum::crc32;
use crate::codec::StoreError;

const MAGIC: &[u8; 4] = b"PSNP";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 4;

/// Atomically replaces the snapshot at `path` with `payload`.
///
/// The bytes are first written (and fsynced) to `<path>.tmp`, then
/// renamed over `path`, so readers observe either the old snapshot or
/// the new one — never a torn mix.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failures.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> Result<(), StoreError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("snap.tmp");
    {
        let mut out = File::create(&tmp)?;
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(payload.len() as u64).to_le_bytes())?;
        out.write_all(&crc32(payload).to_le_bytes())?;
        out.write_all(payload)?;
        out.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads and validates the snapshot at `path`.
///
/// Returns `Ok(None)` if no snapshot exists (a fresh store).
///
/// # Errors
///
/// [`StoreError::Corrupt`] if the file exists but fails validation
/// (bad magic, unsupported version, truncated payload, CRC mismatch) —
/// callers should treat this as "snapshot unusable, recover from the
/// journal alone"; [`StoreError::Io`] on read failures.
pub fn load_snapshot(path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN || &bytes[0..4] != MAGIC {
        return Err(StoreError::corrupt(format!(
            "{} is not a Perseus snapshot (bad magic or short header)",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if bytes.len() != HEADER_LEN + len {
        return Err(StoreError::corrupt(format!(
            "snapshot payload truncated: header claims {len} bytes, file holds {}",
            bytes.len() - HEADER_LEN
        )));
    }
    let payload = &bytes[HEADER_LEN..];
    if crc32(payload) != crc {
        return Err(StoreError::corrupt("snapshot checksum mismatch"));
    }
    Ok(Some(payload.to_vec()))
}
