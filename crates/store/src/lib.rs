//! Zero-dependency durability substrate for the Perseus planning server.
//!
//! Long-horizon energy schedulers amortize the cost of characterizing a
//! job's Pareto frontier over days or weeks of training; losing that
//! state to a server crash forces a full re-characterization, which is
//! exactly the waste the scheduler exists to avoid. This crate provides
//! the two on-disk primitives the server needs to survive restarts:
//!
//! * a **write-ahead [`Journal`]** — an append-only file of
//!   length-prefixed, CRC-checksummed records, one per state-mutating
//!   event. Opening a journal scans it and *truncates* at the first torn
//!   or corrupted record, so a crash mid-append (or a scribbled tail)
//!   loses at most the unreadable suffix, never the whole file;
//! * **[`snapshot`] files** — a single checksummed record holding a
//!   compacted serialization of the full state, written atomically
//!   (temp file + rename) so a crash mid-snapshot leaves the previous
//!   snapshot intact.
//!
//! Serialization goes through the [`Persist`] trait and the
//! [`ByteWriter`]/[`ByteReader`] codec: fixed-width little-endian
//! integers and `f64::to_bits`, so round trips are **bit-exact** — the
//! property the server's recovery contract (deployments bit-identical to
//! an uninterrupted run) is built on. The crate deliberately has no
//! dependencies and no knowledge of Perseus domain types; domain crates
//! implement [`Persist`] for their own types.

mod checksum;
mod codec;
mod journal;
mod snapshot;

pub use checksum::crc32;
pub use codec::{ByteReader, ByteWriter, Persist, StoreError};
pub use journal::{Journal, JournalStats, Record};
pub use snapshot::{load_snapshot, write_snapshot};

#[cfg(test)]
mod tests;
