//! Unit tests for the codec, journal, and snapshot primitives.

use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{crc32, load_snapshot, write_snapshot, ByteReader, ByteWriter, Journal, Persist};

/// A unique scratch directory per call, cleaned up on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("perseus-store-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn crc32_matches_known_vectors() {
    // Standard CRC-32/IEEE check value.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
    assert_eq!(
        crc32(b"The quick brown fox jumps over the lazy dog"),
        0x414F_A339
    );
}

#[test]
fn codec_round_trips_primitives_bit_exactly() {
    let mut w = ByteWriter::new();
    w.put_u8(0xAB);
    w.put_u32(0xDEAD_BEEF);
    w.put_u64(u64::MAX);
    w.put_f64(-0.0);
    w.put_f64(f64::NAN);
    w.put_f64(f64::MIN_POSITIVE / 2.0); // subnormal
    w.put_bool(true);
    w.put_str("pareto");
    let bytes = w.into_bytes();

    let mut r = ByteReader::new(&bytes);
    assert_eq!(r.get_u8().unwrap(), 0xAB);
    assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
    assert_eq!(r.get_u64().unwrap(), u64::MAX);
    assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
    assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
    assert_eq!(
        r.get_f64().unwrap().to_bits(),
        (f64::MIN_POSITIVE / 2.0).to_bits()
    );
    assert!(r.get_bool().unwrap());
    assert_eq!(r.get_str().unwrap(), "pareto");
    assert!(r.is_exhausted());
}

#[test]
fn codec_rejects_truncation_and_bad_tags() {
    let bytes = 42u64.to_bytes();
    assert!(u64::from_bytes(&bytes[..7]).is_err());

    // Option tag 2 is invalid.
    assert!(Option::<u64>::from_bytes(&[2]).is_err());
    // Bool byte 7 is invalid.
    assert!(bool::from_bytes(&[7]).is_err());

    // A Vec length prefix far beyond the remaining bytes must error, not
    // allocate.
    let mut w = ByteWriter::new();
    w.put_usize(usize::MAX / 2);
    assert!(Vec::<u64>::from_bytes(w.bytes()).is_err());

    // Trailing garbage after a complete value is rejected.
    let mut bytes = 1u32.to_bytes();
    bytes.push(0);
    assert!(u32::from_bytes(&bytes).is_err());
}

#[test]
fn codec_round_trips_containers() {
    let v: Vec<Option<(u64, f64)>> = vec![None, Some((3, 1.5)), Some((u64::MAX, f64::INFINITY))];
    let bytes = v.to_bytes();
    assert_eq!(Vec::<Option<(u64, f64)>>::from_bytes(&bytes).unwrap(), v);

    let s: Vec<String> = vec!["a".into(), String::new(), "journal".into()];
    assert_eq!(Vec::<String>::from_bytes(&s.to_bytes()).unwrap(), s);
}

#[test]
fn journal_appends_and_replays_in_order() {
    let scratch = Scratch::new("replay");
    let path = scratch.path("wal");
    {
        let (mut j, recs) = Journal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert_eq!(j.append(b"one").unwrap(), 1);
        assert_eq!(j.append(b"two").unwrap(), 2);
        assert_eq!(j.append(b"three").unwrap(), 3);
        assert_eq!(j.stats().appends, 3);
    }
    let (j, recs) = Journal::open(&path).unwrap();
    assert_eq!(recs.len(), 3);
    assert_eq!(recs[0].payload, b"one");
    assert_eq!(recs[2].payload, b"three");
    assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), [1, 2, 3]);
    assert_eq!(j.next_seq(), 4);
    assert_eq!(j.stats().recovered_records, 3);
    assert_eq!(j.stats().truncated_records, 0);
}

#[test]
fn journal_truncates_torn_write_at_every_offset() {
    let scratch = Scratch::new("torn");
    let path = scratch.path("wal");
    let full_len = {
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"alpha").unwrap();
        j.append(b"beta-longer-payload").unwrap();
        j.append(b"gamma").unwrap();
        j.len_bytes()
    };
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len() as u64, full_len);

    // Record boundaries: header (8), then each frame is 8 bytes of
    // framing plus 8 bytes of sequence plus the payload.
    let expected: [&[u8]; 3] = [b"alpha", b"beta-longer-payload", b"gamma"];
    let mut boundaries = vec![8usize];
    for p in expected {
        boundaries.push(boundaries.last().unwrap() + 16 + p.len());
    }
    assert_eq!(*boundaries.last().unwrap(), bytes.len());

    // Truncate the file at every possible byte offset and confirm the
    // journal recovers the longest valid prefix without panicking.
    for cut in 8..bytes.len() {
        let torn = scratch.path(&format!("torn-{cut}"));
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        let (j, recs) = Journal::open(&torn).unwrap();
        // The recovered prefix is exactly the records whose frames fit
        // entirely below the cut, in order.
        let n_whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(recs.len(), n_whole, "cut at {cut}");
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.payload, expected[i]);
        }
        // Truncation stats fire exactly when the cut left a torn frame.
        let torn_tail = !boundaries.contains(&cut);
        let stats = j.stats();
        assert_eq!(
            stats.truncated_records,
            u64::from(torn_tail),
            "cut at {cut}"
        );
        assert_eq!(stats.truncated_bytes > 0, torn_tail, "cut at {cut}");
    }
}

#[test]
fn journal_truncates_corrupted_tail_and_keeps_appending() {
    let scratch = Scratch::new("corrupt");
    let path = scratch.path("wal");
    {
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"keep-me").unwrap();
        j.append(b"flip-me").unwrap();
    }
    // Flip a byte inside the second record's payload.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let (mut j, recs) = Journal::open(&path).unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].payload, b"keep-me");
    assert_eq!(j.stats().truncated_records, 1);

    // The journal stays usable: the next append lands after the valid
    // prefix and is recovered cleanly on the next open.
    j.append(b"after-recovery").unwrap();
    drop(j);
    let (_, recs) = Journal::open(&path).unwrap();
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[1].payload, b"after-recovery");
    assert_eq!(recs[1].seq, 2);
}

#[test]
fn journal_scribble_poisons_only_the_suffix() {
    let scratch = Scratch::new("scribble");
    let path = scratch.path("wal");
    {
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"before").unwrap();
        j.scribble_garbage(&[0xFF; 64]).unwrap();
        j.append(b"lost-to-scribble").unwrap();
    }
    let (_, recs) = Journal::open(&path).unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].payload, b"before");
}

#[test]
fn journal_rejects_foreign_files() {
    let scratch = Scratch::new("foreign");
    let path = scratch.path("not-a-journal");
    std::fs::write(&path, b"this is somebody else's data, do not truncate it").unwrap();
    assert!(Journal::open(&path).is_err());
    // The file is untouched.
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..4], b"this");
}

#[test]
fn journal_compaction_preserves_tail_and_sequence() {
    let scratch = Scratch::new("compact");
    let path = scratch.path("wal");
    let (mut j, _) = Journal::open(&path).unwrap();
    for i in 0..10u8 {
        j.append(&[i]).unwrap();
    }
    j.compact_below(7).unwrap();
    assert_eq!(j.next_seq(), 11);
    j.append(b"post-compact").unwrap();
    drop(j);

    let (_, recs) = Journal::open(&path).unwrap();
    assert_eq!(
        recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
        [8, 9, 10, 11]
    );
    assert_eq!(recs[0].payload, [7u8]);
    assert_eq!(recs[3].payload, b"post-compact");
}

#[test]
fn journal_duplicate_and_stale_sequences_are_cut() {
    let scratch = Scratch::new("stale-seq");
    let path = scratch.path("wal");
    {
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"first").unwrap();
        j.append(b"second").unwrap();
        // A record whose sequence rewinds (stale bytes surfacing after a
        // botched rewrite) must stop the scan.
        j.append_with_seq(1, b"stale").unwrap();
        j.append_with_seq(5, b"unreachable").unwrap();
    }
    let (_, recs) = Journal::open(&path).unwrap();
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[1].payload, b"second");
}

#[test]
fn snapshot_round_trips_and_survives_rewrites() {
    let scratch = Scratch::new("snap");
    let path = scratch.path("state.snap");
    assert!(load_snapshot(&path).unwrap().is_none());

    write_snapshot(&path, b"generation-1").unwrap();
    assert_eq!(load_snapshot(&path).unwrap().unwrap(), b"generation-1");

    write_snapshot(&path, b"generation-2-with-more-bytes").unwrap();
    assert_eq!(
        load_snapshot(&path).unwrap().unwrap(),
        b"generation-2-with-more-bytes"
    );
}

#[test]
fn snapshot_detects_corruption() {
    let scratch = Scratch::new("snap-corrupt");
    let path = scratch.path("state.snap");
    write_snapshot(&path, b"precious state bytes").unwrap();

    // Flip one payload byte: CRC must catch it.
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    f.seek(SeekFrom::End(-1)).unwrap();
    f.write_all(&[0x00]).unwrap();
    drop(f);
    assert!(load_snapshot(&path).is_err());

    // A short / truncated snapshot is corrupt, not a panic.
    std::fs::write(&path, b"PS").unwrap();
    assert!(load_snapshot(&path).is_err());
}

#[test]
fn journal_tail_from_ships_exactly_the_suffix() {
    let scratch = Scratch::new("tail");
    let path = scratch.path("wal");
    let (mut j, _) = Journal::open(&path).unwrap();
    for payload in [b"one".as_ref(), b"two", b"three", b"four"] {
        j.append(payload).unwrap();
    }

    // The full feed, an interior suffix, and the empty tail.
    let all = j.tail_from(0).unwrap();
    assert_eq!(all.iter().map(|r| r.seq).collect::<Vec<_>>(), [1, 2, 3, 4]);
    assert_eq!(all[0].payload, b"one");
    let tail = j.tail_from(2).unwrap();
    assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), [3, 4]);
    assert_eq!(tail[1].payload, b"four");
    assert!(j.tail_from(4).unwrap().is_empty());
    assert!(j.tail_from(99).unwrap().is_empty());

    // Tailing must not disturb the append cursor.
    j.append(b"five").unwrap();
    let tail = j.tail_from(4).unwrap();
    assert_eq!(tail.len(), 1);
    assert_eq!(tail[0].payload, b"five");
}

#[test]
fn journal_tail_from_never_ships_scribbled_suffix() {
    let scratch = Scratch::new("tail-scribble");
    let path = scratch.path("wal");
    let (mut j, _) = Journal::open(&path).unwrap();
    j.append(b"good").unwrap();
    j.append(b"also good").unwrap();
    // Garbage past the valid range: replication must never ship it.
    j.scribble_garbage(&[0xFF; 32]).unwrap();
    let tail = j.tail_from(0).unwrap();
    assert_eq!(tail.len(), 2);
    assert_eq!(tail[1].payload, b"also good");
}

#[test]
fn journal_tail_from_after_compaction_starts_late() {
    let scratch = Scratch::new("tail-compact");
    let path = scratch.path("wal");
    let (mut j, _) = Journal::open(&path).unwrap();
    for payload in [b"one".as_ref(), b"two", b"three", b"four"] {
        j.append(payload).unwrap();
    }
    j.compact_below(2).unwrap();
    // A follower at seq 1 asks for 2..: compaction dropped it, so the
    // tail starts later than after_seq + 1 — the caller's signal to fall
    // back to a checkpoint transfer.
    let tail = j.tail_from(1).unwrap();
    assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), [3, 4]);
    assert_ne!(tail[0].seq, 2);
}
