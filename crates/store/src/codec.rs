//! The binary codec behind every journal record and snapshot: fixed-width
//! little-endian integers, bit-pattern `f64`s, and length-prefixed
//! sequences.
//!
//! The codec optimizes for *determinism*, not compactness: the same value
//! always encodes to the same bytes (no varints whose length depends on
//! magnitude-after-arithmetic, no float formatting), so serialized state
//! can be compared byte-for-byte across runs — the foundation of the
//! crash-recovery differential tests.

use std::fmt;

/// Errors from decoding or from the journal/snapshot files.
#[derive(Debug)]
pub enum StoreError {
    /// The byte stream ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// The bytes decoded to a structurally invalid value (bad tag,
    /// violated invariant, implausible length).
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            StoreError::Corrupt { reason } => write!(f, "corrupt record: {reason}"),
            StoreError::Io(e) => write!(f, "store I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// A [`StoreError::Corrupt`] with the given reason.
    pub fn corrupt(reason: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            reason: reason.into(),
        }
    }
}

/// Growable byte sink the [`Persist`] encoders write into.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (platform-independent width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over an encoded byte slice the [`Persist`] decoders read from.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::UnexpectedEof { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values that overflow
    /// the platform's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| StoreError::corrupt(format!("usize out of range: {v}")))
    }

    /// Reads a length encoded as `u64` and sanity-checks it against the
    /// bytes actually remaining, so a corrupt length can never trigger a
    /// huge allocation.
    pub fn get_len(&mut self, elem_min_bytes: usize) -> Result<usize, StoreError> {
        let n = self.get_usize()?;
        if n.saturating_mul(elem_min_bytes.max(1)) > self.remaining() {
            return Err(StoreError::corrupt(format!(
                "sequence length {n} exceeds remaining input ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` from its exact IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let n = self.get_len(1)?;
        let b = self.take(n, "str bytes")?;
        String::from_utf8(b.to_vec()).map_err(|_| StoreError::corrupt("string is not valid UTF-8"))
    }
}

/// Bit-exact binary serialization. Implemented by every type that rides
/// in the journal or a snapshot.
///
/// Contract: `decode(encode(x)) == x` *bit-for-bit* — in particular `f64`
/// fields round-trip through [`f64::to_bits`], so NaNs, signed zeros, and
/// subnormals all survive. `decode` must never panic on malformed input;
/// it returns [`StoreError::Corrupt`] instead (the journal treats any
/// decode failure in the tail as a torn write and truncates).
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Decodes one value from `r`, advancing the cursor.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnexpectedEof`] if the input ends early;
    /// [`StoreError::Corrupt`] for invalid tags or violated invariants.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes a value that must consume the whole slice.
    ///
    /// # Errors
    ///
    /// Decode errors, or [`StoreError::Corrupt`] on trailing garbage.
    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(StoreError::corrupt(format!(
                "{} trailing bytes after value",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

impl Persist for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_u8()
    }
}

impl Persist for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_u32()
    }
}

impl Persist for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_u64()
    }
}

impl Persist for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_usize()
    }
}

impl Persist for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_f64()
    }
}

impl Persist for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_bool()
    }
}

impl Persist for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.get_str()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(StoreError::corrupt(format!("invalid Option tag {b}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        // Every encodable value is at least one byte, which bounds the
        // allocation a corrupt length can cause.
        let n = r.get_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}
