//! CRC-32 (IEEE 802.3 polynomial), the journal's record checksum.
//!
//! Table-driven, one table built at first use. CRC-32 detects every
//! single-bit error and all burst errors shorter than 32 bits — more than
//! enough to tell a torn or scribbled journal tail from a valid record,
//! which is the only job it has here (integrity, not authentication).

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/IEEE (zlib, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32/IEEE of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ t[((c ^ u32::from(b)) & 0xFF) as usize];
    }
    !c
}
