//! Chrome-trace export: the bridge between the telemetry subsystem's
//! [`TraceWriter`] and trace viewers (`chrome://tracing`, Perfetto).
//!
//! [`TraceWriter`] accumulates closed spans as complete events;
//! [`write_chrome_trace`] streams them out as a Chrome trace JSON
//! document, ready to load into a viewer. The export is a pure
//! serialization step — it never mutates the writer, so a long-running
//! process can export snapshots repeatedly.

use std::io::{self, Write};

use perseus_telemetry::TraceWriter;

/// Writes `writer`'s accumulated spans as a Chrome trace JSON document.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn write_chrome_trace(writer: &TraceWriter, out: &mut impl Write) -> io::Result<()> {
    out.write_all(writer.to_chrome_json().as_bytes())
}

/// Renders `writer`'s accumulated spans as Chrome trace JSON in memory —
/// a convenience over [`write_chrome_trace`] for tests and small tools.
pub fn chrome_trace_string(writer: &TraceWriter) -> String {
    writer.to_chrome_json()
}
