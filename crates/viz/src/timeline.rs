//! Execution-timeline SVG (the paper's Figure 1 / Figure 10 style): one
//! lane per pipeline stage, computations as rectangles, fill color encoding
//! average power (blue = blocking-level, red = TDP).

use perseus_dag::NodeId;
use perseus_gpu::GpuSpec;
use perseus_pipeline::{node_start_times, CompKind, PipeNode, PipelineDag};

/// Styling and scale options.
#[derive(Debug, Clone)]
pub struct TimelineStyle {
    /// Pixel width of the drawing area.
    pub width: f64,
    /// Pixel height of one stage lane.
    pub lane_height: f64,
    /// Title above the timeline.
    pub title: String,
}

impl Default for TimelineStyle {
    fn default() -> Self {
        TimelineStyle {
            width: 900.0,
            lane_height: 34.0,
            title: String::new(),
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Blue→red color ramp for power in `[p_lo, p_hi]`.
fn power_color(p: f64, p_lo: f64, p_hi: f64) -> String {
    let x = ((p - p_lo) / (p_hi - p_lo).max(1e-9)).clamp(0.0, 1.0);
    let r = (40.0 + 215.0 * x) as u8;
    let g = (70.0 + 40.0 * (1.0 - (2.0 * x - 1.0).abs())) as u8;
    let b = (220.0 - 180.0 * x) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Renders one iteration of `pipe` as a Figure-1-style SVG.
///
/// * `dur(node)` — realized duration of each node, seconds;
/// * `energy(node)` — realized energy, joules (average power = energy/dur
///   drives the fill color);
/// * `gpu` supplies the color scale: blocking power (blue end) to TDP
///   (red end). The lane background is the blocking color, so gaps read as
///   "blocking on communication" exactly like the paper's figure.
pub fn timeline_svg(
    pipe: &PipelineDag,
    gpu: &GpuSpec,
    dur: impl Fn(NodeId, &PipeNode) -> f64,
    energy: impl Fn(NodeId, &PipeNode) -> f64,
    style: &TimelineStyle,
) -> String {
    let (starts, makespan) = node_start_times(&pipe.dag, &dur);
    let lanes = pipe.n_stages;
    let margin_l = 52.0;
    let margin_t = if style.title.is_empty() { 16.0 } else { 40.0 };
    let width = style.width;
    let height = margin_t + lanes as f64 * (style.lane_height + 6.0) + 28.0;
    let x = |t: f64| margin_l + t / makespan.max(1e-12) * (width - margin_l - 12.0);

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\" font-family=\"sans-serif\" font-size=\"11\">\n\
         <rect width=\"{width}\" height=\"{height}\" fill=\"white\"/>\n"
    ));
    if !style.title.is_empty() {
        out.push_str(&format!(
            "<text x=\"{}\" y=\"22\" text-anchor=\"middle\" font-size=\"14\" \
             font-weight=\"bold\">{}</text>\n",
            width / 2.0,
            esc(&style.title)
        ));
    }

    let blocking_color = power_color(gpu.blocking_w, gpu.blocking_w, gpu.tdp_w);
    for lane in 0..lanes {
        let ly = margin_t + lane as f64 * (style.lane_height + 6.0);
        out.push_str(&format!(
            "<text x=\"6\" y=\"{:.1}\">S{lane}</text>\n\
             <rect x=\"{margin_l}\" y=\"{ly:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
             fill=\"{blocking_color}\" opacity=\"0.35\"/>\n",
            ly + style.lane_height * 0.65,
            width - margin_l - 12.0,
            style.lane_height,
        ));
    }

    for id in pipe.dag.node_ids() {
        let node = pipe.dag.node(id);
        let Some(stage) = node.stage() else { continue };
        let d = dur(id, node);
        if d <= 0.0 {
            continue;
        }
        let p = energy(id, node) / d;
        let fill = power_color(p, gpu.blocking_w, gpu.tdp_w);
        let (x0, x1) = (x(starts[id.index()]), x(starts[id.index()] + d));
        let ly = margin_t + stage as f64 * (style.lane_height + 6.0);
        let label = match node {
            PipeNode::Comp(c) => match c.kind {
                CompKind::Forward => format!("F{}", c.microbatch),
                CompKind::Backward => format!("B{}", c.microbatch),
                CompKind::Recompute => format!("R{}", c.microbatch),
            },
            PipeNode::Fixed { label, .. } => label.clone(),
            _ => String::new(),
        };
        out.push_str(&format!(
            "<rect x=\"{x0:.1}\" y=\"{ly:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{fill}\" \
             stroke=\"#222\" stroke-width=\"0.4\"><title>{} ({:.1} ms, {:.0} W)</title></rect>\n",
            (x1 - x0).max(0.8),
            style.lane_height,
            esc(&label),
            d * 1e3,
            p
        ));
        if x1 - x0 > 18.0 {
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" fill=\"white\">{}</text>\n",
                (x0 + x1) / 2.0,
                ly + style.lane_height * 0.65,
                esc(&label)
            ));
        }
    }
    out.push_str(&format!(
        "<text x=\"{margin_l}\" y=\"{:.1}\">0 s</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{makespan:.3} s</text>\n</svg>\n",
        height - 8.0,
        width - 12.0,
        height - 8.0,
    ));
    out
}
