//! Stacked-bar energy-breakdown charts (the paper's Figure 7 style):
//! one bar per (workload, policy) with its joules split into useful /
//! intrinsic-bloat / extrinsic-bloat segments, plus an optional static
//! sleep segment for Kareus plans that park GPUs through bubbles.

/// One stacked bar: a labeled energy split in joules.
#[derive(Debug, Clone)]
pub struct BreakdownBar {
    /// Label under the bar.
    pub label: String,
    /// Useful joules (bottom segment).
    pub useful_j: f64,
    /// Intrinsic-bloat joules (middle segment).
    pub intrinsic_j: f64,
    /// Extrinsic-bloat joules (upper segment).
    pub extrinsic_j: f64,
    /// Static joules spent parked in sleep states (top segment; zero
    /// for frequency-only policies, where it is simply not drawn).
    pub sleep_j: f64,
}

impl BreakdownBar {
    fn total(&self) -> f64 {
        self.useful_j + self.intrinsic_j + self.extrinsic_j + self.sleep_j
    }
}

/// A breakdown chart: several stacked bars on a shared energy axis.
#[derive(Debug, Clone)]
pub struct BreakdownPlot {
    /// Title above the chart.
    pub title: String,
    /// Bars, drawn left to right.
    pub bars: Vec<BreakdownBar>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 78.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 44.0;
const MARGIN_B: f64 = 72.0;
/// Segment colors, bottom to top: useful, intrinsic, extrinsic, sleep.
const SEGMENTS: [(&str, &str); 4] = [
    ("useful", "#2ca02c"),
    ("intrinsic bloat", "#ff7f0e"),
    ("extrinsic bloat", "#d62728"),
    ("static sleep", "#1f77b4"),
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// "Nice" tick spacing covering `span` with 4–8 ticks.
fn tick_step(span: f64) -> f64 {
    if span <= 0.0 || !span.is_finite() {
        return 1.0;
    }
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.5 {
        2.0
    } else if norm < 7.5 {
        5.0
    } else {
        10.0
    };
    step * mag
}

/// Renders the breakdown chart as a standalone SVG document.
///
/// An empty plot (or bars whose segments are all zero / non-finite)
/// renders axes only, so callers never special-case degenerate data.
pub fn breakdown_svg(plot: &BreakdownPlot) -> String {
    let e_hi = plot
        .bars
        .iter()
        .map(BreakdownBar::total)
        .filter(|t| t.is_finite())
        .fold(0.0f64, f64::max);
    let e_hi = if e_hi > 0.0 { e_hi * 1.04 } else { 1.0 };

    let inner_w = WIDTH - MARGIN_L - MARGIN_R;
    let inner_h = HEIGHT - MARGIN_T - MARGIN_B;
    let y = |e: f64| HEIGHT - MARGIN_B - e / e_hi * inner_h;

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">\n"
    ));
    out.push_str(&format!(
        "<rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>\n<text x=\"{}\" y=\"24\" \
         text-anchor=\"middle\" font-size=\"15\" font-weight=\"bold\">{}</text>\n",
        WIDTH / 2.0,
        esc(&plot.title)
    ));
    out.push_str(&format!(
        "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{inner_w}\" height=\"{inner_h}\" \
         fill=\"none\" stroke=\"#333\"/>\n"
    ));

    // Energy ticks + gridlines.
    let e_step = tick_step(e_hi);
    let mut e = 0.0;
    while e <= e_hi {
        out.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{0:.1}\" x2=\"{1}\" y2=\"{0:.1}\" stroke=\"#ddd\"/>\n\
             <text x=\"{2}\" y=\"{3:.1}\" text-anchor=\"end\">{e:.0}</text>\n",
            y(e),
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y(e) + 4.0,
        ));
        e += e_step;
    }
    out.push_str(&format!(
        "<text x=\"16\" y=\"{0}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {0})\">energy (J)</text>\n",
        (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
    ));

    // Bars: each slot gets an equal share of the inner width, the bar
    // fills 60% of its slot.
    let n = plot.bars.len().max(1) as f64;
    let slot = inner_w / n;
    let bar_w = slot * 0.6;
    for (i, bar) in plot.bars.iter().enumerate() {
        let x0 = MARGIN_L + slot * (i as f64 + 0.5) - bar_w / 2.0;
        let mut acc = 0.0;
        for ((_, color), seg) in
            SEGMENTS
                .iter()
                .zip([bar.useful_j, bar.intrinsic_j, bar.extrinsic_j, bar.sleep_j])
        {
            if !seg.is_finite() || seg <= 0.0 {
                continue;
            }
            let (y_lo, y_hi) = (y(acc), y(acc + seg));
            out.push_str(&format!(
                "<rect x=\"{x0:.1}\" y=\"{y_hi:.1}\" width=\"{bar_w:.1}\" height=\"{:.1}\" \
                 fill=\"{color}\" stroke=\"#333\" stroke-width=\"0.5\"/>\n",
                y_lo - y_hi,
            ));
            acc += seg;
        }
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            x0 + bar_w / 2.0,
            HEIGHT - MARGIN_B + 18.0,
            esc(&bar.label)
        ));
    }

    // Legend.
    for (i, (label, color)) in SEGMENTS.iter().enumerate() {
        let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
        out.push_str(&format!(
            "<rect x=\"{0}\" y=\"{1:.1}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
             <text x=\"{2}\" y=\"{3:.1}\">{label}</text>\n",
            WIDTH - MARGIN_R - 150.0,
            ly - 10.0,
            WIDTH - MARGIN_R - 132.0,
            ly,
        ));
    }
    out.push_str("</svg>\n");
    out
}
