//! Frontier scatter/line plots (the paper's Figure 9 / 11 / 12 style).

/// One plotted series of `(time_s, energy_j)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in any order; they are drawn connected after sorting by time.
    pub points: Vec<(f64, f64)>,
}

/// A frontier plot: several series on shared time/energy axes.
#[derive(Debug, Clone)]
pub struct FrontierPlot {
    /// Title above the plot.
    pub title: String,
    /// Series to draw (color assigned by index).
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 78.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 44.0;
const MARGIN_B: f64 = 56.0;
const PALETTE: [&str; 6] = [
    "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// "Nice" tick spacing covering `span` with 4–8 ticks.
fn tick_step(span: f64) -> f64 {
    if span <= 0.0 || !span.is_finite() {
        return 1.0;
    }
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.5 {
        2.0
    } else if norm < 7.5 {
        5.0
    } else {
        10.0
    };
    step * mag
}

/// Renders the plot as a standalone SVG document.
///
/// Empty series (or a plot with no finite points) renders axes only, so
/// callers never need to special-case degenerate data.
pub fn frontier_svg(plot: &FrontierPlot) -> String {
    let pts: Vec<(f64, f64)> = plot
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(t, e)| t.is_finite() && e.is_finite())
        .collect();
    let (t_lo, t_hi) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(t, _)| {
            (lo.min(t), hi.max(t))
        });
    let (e_lo, e_hi) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, e)| {
            (lo.min(e), hi.max(e))
        });
    let (t_lo, t_hi) = if t_lo.is_finite() && t_hi > t_lo {
        (t_lo, t_hi)
    } else {
        (0.0, 1.0)
    };
    let (e_lo, e_hi) = if e_lo.is_finite() && e_hi > e_lo {
        (e_lo, e_hi)
    } else {
        (0.0, 1.0)
    };
    // Pad 4% so extreme points don't sit on the frame.
    let (t_pad, e_pad) = ((t_hi - t_lo) * 0.04, (e_hi - e_lo) * 0.04);
    let (t_lo, t_hi) = (t_lo - t_pad, t_hi + t_pad);
    let (e_lo, e_hi) = (e_lo - e_pad, e_hi + e_pad);

    let x = |t: f64| MARGIN_L + (t - t_lo) / (t_hi - t_lo) * (WIDTH - MARGIN_L - MARGIN_R);
    let y =
        |e: f64| HEIGHT - MARGIN_B - (e - e_lo) / (e_hi - e_lo) * (HEIGHT - MARGIN_T - MARGIN_B);

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">\n"
    ));
    out.push_str(&format!(
        "<rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>\n<text x=\"{}\" y=\"24\" \
         text-anchor=\"middle\" font-size=\"15\" font-weight=\"bold\">{}</text>\n",
        WIDTH / 2.0,
        esc(&plot.title)
    ));

    // Axes frame.
    out.push_str(&format!(
        "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{}\" height=\"{}\" fill=\"none\" \
         stroke=\"#333\"/>\n",
        WIDTH - MARGIN_L - MARGIN_R,
        HEIGHT - MARGIN_T - MARGIN_B
    ));

    // Ticks + gridlines.
    let t_step = tick_step(t_hi - t_lo);
    let mut t = (t_lo / t_step).ceil() * t_step;
    while t <= t_hi {
        out.push_str(&format!(
            "<line x1=\"{0:.1}\" y1=\"{1}\" x2=\"{0:.1}\" y2=\"{2}\" stroke=\"#ddd\"/>\n\
             <text x=\"{0:.1}\" y=\"{3}\" text-anchor=\"middle\">{4:.3}</text>\n",
            x(t),
            MARGIN_T,
            HEIGHT - MARGIN_B,
            HEIGHT - MARGIN_B + 18.0,
            t
        ));
        t += t_step;
    }
    let e_step = tick_step(e_hi - e_lo);
    let mut e = (e_lo / e_step).ceil() * e_step;
    while e <= e_hi {
        out.push_str(&format!(
            "<line x1=\"{1}\" y1=\"{0:.1}\" x2=\"{2}\" y2=\"{0:.1}\" stroke=\"#ddd\"/>\n\
             <text x=\"{3}\" y=\"{4:.1}\" text-anchor=\"end\">{5:.0}</text>\n",
            y(e),
            MARGIN_L,
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y(e) + 4.0,
            e
        ));
        e += e_step;
    }
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">iteration time (s)</text>\n",
        (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
        HEIGHT - 12.0
    ));
    out.push_str(&format!(
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">energy (J)</text>\n",
        (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
        (MARGIN_T + HEIGHT - MARGIN_B) / 2.0
    ));

    // Series.
    for (i, s) in plot.series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut sorted: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|(a, b)| a.is_finite() && b.is_finite())
            .collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        if sorted.len() > 1 {
            let path: Vec<String> = sorted
                .iter()
                .map(|&(t, e)| format!("{:.1},{:.1}", x(t), y(e)))
                .collect();
            out.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
                path.join(" ")
            ));
        }
        for &(t, e) in &sorted {
            out.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{color}\"/>\n",
                x(t),
                y(e)
            ));
        }
        // Legend entry.
        let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
        out.push_str(&format!(
            "<rect x=\"{0}\" y=\"{1:.1}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
             <text x=\"{2}\" y=\"{3:.1}\">{4}</text>\n",
            WIDTH - MARGIN_R - 150.0,
            ly - 10.0,
            WIDTH - MARGIN_R - 132.0,
            ly,
            esc(&s.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}
