//! SVG visualization for Perseus: Figure 1-style execution timelines with
//! power-coded computations, and Figure 9-style iteration time–energy
//! frontier plots. No dependencies beyond the workspace — the SVG is
//! emitted by hand.
//!
//! # Examples
//!
//! ```
//! use perseus_viz::{frontier_svg, FrontierPlot, Series};
//!
//! let svg = frontier_svg(&FrontierPlot {
//!     title: "GPT-3 1.3B".into(),
//!     series: vec![Series {
//!         label: "perseus".into(),
//!         points: vec![(1.0, 120.0), (1.2, 100.0), (1.5, 90.0)],
//!     }],
//! });
//! assert!(svg.starts_with("<svg"));
//! ```

mod breakdown;
mod plot;
mod timeline;
mod trace;

pub use breakdown::{breakdown_svg, BreakdownBar, BreakdownPlot};
pub use plot::{frontier_svg, FrontierPlot, Series};
pub use timeline::{timeline_svg, TimelineStyle};
pub use trace::{chrome_trace_string, write_chrome_trace};

#[cfg(test)]
mod tests;
