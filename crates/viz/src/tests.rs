use perseus_gpu::GpuSpec;
use perseus_pipeline::{CompKind, PipeNode, PipelineBuilder, ScheduleKind};

use crate::plot::{frontier_svg, FrontierPlot, Series};
use crate::timeline::{timeline_svg, TimelineStyle};

fn plot_with(points: Vec<(f64, f64)>) -> FrontierPlot {
    FrontierPlot {
        title: "test".into(),
        series: vec![Series {
            label: "a".into(),
            points,
        }],
    }
}

#[test]
fn frontier_svg_is_wellformed() {
    let svg = frontier_svg(&plot_with(vec![(1.0, 100.0), (1.5, 80.0), (2.0, 70.0)]));
    assert!(svg.starts_with("<svg"));
    assert!(svg.trim_end().ends_with("</svg>"));
    assert_eq!(svg.matches("<circle").count(), 3);
    assert_eq!(svg.matches("<polyline").count(), 1);
    assert!(svg.contains("iteration time (s)"));
    assert!(svg.contains("energy (J)"));
}

#[test]
fn frontier_svg_escapes_labels() {
    let mut plot = plot_with(vec![(1.0, 2.0)]);
    plot.title = "a < b & \"c\"".into();
    plot.series[0].label = "x<y>".into();
    let svg = frontier_svg(&plot);
    assert!(svg.contains("a &lt; b &amp; &quot;c&quot;"));
    assert!(svg.contains("x&lt;y&gt;"));
    assert!(!svg.contains("a < b"));
}

#[test]
fn frontier_svg_handles_degenerate_input() {
    // Empty, single-point, and NaN-containing series must render axes
    // without panicking.
    for points in [
        vec![],
        vec![(1.0, 1.0)],
        vec![(f64::NAN, 1.0), (1.0, f64::INFINITY)],
    ] {
        let svg = frontier_svg(&plot_with(points));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }
}

#[test]
fn frontier_svg_multiple_series_get_distinct_colors() {
    let plot = FrontierPlot {
        title: "t".into(),
        series: vec![
            Series {
                label: "perseus".into(),
                points: vec![(1.0, 3.0), (2.0, 2.0)],
            },
            Series {
                label: "zeus".into(),
                points: vec![(1.0, 4.0), (2.0, 3.0)],
            },
        ],
    };
    let svg = frontier_svg(&plot);
    assert!(svg.contains("#d62728"));
    assert!(svg.contains("#1f77b4"));
    assert!(svg.contains("perseus"));
    assert!(svg.contains("zeus"));
}

fn unit_dur(_: perseus_dag::NodeId, n: &PipeNode) -> f64 {
    match n {
        PipeNode::Comp(c) => match c.kind {
            CompKind::Forward | CompKind::Recompute => 0.01,
            CompKind::Backward => 0.02,
        },
        PipeNode::Fixed { time_s, .. } => *time_s,
        _ => 0.0,
    }
}

#[test]
fn timeline_svg_draws_every_computation() {
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 3, 4)
        .build()
        .unwrap();
    let gpu = GpuSpec::a100_pcie();
    let svg = timeline_svg(
        &pipe,
        &gpu,
        unit_dur,
        |id, n| unit_dur(id, n) * 250.0, // flat 250 W
        &TimelineStyle {
            title: "1F1B".into(),
            ..Default::default()
        },
    );
    assert!(svg.starts_with("<svg"));
    // 3 lane backgrounds + 24 computation rects.
    assert_eq!(svg.matches("<rect").count(), 1 + 3 + 24);
    assert!(svg.contains(">S0<") && svg.contains(">S2<"));
    assert!(svg.contains("1F1B"));
    assert!(svg.contains("<title>F0 ("));
}

#[test]
fn timeline_power_colors_span_blue_to_red() {
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 2, 2)
        .build()
        .unwrap();
    let gpu = GpuSpec::a100_pcie();
    // Forward at blocking power, backward at TDP: fills must differ.
    let svg = timeline_svg(
        &pipe,
        &gpu,
        unit_dur,
        |id, n| match n {
            PipeNode::Comp(c) if c.kind == CompKind::Forward => unit_dur(id, n) * gpu.blocking_w,
            _ => unit_dur(id, n) * gpu.tdp_w,
        },
        &TimelineStyle::default(),
    );
    // Cold end (blocking) and hot end (TDP) of the ramp both appear.
    let cold = svg.matches("#2846dc").count();
    let hot = svg.matches("#ff46").count();
    assert!(cold > 0, "expected cold-colored forwards\n{svg}");
    assert!(hot > 0, "expected hot-colored backwards");
}

#[test]
fn chrome_trace_export_is_valid_and_repeatable() {
    use std::sync::Arc;

    use perseus_telemetry::{span, Telemetry, TraceWriter};

    let tel = Telemetry::enabled();
    let writer = Arc::new(TraceWriter::new());
    tel.add_sink(Arc::clone(&writer) as Arc<dyn perseus_telemetry::TelemetrySink>);
    drop(span!(tel, "characterize", job = "gpt3-xl"));

    let json = crate::chrome_trace_string(&writer);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"characterize\""));
    assert!(json.contains("\"ph\":\"X\""));

    let mut buf = Vec::new();
    crate::write_chrome_trace(&writer, &mut buf).unwrap();
    assert_eq!(String::from_utf8(buf).unwrap(), json);
    // Export is read-only: the writer still holds its event.
    assert_eq!(writer.len(), 1);
}

mod breakdown {
    use crate::breakdown::{breakdown_svg, BreakdownBar, BreakdownPlot};

    fn bar(label: &str, u: f64, i: f64, e: f64) -> BreakdownBar {
        BreakdownBar {
            label: label.into(),
            useful_j: u,
            intrinsic_j: i,
            extrinsic_j: e,
            sleep_j: 0.0,
        }
    }

    #[test]
    fn breakdown_svg_stacks_segments_per_bar() {
        let svg = breakdown_svg(&BreakdownPlot {
            title: "Figure 7".into(),
            bars: vec![
                bar("all-max", 100.0, 20.0, 30.0),
                bar("perseus", 100.0, 5.0, 10.0),
            ],
        });
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 2 bars x 3 drawn segments, plus 4 legend swatches, frame,
        // background; the zero sleep segment is legend-only.
        assert_eq!(svg.matches("#2ca02c").count(), 3); // 2 useful + legend
        assert_eq!(svg.matches("#ff7f0e").count(), 3);
        assert_eq!(svg.matches("#d62728").count(), 3);
        assert_eq!(svg.matches("#1f77b4").count(), 1); // legend only
        assert!(svg.contains("all-max") && svg.contains("perseus"));
        assert!(svg.contains("extrinsic bloat"));
        assert!(svg.contains("energy (J)"));
    }

    #[test]
    fn breakdown_svg_draws_static_sleep_as_its_own_segment() {
        let mut kareus = bar("kareus", 100.0, 5.0, 10.0);
        kareus.sleep_j = 4.0;
        let svg = breakdown_svg(&BreakdownPlot {
            title: "Kareus".into(),
            bars: vec![bar("perseus", 100.0, 5.0, 10.0), kareus],
        });
        // One sleep rect for the Kareus bar plus the legend swatch.
        assert_eq!(svg.matches("#1f77b4").count(), 2);
        assert!(svg.contains("static sleep"));
    }

    #[test]
    fn breakdown_svg_skips_empty_segments_and_escapes() {
        let svg = breakdown_svg(&BreakdownPlot {
            title: "a < b".into(),
            bars: vec![bar("x<y>", 50.0, 0.0, f64::NAN)],
        });
        // Only the useful segment is drawn: one bar rect + legend swatch.
        assert_eq!(svg.matches("#2ca02c").count(), 2);
        assert_eq!(svg.matches("#ff7f0e").count(), 1); // legend only
        assert!(svg.contains("a &lt; b"));
        assert!(svg.contains("x&lt;y&gt;"));
    }

    #[test]
    fn breakdown_svg_handles_degenerate_plots() {
        for bars in [vec![], vec![bar("z", 0.0, 0.0, 0.0)]] {
            let svg = breakdown_svg(&BreakdownPlot {
                title: "t".into(),
                bars,
            });
            assert!(svg.starts_with("<svg"));
            assert!(svg.trim_end().ends_with("</svg>"));
        }
    }
}
