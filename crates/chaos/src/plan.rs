//! Seeded fault plans: the deterministic schedule of everything that will
//! go wrong during a chaos run.
//!
//! A [`FaultPlan`] is a pure function of its `u64` seed (plus the run's
//! shape): the same seed always yields byte-identical event streams, so a
//! failing chaos run is replayed exactly by its seed alone. Seed 0 is
//! reserved for the empty plan — a chaos run at seed 0 must be
//! indistinguishable from a fault-free emulation run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use perseus_cluster::StragglerCause;
use perseus_gpu::{FreqMHz, GpuSpec};

/// One injectable failure mode. Mirrors the trouble §2.3 attributes to
/// production clusters (thermal capping, input stalls, announced
/// slowdowns) plus the control-plane faults a real Perseus deployment
/// must survive: lost/slow/crashing characterization traffic and
/// unsynchronized clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A pipeline becomes the straggler for the given root cause.
    StragglerSpike {
        /// Pipeline hit by the spike.
        pipeline: usize,
        /// Root cause (determines the effective `T'`).
        cause: StragglerCause,
    },
    /// A previously-straggling pipeline recovers to full speed.
    StragglerRecover {
        /// Pipeline that recovers.
        pipeline: usize,
    },
    /// A `submit_profiles` call is lost in flight; the client must
    /// retry and the server must keep serving the old frontier meanwhile.
    DropSubmission,
    /// A `submit_profiles` call stalls this long before characterizing;
    /// short client timeouts race a resubmission against it.
    DelaySubmission {
        /// Stall length in milliseconds (real time on the worker pool).
        millis: u64,
    },
    /// The characterization worker panics mid-task; the server must
    /// contain it and degrade to the last deployed frontier.
    PanicWorker,
    /// Datacenter power management caps every GPU's SM clock; frontier
    /// points above the cap become unrealizable and must be re-clamped.
    FreqCap {
        /// The imposed cap.
        cap: FreqMHz,
    },
    /// The emulated cluster clock skews by this many seconds (negative =
    /// backwards); pending straggler timers must survive it.
    ClockSkew {
        /// Skew in seconds.
        skew_s: f64,
    },
    /// The server process dies and is immediately reopened from its
    /// durable directory; all recovered state (frontier, stragglers,
    /// clock, deployment versions) must be bit-identical to the
    /// pre-crash state. On a non-durable run the harness rebuilds the
    /// server from scratch and re-seeds it instead. Only scheduled by
    /// [`FaultPlan::from_seed_durable`].
    CrashRestart,
    /// Garbage is scribbled over the write-ahead journal's append cursor
    /// (a torn write / bit rot in the tail). Appends after the scribble
    /// are unreachable at the next open; recovery must truncate to the
    /// last valid record without panicking. No-op on a non-durable run.
    /// Only scheduled by [`FaultPlan::from_seed_durable`].
    CorruptJournalTail {
        /// Bytes of garbage to scribble.
        len: usize,
    },
    /// A sustained straggler: the pipeline slows to `degree ×` its normal
    /// speed and *stays* slow until an explicit
    /// [`FaultKind::StragglerRecover`]. This is the drift-detection
    /// stimulus — a step change the streaming detectors must flag within
    /// a bounded number of iterations. Never drawn by the seeded
    /// constructors (their streams are byte-stable); scheduled explicitly
    /// via [`FaultPlan::from_events`].
    DriftBurst {
        /// Pipeline hit by the sustained slowdown.
        pipeline: usize,
        /// Slowdown factor (> 1.0).
        degree: f64,
    },
    /// The leader is killed mid-run and a replication follower is
    /// promoted in its place: on a durable run the harness ships the
    /// leader's journal to a fresh follower, drops the leader, promotes
    /// the follower ([`FollowerServer::promote`]
    /// — bounded tail replay, never from genesis), and rewires the
    /// client to the promoted server. On an in-memory run there is no
    /// journal to ship, so the harness rebuilds from scratch like
    /// [`FaultKind::CrashRestart`]. Never drawn by the seeded
    /// constructors (their streams are byte-stable); scheduled
    /// explicitly via [`FaultPlan::from_events`] — the `ha_suite` path.
    ///
    /// [`FollowerServer::promote`]: perseus_server::FollowerServer::promote
    LeaderFailover,
}

/// A fault scheduled at a specific iteration of the chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Iteration (0-based) at whose start the fault fires.
    pub at_iteration: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// The full, deterministic schedule of faults for one chaos run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Derives the plan for a run of `iterations` iterations over
    /// `n_pipelines` data-parallel pipelines on `gpu`. Seed 0 yields the
    /// empty plan; any other seed yields roughly one fault every four
    /// iterations, drawn uniformly over every [`FaultKind`].
    pub fn from_seed(seed: u64, iterations: usize, n_pipelines: usize, gpu: &GpuSpec) -> FaultPlan {
        Self::from_seed_impl(seed, iterations, n_pipelines, gpu, 8)
    }

    /// [`FaultPlan::from_seed`] extended with the durability faults
    /// ([`FaultKind::CrashRestart`], [`FaultKind::CorruptJournalTail`]).
    /// A separate constructor so that `from_seed`'s event stream for any
    /// given seed stays byte-stable — the CI golden traces pin it.
    pub fn from_seed_durable(
        seed: u64,
        iterations: usize,
        n_pipelines: usize,
        gpu: &GpuSpec,
    ) -> FaultPlan {
        Self::from_seed_impl(seed, iterations, n_pipelines, gpu, 10)
    }

    /// Shared derivation: draws uniformly over the first `n_kinds` fault
    /// kinds. Arms 0–7 consume exactly the draws they always did, so
    /// `from_seed_impl(.., 8)` reproduces the historical `from_seed`
    /// stream bit-for-bit.
    fn from_seed_impl(
        seed: u64,
        iterations: usize,
        n_pipelines: usize,
        gpu: &GpuSpec,
        n_kinds: usize,
    ) -> FaultPlan {
        if seed == 0 || iterations == 0 {
            return FaultPlan {
                seed,
                events: Vec::new(),
            };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let n_events = (iterations / 4).max(1);
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let at_iteration = rng.gen_range(0..iterations);
            let kind = match rng.gen_range(0..n_kinds) {
                0 => FaultKind::StragglerSpike {
                    pipeline: rng.gen_range(0..n_pipelines.max(1)),
                    cause: StragglerCause::Slowdown {
                        degree: 1.0 + rng.gen_range(0.05..0.6),
                    },
                },
                1 => FaultKind::StragglerSpike {
                    pipeline: rng.gen_range(0..n_pipelines.max(1)),
                    cause: StragglerCause::ThermalThrottle {
                        freq_cap: random_freq(&mut rng, gpu),
                    },
                },
                2 => FaultKind::StragglerRecover {
                    pipeline: rng.gen_range(0..n_pipelines.max(1)),
                },
                3 => FaultKind::DropSubmission,
                4 => FaultKind::DelaySubmission {
                    millis: rng.gen_range(1..20),
                },
                5 => FaultKind::PanicWorker,
                6 => FaultKind::FreqCap {
                    cap: random_freq(&mut rng, gpu),
                },
                7 => FaultKind::ClockSkew {
                    skew_s: rng.gen_range(0.0..20.0) - 10.0,
                },
                8 => FaultKind::CrashRestart,
                _ => FaultKind::CorruptJournalTail {
                    len: rng.gen_range(1..64),
                },
            };
            events.push(FaultEvent { at_iteration, kind });
        }
        // Stable sort: same-iteration events keep their generation order,
        // so the stream is a pure function of the seed.
        events.sort_by_key(|e| e.at_iteration);
        FaultPlan { seed, events }
    }

    /// A hand-scripted plan: exactly `events`, replayed in iteration
    /// order. The scripted path is how the observability suite injects a
    /// [`FaultKind::DriftBurst`] at a known iteration — no seed derives
    /// one, so the seeded streams stay byte-stable.
    pub fn from_events(seed: u64, mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at_iteration);
        FaultPlan { seed, events }
    }

    /// The seed this plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, sorted by iteration.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults (always true for seed 0).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A supported frequency in the upper half of `gpu`'s range — low enough
/// to bite (it invalidates the frontier's fast points), high enough that
/// capped schedules stay realizable without degenerating the run.
fn random_freq(rng: &mut StdRng, gpu: &GpuSpec) -> FreqMHz {
    let lo = u64::from(gpu.min_freq_mhz + (gpu.max_freq_mhz - gpu.min_freq_mhz) / 2);
    let hi = u64::from(gpu.max_freq_mhz);
    gpu.clamp_freq(FreqMHz(rng.gen_range(lo..hi.max(lo + 1)) as u32))
}
