use perseus_cluster::{ClusterConfig, Emulator, Policy};
use perseus_core::FrontierOptions;
use perseus_gpu::GpuSpec;
use perseus_models::zoo;
use perseus_pipeline::ScheduleKind;
use perseus_server::SubmissionFault;

use crate::harness::ScriptedInjector;
use crate::{run_chaos, ChaosConfig, FaultKind, FaultPlan};
use perseus_server::FaultInjector;

fn small_config() -> ClusterConfig {
    ClusterConfig {
        model: zoo::bert_base(8),
        gpu: GpuSpec::a100_pcie(),
        n_stages: 4,
        n_microbatches: 6,
        n_pipelines: 4,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions {
            tau_s: Some(2e-3),
            max_iters: 50_000,
            stretch: true,
            warm_start: true,
        },
    }
}

/// A tempdir unique to this test invocation (pid + per-process counter),
/// so parallel test binaries and repeated runs never share state.
fn unique_test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("perseus-chaos-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create unique test dir");
    dir
}

#[test]
fn fault_plan_is_deterministic_and_seed_zero_is_empty() {
    let gpu = GpuSpec::a100_pcie();
    let a = FaultPlan::from_seed(99, 100, 4, &gpu);
    let b = FaultPlan::from_seed(99, 100, 4, &gpu);
    assert_eq!(a.events(), b.events());
    assert!(!a.is_empty());
    // Events are sorted and land within the run.
    for pair in a.events().windows(2) {
        assert!(pair[0].at_iteration <= pair[1].at_iteration);
    }
    assert!(a.events().iter().all(|e| e.at_iteration < 100));
    assert!(FaultPlan::from_seed(0, 100, 4, &gpu).is_empty());
    // Different seeds diverge (xoshiro makes collisions vanishingly rare).
    let c = FaultPlan::from_seed(100, 100, 4, &gpu);
    assert_ne!(a.events(), c.events());
}

#[test]
fn scripted_injector_defaults_to_fault_free() {
    let inj = ScriptedInjector::new();
    assert_eq!(inj.submission_fault("job", 1), SubmissionFault::None);
    inj.push(SubmissionFault::Drop);
    inj.push(SubmissionFault::Panic);
    assert_eq!(inj.submission_fault("job", 2), SubmissionFault::Drop);
    assert_eq!(inj.submission_fault("job", 3), SubmissionFault::Panic);
    assert_eq!(inj.submission_fault("job", 4), SubmissionFault::None);
    assert_eq!(inj.injected(), 2);
}

/// Differential check over the whole planner registry: the cached,
/// `T'`-independent [`PlanOutput`](perseus_core::PlanOutput) selected at a
/// deadline must deploy exactly the schedule a fresh `plan()` would at
/// that same deadline, across a 50-deadline sweep spanning below `T_min`
/// to beyond `T*`.
#[test]
fn cached_select_matches_fresh_plan_across_deadline_sweep() {
    let emu = Emulator::new(small_config()).unwrap();
    let ctx = emu.ctx();
    let (t_min, t_star) = (emu.frontier().t_min(), emu.frontier().t_star());
    let planners: Vec<_> = emu.planners().iter().collect();
    assert!(planners.len() >= 6, "default registry holds all policies");
    for (name, planner) in planners {
        let cached = emu.plan_of(Policy::custom(name)).unwrap();
        let fresh = planner.plan(&ctx).unwrap();
        for i in 0..50 {
            let t = 0.8 * t_min + (1.5 * t_star - 0.8 * t_min) * (i as f64) / 49.0;
            let a = cached.select(Some(t));
            let b = fresh.select(Some(t));
            assert_eq!(a.freqs, b.freqs, "{name} diverged at deadline {t}");
            assert!(
                (a.time_s - b.time_s).abs() < 1e-12 && (a.compute_j - b.compute_j).abs() < 1e-12,
                "{name} re-planned differently at deadline {t}"
            );
        }
    }
}

#[test]
fn seed_zero_run_matches_fault_free_emulation_exactly() {
    let mut emu = Emulator::new(small_config()).unwrap();
    let fault_free = emu.report_with_belief(Policy::Perseus, None, None).unwrap();
    let cfg = ChaosConfig {
        seed: 0,
        iterations: 20,
        ..Default::default()
    };
    let report = run_chaos(&mut emu, &cfg).unwrap();
    assert_eq!(report.faults_scheduled, 0);
    assert_eq!(report.faults_injected, 0);
    assert_eq!(report.degraded_lookups, 0);
    assert_eq!(report.client_retries, 0);
    // Exact equality: seed 0 takes the identical code path per iteration
    // (accumulate in the same order the harness does).
    let (mut expect_e, mut expect_t) = (0.0, 0.0);
    for _ in 0..20 {
        expect_e += fault_free.total_j();
        expect_t += fault_free.sync_time_s;
    }
    assert_eq!(report.total_energy_j, expect_e);
    assert_eq!(report.total_time_s, expect_t);
}

#[test]
fn nonzero_seed_survives_and_accounts_every_fault() {
    let mut emu = Emulator::new(small_config()).unwrap();
    let cfg = ChaosConfig {
        seed: 1337,
        iterations: 40,
        ..Default::default()
    };
    let report = run_chaos(&mut emu, &cfg).unwrap();
    assert!(report.faults_scheduled > 0);
    assert_eq!(report.faults_injected, report.faults_scheduled);
    assert_eq!(report.notifications_answered, report.notifications_sent);
    // The server absorbed exactly the server-directed faults of the plan.
    let server_kinds = FaultPlan::from_seed(1337, 40, 4, &GpuSpec::a100_pcie())
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                FaultKind::DropSubmission
                    | FaultKind::DelaySubmission { .. }
                    | FaultKind::PanicWorker
                    | FaultKind::FreqCap { .. }
                    | FaultKind::ClockSkew { .. }
            )
        })
        .count() as u64;
    assert_eq!(report.server_faults_absorbed, server_kinds);
    assert!(report.total_energy_j.is_finite() && report.total_energy_j >= 0.0);
    assert!(report.min_iter_time_s >= report.fault_free_critical_path_s - 1e-9);
}

/// The first seed whose fault plan schedules both a frequency cap and a
/// straggler spike within the run — found deterministically, so the test
/// never depends on a hand-picked magic seed staying lucky.
fn seed_with_cap_and_straggler(iterations: usize) -> u64 {
    let gpu = GpuSpec::a100_pcie();
    (1..500)
        .find(|&seed| {
            let plan = FaultPlan::from_seed(seed, iterations, 4, &gpu);
            let cap = plan
                .events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::FreqCap { .. }));
            let spike = plan
                .events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::StragglerSpike { .. }));
            cap && spike
        })
        .expect("some seed below 500 schedules both a freq cap and a straggler spike")
}

/// Warm-started incremental solving is an optimization, never a behavior
/// change: a seeded chaos run (frequency cap + straggler spike both in
/// the plan) produces bit-identical energy and time whether the frontier
/// was characterized with warm starts or from scratch.
#[test]
fn warm_started_chaos_run_is_bit_identical_to_cold() {
    let iterations = 40;
    let seed = seed_with_cap_and_straggler(iterations);
    let run = |warm_start: bool| {
        let mut cluster = small_config();
        cluster.frontier.warm_start = warm_start;
        let mut emu = Emulator::new(cluster).unwrap();
        let cfg = ChaosConfig {
            seed,
            iterations,
            ..Default::default()
        };
        run_chaos(&mut emu, &cfg).unwrap()
    };
    let warm = run(true);
    let cold = run(false);
    assert!(warm.faults_injected > 0, "seed {seed} must inject faults");
    assert_eq!(warm.total_energy_j.to_bits(), cold.total_energy_j.to_bits());
    assert_eq!(warm.total_time_s.to_bits(), cold.total_time_s.to_bits());
    assert_eq!(
        warm.min_iter_time_s.to_bits(),
        cold.min_iter_time_s.to_bits()
    );
    assert_eq!(
        warm.fault_free_critical_path_s.to_bits(),
        cold.fault_free_critical_path_s.to_bits()
    );
    assert_eq!(warm.faults_scheduled, cold.faults_scheduled);
    assert_eq!(warm.faults_injected, cold.faults_injected);
    assert_eq!(warm.server_faults_absorbed, cold.server_faults_absorbed);
    assert_eq!(warm.degraded_lookups, cold.degraded_lookups);
    assert_eq!(warm.notifications_sent, cold.notifications_sent);
    assert_eq!(warm.notifications_answered, cold.notifications_answered);
    assert_eq!(warm.client_retries, cold.client_retries);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        // Under ANY seeded fault plan: the run completes (no panic
        // escapes the server), energy stays finite and non-negative, and
        // no iteration beats the fault-free critical path.
        #[test]
        fn chaos_runs_preserve_energy_and_time_invariants(
            seed in 1usize..1_000_000,
            iterations in 8usize..24,
        ) {
            let mut emu = Emulator::new(small_config()).unwrap();
            let cfg = ChaosConfig {
                seed: seed as u64,
                iterations,
                ..Default::default()
            };
            let report = run_chaos(&mut emu, &cfg).unwrap();
            prop_assert_eq!(report.faults_injected, report.faults_scheduled);
            prop_assert_eq!(report.notifications_answered, report.notifications_sent);
            prop_assert!(report.total_energy_j.is_finite());
            prop_assert!(report.total_energy_j >= 0.0);
            prop_assert!(report.total_time_s.is_finite());
            prop_assert!(
                report.min_iter_time_s >= report.fault_free_critical_path_s - 1e-9,
                "iteration time {} beat the fault-free critical path {}",
                report.min_iter_time_s,
                report.fault_free_critical_path_s
            );
        }
    }
}

/// Differential: the `degraded_lookups` count in the [`ChaosReport`]
/// (read from the server's own atomics) must equal the
/// `perseus_server_degraded_lookups_total` telemetry counter — the two
/// observation paths may never drift apart.
#[test]
fn degraded_lookups_report_matches_telemetry_counter() {
    let tel = perseus_telemetry::Telemetry::enabled();
    let mut emu = Emulator::with_telemetry(small_config(), tel.clone()).unwrap();
    let cfg = ChaosConfig {
        seed: 1337,
        iterations: 40,
        ..Default::default()
    };
    let report = run_chaos(&mut emu, &cfg).unwrap();
    let snap = tel.snapshot();
    let counted = snap
        .value_of("perseus_server_degraded_lookups_total", &[("job", "chaos")])
        .unwrap_or(0.0);
    assert_eq!(counted, report.degraded_lookups as f64);
    // The chaos server shares the telemetry pipe end to end: its worker
    // spans landed under the "chaos" job label too.
    if report.server_faults_absorbed > 0 {
        assert!(
            snap.value_of(
                "perseus_span_calls_total",
                &[("job", "chaos"), ("span", "characterize")]
            )
            .unwrap_or(0.0)
                >= 1.0
        );
    }
}

mod durable {
    use perseus_server::DurabilityStats;

    use super::*;

    /// The first seed whose durable fault plan schedules both a
    /// [`FaultKind::CrashRestart`] and a [`FaultKind::CorruptJournalTail`]
    /// within the run — found deterministically, so the test never
    /// depends on a hand-picked magic seed staying lucky.
    fn seed_with_durability_faults(iterations: usize) -> u64 {
        let gpu = GpuSpec::a100_pcie();
        (1..500)
            .find(|&seed| {
                let plan = FaultPlan::from_seed_durable(seed, iterations, 4, &gpu);
                let crash = plan
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::CrashRestart));
                let scribble = plan
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::CorruptJournalTail { .. }));
                crash && scribble
            })
            .expect("some seed below 500 schedules both durability faults")
    }

    /// The headline robustness gate: a durable chaos run that is killed
    /// and recovered mid-flight (and has garbage scribbled over its
    /// journal tail) completes, fires every scheduled fault, and accounts
    /// for every crash and corruption it absorbed.
    #[test]
    fn durable_run_survives_crashes_and_journal_corruption() {
        let iterations = 40;
        let seed = seed_with_durability_faults(iterations);
        let gpu = GpuSpec::a100_pcie();
        let plan = FaultPlan::from_seed_durable(seed, iterations, 4, &gpu);
        let crashes = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CrashRestart))
            .count() as u64;
        let scribbles = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::CorruptJournalTail { .. }))
            .count() as u64;

        let dir = unique_test_dir("durable-chaos");
        let mut emu = Emulator::new(small_config()).unwrap();
        let cfg = ChaosConfig {
            seed,
            iterations,
            durable_dir: Some(dir.clone()),
            ..Default::default()
        };
        let report = run_chaos(&mut emu, &cfg).unwrap();
        assert_eq!(report.faults_injected, report.faults_scheduled);
        assert_eq!(report.crashes_survived, crashes);
        assert_eq!(report.journal_corruptions, scribbles);
        // Every post-crash boot found durable state and recovered it.
        assert_eq!(report.durability.recoveries, crashes);
        assert!(report.durability.journal_appends > 0);
        assert!(report.total_energy_j > 0.0);
        assert!(report.min_iter_time_s >= report.fault_free_critical_path_s - 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Durability is invisible to the planning path: a fault-free run
    /// produces bit-identical energy and time whether or not the server
    /// journals to disk.
    #[test]
    fn fault_free_durable_run_matches_in_memory() {
        let mut emu = Emulator::new(small_config()).unwrap();
        let mem = run_chaos(
            &mut emu,
            &ChaosConfig {
                seed: 0,
                iterations: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(mem.durability, DurabilityStats::default());

        let dir = unique_test_dir("durable-id");
        let mut emu = Emulator::new(small_config()).unwrap();
        let dur = run_chaos(
            &mut emu,
            &ChaosConfig {
                seed: 0,
                iterations: 10,
                durable_dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .unwrap();

        assert_eq!(mem.total_energy_j.to_bits(), dur.total_energy_j.to_bits());
        assert_eq!(mem.total_time_s.to_bits(), dur.total_time_s.to_bits());
        assert_eq!(mem.min_iter_time_s.to_bits(), dur.min_iter_time_s.to_bits());
        assert_eq!(dur.crashes_survived, 0);
        assert_eq!(dur.journal_corruptions, 0);
        // ...but the journal really was written behind the scenes.
        assert!(dur.durability.journal_appends >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A durable chaos run is replayable end to end: the same seed into a
    /// fresh directory reproduces the identical energy outcome, even
    /// though the run crashes, recovers, and eats journal corruption
    /// along the way. This is the recovery contract (bit-identical
    /// deployments) observed through the emulator's energy accounting.
    #[test]
    fn durable_run_is_reproducible_across_directories() {
        let iterations = 40;
        let seed = seed_with_durability_faults(iterations);
        let run = |tag: &str| {
            let dir = unique_test_dir(tag);
            let mut emu = Emulator::new(small_config()).unwrap();
            let cfg = ChaosConfig {
                seed,
                iterations,
                durable_dir: Some(dir.clone()),
                ..Default::default()
            };
            let report = run_chaos(&mut emu, &cfg).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            report
        };
        let a = run("repro-a");
        let b = run("repro-b");
        assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());
        assert_eq!(a.total_time_s.to_bits(), b.total_time_s.to_bits());
        assert_eq!(a.crashes_survived, b.crashes_survived);
        assert_eq!(a.journal_corruptions, b.journal_corruptions);
        assert_eq!(a.server_faults_absorbed, b.server_faults_absorbed);
    }
}

mod flight {
    use super::*;

    /// The acceptance gate of the flight recorder: a chaos-seeded run
    /// writes a post-mortem dump, and the degraded bookkeeping inside it
    /// (per-sample `degraded_lookups` deltas) sums to exactly the
    /// `degraded_lookups` telemetry counter — three observation paths
    /// (server atomics, telemetry counter, flight record) that may never
    /// drift apart.
    #[test]
    fn chaos_run_dumps_flight_record_consistent_with_degraded_counter() {
        let tel = perseus_telemetry::Telemetry::enabled();
        let mut emu = Emulator::with_telemetry(small_config(), tel.clone()).unwrap();
        let dir = unique_test_dir("flight-dump");
        let dump = dir.join("postmortem.json");
        let cfg = ChaosConfig {
            seed: 1337,
            iterations: 40,
            flight_dump: Some(dump.clone()),
            ..Default::default()
        };
        let report = run_chaos(&mut emu, &cfg).unwrap();
        assert!(report.faults_injected > 0);

        // The dump exists and is the snapshot's own JSON rendering.
        let written = std::fs::read_to_string(&dump).expect("post-mortem dump written");
        assert!(written.contains("\"samples\": ["));
        assert_eq!(written, report.flight.to_json());

        // One sample per iteration, in order, none evicted at this size.
        assert_eq!(report.flight.samples.len(), 40);
        assert_eq!(report.flight.dropped, 0);
        assert!(report
            .flight
            .samples
            .iter()
            .enumerate()
            .all(|(i, s)| s.iteration == i as u64));

        // Degraded bookkeeping: flight record == server atomics ==
        // telemetry counter; every recorded fault is accounted for.
        assert_eq!(report.flight.degraded_lookups(), report.degraded_lookups);
        let counted = tel
            .snapshot()
            .value_of("perseus_server_degraded_lookups_total", &[("job", "chaos")])
            .unwrap_or(0.0);
        assert_eq!(report.flight.degraded_lookups() as f64, counted);
        assert_eq!(report.flight.faults(), report.faults_injected);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Ledger conservation end to end under seeded chaos (straggler
    /// spikes, frequency caps, clock skew, worker faults): the recorded
    /// useful + intrinsic + extrinsic joules re-sum to the run's energy
    /// accumulator, which was computed by the independent report path.
    #[test]
    fn flight_samples_conserve_run_energy_under_faults() {
        for seed in [7u64, 1337] {
            let mut emu = Emulator::new(small_config()).unwrap();
            let cfg = ChaosConfig {
                seed,
                iterations: 24,
                ..Default::default()
            };
            let report = run_chaos(&mut emu, &cfg).unwrap();
            assert_eq!(report.flight.samples.len(), 24);
            let recorded: f64 = report.flight.samples.iter().map(|s| s.total_j()).sum();
            assert!(
                (recorded - report.total_energy_j).abs() <= 1e-9 * report.total_energy_j,
                "seed {seed}: flight record sums to {recorded} J, run accumulated {} J",
                report.total_energy_j
            );
            for s in &report.flight.samples {
                assert!(s.useful_j.is_finite() && s.useful_j >= 0.0);
                assert!(s.intrinsic_j.is_finite() && s.intrinsic_j >= 0.0);
                assert!(s.extrinsic_j.is_finite() && s.extrinsic_j >= 0.0);
                assert!(s.freq_min_mhz <= s.freq_max_mhz);
                assert!(s.freq_max_mhz > 0, "schedule assigns real frequencies");
                assert!(s.sync_time_s > 0.0);
            }
        }
    }

    /// A fault-free run records its time series but writes no post-mortem:
    /// dumping is an incident artifact, not a steady-state side effect.
    #[test]
    fn fault_free_run_records_but_never_dumps() {
        let mut emu = Emulator::new(small_config()).unwrap();
        let dir = unique_test_dir("no-dump");
        let dump = dir.join("never-written.json");
        let cfg = ChaosConfig {
            seed: 0,
            iterations: 10,
            flight_dump: Some(dump.clone()),
            ..Default::default()
        };
        let report = run_chaos(&mut emu, &cfg).unwrap();
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.flight.samples.len(), 10);
        assert!(report.flight.samples.iter().all(|s| !s.degraded));
        assert_eq!(report.flight.faults(), 0);
        assert!(!dump.exists(), "fault-free runs leave no post-mortem");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Frequency caps interact with Kareus sleep: a cap re-clamps every
/// cached plan and the kareus plan's sleep windows are recomputed against
/// the capped (stretched) timeline. Under an identical fault plan that
/// includes a cap and a straggler spike, the kareus run survives every
/// fault and never spends more energy than frequency-only Perseus — the
/// sleep lane only ever subtracts from idle draw.
#[test]
fn kareus_policy_rides_out_freq_caps_and_never_exceeds_perseus() {
    let iterations = 40;
    let seed = seed_with_cap_and_straggler(iterations);
    let run = |policy: Policy| {
        let mut emu = Emulator::new(small_config()).unwrap();
        let cfg = ChaosConfig {
            seed,
            iterations,
            policy,
            ..Default::default()
        };
        let report = run_chaos(&mut emu, &cfg).unwrap();
        (emu, report)
    };
    let (emu_kareus, kareus) = run(Policy::Kareus);
    let (_, perseus) = run(Policy::Perseus);
    assert!(kareus.faults_injected > 0, "seed {seed} must inject faults");
    assert_eq!(kareus.faults_injected, perseus.faults_injected);
    assert_eq!(kareus.notifications_answered, kareus.notifications_sent);
    assert!(kareus.total_energy_j.is_finite());
    assert!(
        kareus.total_energy_j <= perseus.total_energy_j + 1e-6,
        "kareus {} > perseus {}",
        kareus.total_energy_j,
        perseus.total_energy_j
    );
    // Iteration *time* is untouched: sleep fills bubbles, never the
    // critical path, so both policies ride the same frontier.
    assert_eq!(
        kareus.total_time_s.to_bits(),
        perseus.total_time_s.to_bits()
    );
    // The capped kareus plan still emits sleep, recomputed for the capped
    // schedules rather than carried over stale.
    let plan = emu_kareus.plan_of(Policy::Kareus).unwrap();
    let sleep = plan.sleep_plan(None).expect("kareus emits a sleep plan");
    assert!(
        sleep.window_count() > 0,
        "capped pipeline keeps its bubbles"
    );
}

/// The drift-detection contract end to end: a scripted
/// [`FaultKind::DriftBurst`] must be flagged by the streaming detectors
/// within a bounded number of iterations of onset, and the fault-free
/// seed-0 run must stay silent (zero false positives).
#[test]
fn drift_burst_is_caught_within_bound_and_seed_zero_is_silent() {
    use crate::plan::FaultEvent;

    // Seed 0: no faults, and the detectors must emit nothing.
    let mut emu = Emulator::new(small_config()).unwrap();
    let quiet = run_chaos(
        &mut emu,
        &ChaosConfig {
            seed: 0,
            iterations: 120,
            ..ChaosConfig::default()
        },
    )
    .unwrap();
    assert_eq!(quiet.faults_injected, 0);
    assert!(
        quiet.alerts.is_empty(),
        "fault-free run raised alerts: {:?}",
        quiet.alerts
    );

    // Scripted drift burst at iteration 60 of 120: a sustained 1.5×
    // slowdown the detectors must flag within 10 iterations.
    const ONSET: usize = 60;
    const BOUND: u64 = 10;
    let plan = FaultPlan::from_events(
        0,
        vec![FaultEvent {
            at_iteration: ONSET,
            kind: FaultKind::DriftBurst {
                pipeline: 1,
                degree: 1.5,
            },
        }],
    );
    let mut emu = Emulator::new(small_config()).unwrap();
    let report = run_chaos(
        &mut emu,
        &ChaosConfig {
            seed: 0,
            iterations: 120,
            plan: Some(plan),
            ..ChaosConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.faults_injected, 1);
    assert!(report.alerts_fired >= 1, "drift burst raised no alert");
    let first = report
        .alerts
        .iter()
        .find(|a| a.state == perseus_telemetry::AlertState::Firing)
        .unwrap();
    assert!(
        first.iteration >= ONSET as u64 && first.iteration <= ONSET as u64 + BOUND,
        "first alert at iteration {} — outside [{ONSET}, {}]",
        first.iteration,
        ONSET as u64 + BOUND
    );
    // No alert precedes the fault: zero false positives before onset.
    assert!(report.alerts.iter().all(|a| a.iteration >= ONSET as u64));
}

/// Scripted plans replay deterministically: the same events yield
/// byte-identical alert streams across runs.
#[test]
fn scripted_chaos_alert_stream_replays_identically() {
    use crate::plan::FaultEvent;

    let run = || {
        let plan = FaultPlan::from_events(
            7,
            vec![FaultEvent {
                at_iteration: 40,
                kind: FaultKind::DriftBurst {
                    pipeline: 0,
                    degree: 1.4,
                },
            }],
        );
        let mut emu = Emulator::new(small_config()).unwrap();
        run_chaos(
            &mut emu,
            &ChaosConfig {
                seed: 7,
                iterations: 90,
                plan: Some(plan),
                ..ChaosConfig::default()
            },
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    let render = |r: &crate::ChaosReport| {
        r.alerts
            .iter()
            .map(perseus_telemetry::Alert::render)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(!a.alerts.is_empty());
    assert_eq!(render(&a), render(&b), "alert streams must replay exactly");
}
