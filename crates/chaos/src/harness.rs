//! The chaos harness: replays a [`FaultPlan`](crate::FaultPlan) against a
//! cluster [`Emulator`] and a live [`PerseusServer`] in lockstep, and
//! reports what the system absorbed.
//!
//! The harness is the integration point of the fault model: straggler
//! spikes hit both the emulator's accounting and the server's
//! `set_straggler` path (through the retrying [`JobClient`]),
//! characterization faults hit the server's worker pool, frequency caps
//! re-clamp both sides' frontiers, and clock skew shifts the server's
//! simulated clock. Every fired event is counted, so
//! `faults_injected == faults_scheduled` is a checkable postcondition of
//! any completed run.

use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use perseus_cluster::{
    Emulator, EmulatorError, Policy, StragglerCause, StragglerTimeline, TraceEvent,
};
use perseus_gpu::GpuSpec;
use perseus_models::StageWorkloads;
use perseus_pipeline::{CompKind, OpKey, PipelineDag};
use perseus_profiler::{OpProfile, ProfileDb};
use perseus_server::{
    ClientConfig, DurabilityStats, FaultInjector, FollowerServer, JobClient, JobSpec,
    PerseusServer, Replicator, ServerError, SubmissionFault,
};
use perseus_telemetry::{Alert, AlertState, FlightSnapshot, IterationSample};

use crate::plan::{FaultKind, FaultPlan};

/// Errors from a chaos run.
#[derive(Debug)]
pub enum ChaosError {
    /// The emulator side failed.
    Emulator(EmulatorError),
    /// The server side failed in a way the client could not ride out.
    Server(ServerError),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Emulator(e) => write!(f, "emulator: {e}"),
            ChaosError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<EmulatorError> for ChaosError {
    fn from(e: EmulatorError) -> Self {
        ChaosError::Emulator(e)
    }
}

impl From<ServerError> for ChaosError {
    fn from(e: ServerError) -> Self {
        ChaosError::Server(e)
    }
}

impl From<ChaosError> for perseus_core::Error {
    fn from(e: ChaosError) -> Self {
        perseus_core::Error::subsystem("chaos", e)
    }
}

/// Parameters of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault-plan seed (0 = fault-free).
    pub seed: u64,
    /// Iterations to simulate.
    pub iterations: usize,
    /// Policy governing the non-straggler pipelines.
    pub policy: Policy,
    /// Iterations between a straggler state change and the schedule that
    /// accounts for it (mirrors `RunConfig::reaction_delay_iters`).
    pub reaction_delay_iters: usize,
    /// Client-side retry/timeout configuration for server traffic.
    pub retry: ClientConfig,
    /// Where to write the flight-recorder post-mortem. Armed on the
    /// server for containment dumps (lost/panicked characterizations),
    /// and written by the harness at the end of any run that injected at
    /// least one fault. `None` disables dumping; the in-memory
    /// [`FlightSnapshot`] in the report is populated either way.
    pub flight_dump: Option<PathBuf>,
    /// Directory for the server's write-ahead journal + snapshots. With
    /// `Some`, the server is built via [`PerseusServer::open_with`] and
    /// [`FaultKind::CrashRestart`] kills and recovers it in place;
    /// with `None` the server is in-memory and a crash rebuilds it from
    /// scratch. For identical seeds *without* durability faults, durable
    /// and in-memory runs produce identical reports — durability is
    /// invisible to the planning path.
    pub durable_dir: Option<PathBuf>,
    /// Explicit fault schedule, overriding seed derivation. The scripted
    /// path (built with [`FaultPlan::from_events`]) is how tests place a
    /// [`FaultKind::DriftBurst`] at a known iteration; `None` derives the
    /// plan from `seed` as always.
    pub plan: Option<FaultPlan>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            iterations: 50,
            policy: Policy::Perseus,
            reaction_delay_iters: 1,
            retry: ClientConfig::default(),
            flight_dump: None,
            durable_dir: None,
            plan: None,
        }
    }
}

/// What a chaos run absorbed and produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Seed the fault plan was derived from.
    pub seed: u64,
    /// Iterations simulated.
    pub iterations: usize,
    /// Faults the plan scheduled.
    pub faults_scheduled: u64,
    /// Faults the harness actually fired (must equal `faults_scheduled`
    /// after a completed run).
    pub faults_injected: u64,
    /// Faults the *server* absorbed (drops, delays, panics, caps, skews);
    /// straggler spikes/recoveries are client-visible, not server faults.
    pub server_faults_absorbed: u64,
    /// Lookups the server answered from a stale frontier while degraded.
    pub degraded_lookups: u64,
    /// Straggler notifications the harness sent.
    pub notifications_sent: u64,
    /// Straggler notifications the server answered (post-retry).
    pub notifications_answered: u64,
    /// Client-side retries across all operations.
    pub client_retries: u64,
    /// Total cluster energy over the run, joules.
    pub total_energy_j: f64,
    /// Total wall-clock time of the run, seconds.
    pub total_time_s: f64,
    /// Shortest synchronized iteration time observed.
    pub min_iter_time_s: f64,
    /// The fault-free critical path: the all-max iteration time before
    /// any fault fired. No iteration can be faster than this.
    pub fault_free_critical_path_s: f64,
    /// The per-iteration flight record of the run: one
    /// [`IterationSample`] per simulated iteration (oldest evicted once
    /// the ring fills), with the cluster's energy split into useful /
    /// intrinsic / extrinsic joules. After a [`FaultKind::CrashRestart`]
    /// only post-restart samples remain — the in-memory ring dies with
    /// the process, exactly as it would in production.
    pub flight: FlightSnapshot,
    /// Crash-restarts the run survived (0 unless the plan schedules
    /// [`FaultKind::CrashRestart`]).
    pub crashes_survived: u64,
    /// Leader failovers the run survived (0 unless the plan schedules
    /// [`FaultKind::LeaderFailover`]).
    pub leader_failovers: u64,
    /// Journal-tail scribbles that actually hit a durable journal.
    pub journal_corruptions: u64,
    /// Durability counters summed over every server incarnation of the
    /// run (each crash-restart starts a fresh set). All zero for
    /// in-memory runs.
    pub durability: DurabilityStats,
    /// Every alert the streaming detectors emitted during the run, in
    /// emission order — accumulated from [`PerseusServer::observe_iteration`]
    /// as the run goes, so alerts survive a [`FaultKind::CrashRestart`]
    /// that resets the server-side pipeline.
    pub alerts: Vec<Alert>,
    /// Alerts that transitioned to firing.
    pub alerts_fired: u64,
    /// Alerts that cleared again (hysteresis satisfied).
    pub alerts_cleared: u64,
}

/// Accumulates `b` into `a`, field by field: each server incarnation
/// restarts its counters, so the run-level view is the sum.
fn accumulate(a: &mut DurabilityStats, b: DurabilityStats) {
    a.journal_appends += b.journal_appends;
    a.recoveries += b.recoveries;
    a.truncated_records += b.truncated_records;
    a.truncated_bytes += b.truncated_bytes;
    a.replayed_events += b.replayed_events;
    a.recharacterizations_replayed += b.recharacterizations_replayed;
    a.recharacterizations_avoided += b.recharacterizations_avoided;
    a.snapshots_written += b.snapshots_written;
    a.corrupt_snapshots += b.corrupt_snapshots;
}

/// A [`FaultInjector`] fed from a script: each characterization task pops
/// the next queued fault (fault-free when the queue is empty), so the
/// sequence of server-side faults is exactly the plan's, independent of
/// worker scheduling.
#[derive(Default)]
pub struct ScriptedInjector {
    queue: Mutex<VecDeque<SubmissionFault>>,
    injected: AtomicU64,
}

impl ScriptedInjector {
    /// An injector with an empty script.
    pub fn new() -> ScriptedInjector {
        ScriptedInjector::default()
    }

    /// Queues `fault` for the next characterization task.
    pub fn push(&self, fault: SubmissionFault) {
        self.queue.lock().push_back(fault);
    }

    /// Non-`None` faults handed out so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl FaultInjector for ScriptedInjector {
    fn submission_fault(&self, _job: &str, _epoch: u64) -> SubmissionFault {
        let fault = self
            .queue
            .lock()
            .pop_front()
            .unwrap_or(SubmissionFault::None);
        if fault != SubmissionFault::None {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

/// Builds the profile database a client would submit for this pipeline —
/// the same model-grounded profiles the emulator plans from (cf.
/// `PlanContext::from_model_profiles`).
pub fn model_profiles(
    pipe: &PipelineDag,
    gpu: &GpuSpec,
    stages: &[StageWorkloads],
) -> ProfileDb<OpKey> {
    let mut db = ProfileDb::new();
    let n = pipe.n_stages;
    for (vs, sw) in stages.iter().enumerate() {
        let (stage, chunk) = (vs % n, vs / n);
        db.insert(
            OpKey {
                stage,
                chunk,
                kind: CompKind::Forward,
            },
            OpProfile::from_model(gpu, &sw.fwd),
        );
        db.insert(
            OpKey {
                stage,
                chunk,
                kind: CompKind::Backward,
            },
            OpProfile::from_model(gpu, &sw.bwd),
        );
        db.insert(
            OpKey {
                stage,
                chunk,
                kind: CompKind::Recompute,
            },
            OpProfile::from_model(gpu, &sw.fwd),
        );
    }
    db
}

/// Runs `cfg.iterations` iterations of `emu`'s cluster under the fault
/// plan derived from `cfg.seed`, driving a live [`PerseusServer`]
/// alongside the emulator's energy accounting.
///
/// Graceful-degradation contract exercised here:
///
/// * dropped/delayed/panicked submissions are retried by the
///   [`JobClient`] and absorbed by the server (stale frontier answers are
///   counted in `degraded_lookups`, never panics);
/// * frequency caps re-clamp both the emulator's and the server's
///   frontiers instead of invalidating them;
/// * clock skew never fires pending straggler timers early into the past.
///
/// # Errors
///
/// Emulation failures, or server errors that survive the retry budget.
pub fn run_chaos(emu: &mut Emulator, cfg: &ChaosConfig) -> Result<ChaosReport, ChaosError> {
    let config = emu.config().clone();
    // Durable runs draw from the extended fault vocabulary (crashes and
    // journal corruption need a durable directory to bite); in-memory
    // runs keep the historical stream so seeded traces stay byte-stable.
    let plan = match &cfg.plan {
        Some(plan) => plan.clone(),
        None if cfg.durable_dir.is_some() => {
            FaultPlan::from_seed_durable(cfg.seed, cfg.iterations, config.n_pipelines, &config.gpu)
        }
        None => FaultPlan::from_seed(cfg.seed, cfg.iterations, config.n_pipelines, &config.gpu),
    };

    // Server side: one registered job driven through the retrying client.
    // The server shares the emulator's telemetry handle, so one snapshot
    // covers both sides of the run (and stays inert when disabled).
    let n_workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(4);
    let telemetry = emu.telemetry().clone();
    let pipe = emu.pipe().clone();
    // The active durable directory: starts at the configured one but
    // moves to the promoted follower's after a LeaderFailover, so later
    // CrashRestarts recover the surviving lineage.
    let mut active_dir = cfg.durable_dir.clone();
    let boot_telemetry = telemetry.clone();
    let boot = move |dir: &Option<PathBuf>| -> Result<Arc<PerseusServer>, ChaosError> {
        Ok(match dir {
            Some(dir) => Arc::new(PerseusServer::open_with(
                dir,
                n_workers,
                boot_telemetry.clone(),
            )?),
            None => Arc::new(PerseusServer::with_telemetry(
                n_workers,
                boot_telemetry.clone(),
            )),
        })
    };
    let spec = || JobSpec {
        name: "chaos".into(),
        pipe: pipe.clone(),
        gpu: config.gpu.clone(),
        power_states: None,
    };
    let mut server = boot(&active_dir)?;
    let injector = Arc::new(ScriptedInjector::new());
    server.set_fault_injector(Some(Arc::clone(&injector) as Arc<dyn FaultInjector>));
    // Containment dumps: if a characterization is lost or panics and the
    // server absorbs it, the flight record is written immediately — the
    // post-mortem exists even if the run never reaches its end.
    server.arm_flight_dump(cfg.flight_dump.clone());
    match server.register_job(spec()) {
        // A durable directory that already holds this job (recovered
        // state, or a rerun over the same dir) is not an error.
        Err(ServerError::DuplicateJob(_)) => {}
        other => other?,
    }
    let mut client = JobClient::with_config(Arc::clone(&server), "chaos", cfg.retry);
    let profiles = model_profiles(emu.pipe(), &config.gpu, emu.stages());
    client.submit_profiles_with_retry(&profiles, &config.frontier)?;

    // The fault-free floor, recorded before anything fires: no later
    // schedule (slowed, capped, or degraded) can beat all-max.
    let fault_free_critical_path_s = emu.plan_of(Policy::AllMax)?.select(None).time_s;
    let baseline_t_min = emu.frontier().t_min();

    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut faults_injected = 0u64;
    let mut notifications_sent = 0u64;
    let mut notifications_answered = 0u64;
    let mut total_energy = 0.0;
    let mut total_time = 0.0;
    let mut min_iter_time = f64::INFINITY;
    let mut next_event = 0;
    let mut prev_degraded_lookups = 0u64;
    // Carries across server incarnations: volatile per-job counters and
    // durability stats restart at zero after a crash, so the run-level
    // totals accumulate what every retired incarnation had absorbed.
    let mut crashes_survived = 0u64;
    let mut leader_failovers = 0u64;
    let mut journal_corruptions = 0u64;
    let mut absorbed_carry = 0u64;
    let mut degraded_carry = 0u64;
    let mut retries_carry = 0u64;
    let mut durability_acc = DurabilityStats::default();
    let mut alerts: Vec<Alert> = Vec::new();

    for iter in 0..cfg.iterations {
        let faults_before = faults_injected;
        while next_event < plan.events().len() && plan.events()[next_event].at_iteration <= iter {
            let event = plan.events()[next_event];
            next_event += 1;
            faults_injected += 1;
            match event.kind {
                FaultKind::StragglerSpike { pipeline, cause } => {
                    trace.push(TraceEvent {
                        at_iteration: iter,
                        pipeline,
                        cause: Some(cause),
                    });
                    let degree = (emu.straggler_iteration_time(cause)? / baseline_t_min).max(1.0);
                    notifications_sent += 1;
                    client.notify_straggler_with_retry(pipeline, 0.0, degree)?;
                    notifications_answered += 1;
                }
                FaultKind::StragglerRecover { pipeline } => {
                    trace.push(TraceEvent {
                        at_iteration: iter,
                        pipeline,
                        cause: None,
                    });
                    notifications_sent += 1;
                    client.notify_straggler_with_retry(pipeline, 0.0, 1.0)?;
                    notifications_answered += 1;
                }
                FaultKind::DropSubmission => {
                    injector.push(SubmissionFault::Drop);
                    client.submit_profiles_with_retry(&profiles, &config.frontier)?;
                }
                FaultKind::DelaySubmission { millis } => {
                    injector.push(SubmissionFault::Delay(Duration::from_millis(millis)));
                    client.submit_profiles_with_retry(&profiles, &config.frontier)?;
                }
                FaultKind::PanicWorker => {
                    injector.push(SubmissionFault::Panic);
                    client.submit_profiles_with_retry(&profiles, &config.frontier)?;
                }
                FaultKind::FreqCap { cap } => {
                    emu.apply_freq_cap(cap)?;
                    server.apply_freq_cap("chaos", cap)?;
                }
                FaultKind::ClockSkew { skew_s } => {
                    server.skew_clock("chaos", skew_s)?;
                }
                FaultKind::CrashRestart => {
                    crashes_survived += 1;
                    // Bank the retiring incarnation's counters, then tear
                    // it down completely *before* reopening: dropping the
                    // server joins its worker pool, so no in-flight
                    // characterization can race the new journal handle.
                    if let Ok(status) = server.job_status("chaos") {
                        absorbed_carry += status.chaos.faults_injected;
                        degraded_carry += status.chaos.degraded_lookups;
                    }
                    accumulate(&mut durability_acc, server.durability());
                    retries_carry += client.retries();
                    drop(client);
                    drop(server);
                    server = boot(&active_dir)?;
                    server
                        .set_fault_injector(Some(Arc::clone(&injector) as Arc<dyn FaultInjector>));
                    server.arm_flight_dump(cfg.flight_dump.clone());
                    match server.register_job(spec()) {
                        Err(ServerError::DuplicateJob(_)) => {}
                        other => other?,
                    }
                    client = JobClient::with_config(Arc::clone(&server), "chaos", cfg.retry);
                    // A durable restart recovers the frontier from disk; an
                    // in-memory restart (or a recovery whose journal lost
                    // the characterization to corruption) must re-seed.
                    if server.job_status("chaos")?.deployment.is_none() {
                        client.submit_profiles_with_retry(&profiles, &config.frontier)?;
                    }
                    prev_degraded_lookups = 0;
                }
                FaultKind::CorruptJournalTail { len } => {
                    // Deterministic garbage: all-ones nibbles never parse
                    // as a valid record header.
                    let garbage = vec![0xFFu8; len.max(1)];
                    if server.corrupt_journal_tail(&garbage) {
                        journal_corruptions += 1;
                    }
                }
                FaultKind::DriftBurst { pipeline, degree } => {
                    // A sustained slowdown: identical plumbing to a
                    // straggler spike, but the degree is scripted, so the
                    // step the detectors must catch is exact.
                    trace.push(TraceEvent {
                        at_iteration: iter,
                        pipeline,
                        cause: Some(StragglerCause::Slowdown {
                            degree: degree.max(1.0),
                        }),
                    });
                    notifications_sent += 1;
                    client.notify_straggler_with_retry(pipeline, 0.0, degree.max(1.0))?;
                    notifications_answered += 1;
                }
                FaultKind::LeaderFailover => {
                    leader_failovers += 1;
                    // Bank the retiring leader's counters, exactly like a
                    // crash-restart: the promoted incarnation starts its
                    // volatile counters at zero.
                    if let Ok(status) = server.job_status("chaos") {
                        absorbed_carry += status.chaos.faults_injected;
                        degraded_carry += status.chaos.degraded_lookups;
                    }
                    accumulate(&mut durability_acc, server.durability());
                    retries_carry += client.retries();
                    drop(client);
                    if let Some(dir) = &active_dir {
                        // Ship the leader's journal to a fresh follower,
                        // kill the leader, promote the follower. The
                        // promoted server recovers the full job state from
                        // replication alone — its bounded pending tail,
                        // never the journal from genesis.
                        let follower_dir = dir.join(format!("failover-{leader_failovers}"));
                        let mut follower =
                            FollowerServer::open_with(&follower_dir, n_workers, telemetry.clone())?;
                        let replicator = Replicator::new(Arc::clone(&server));
                        replicator.sync(&mut follower)?;
                        drop(replicator);
                        drop(server);
                        let (promoted, _report) = follower.promote()?;
                        server = Arc::new(promoted);
                        active_dir = Some(follower_dir);
                    } else {
                        // No journal to ship on an in-memory run: rebuild
                        // from scratch like CrashRestart.
                        drop(server);
                        server = boot(&active_dir)?;
                    }
                    server
                        .set_fault_injector(Some(Arc::clone(&injector) as Arc<dyn FaultInjector>));
                    server.arm_flight_dump(cfg.flight_dump.clone());
                    match server.register_job(spec()) {
                        Err(ServerError::DuplicateJob(_)) => {}
                        other => other?,
                    }
                    client = JobClient::with_config(Arc::clone(&server), "chaos", cfg.retry);
                    if server.job_status("chaos")?.deployment.is_none() {
                        client.submit_profiles_with_retry(&profiles, &config.frontier)?;
                    }
                    prev_degraded_lookups = 0;
                }
            }
        }

        let timeline = StragglerTimeline::new(&trace);
        let actual = timeline.t_prime_at(emu, iter)?;
        let believed = timeline.t_prime_at(emu, iter.saturating_sub(cfg.reaction_delay_iters))?;
        let report = emu.report_with_belief(cfg.policy, believed, actual)?;
        total_energy += report.total_j();
        total_time += report.sync_time_s;
        min_iter_time = min_iter_time.min(report.sync_time_s);

        // Flight recorder + streaming detectors: one sample per
        // iteration. The attribution twin of the report splits the same
        // joules into useful / intrinsic / extrinsic; the deployed
        // frequency envelope comes from the same believed-deadline
        // selection the report uses. Observe-only — no accumulator above
        // reads anything recorded here; the alerts the pipeline emits are
        // collected into the report but never steer the run.
        let breakdown = emu
            .attribute_with_belief(cfg.policy, believed, actual)?
            .total();
        let plan_out = emu.plan_of(cfg.policy)?;
        let (mut freq_min, mut freq_max) = (u32::MAX, 0u32);
        for freq in plan_out.select(believed).freqs.iter().flatten() {
            freq_min = freq_min.min(freq.0);
            freq_max = freq_max.max(freq.0);
        }
        let status = server.job_status("chaos")?;
        let degraded_now = status.chaos.degraded_lookups;
        alerts.extend(server.observe_iteration(
            "chaos",
            IterationSample {
                iteration: iter as u64,
                sync_time_s: report.sync_time_s,
                useful_j: breakdown.useful_j,
                intrinsic_j: breakdown.intrinsic_j,
                extrinsic_j: breakdown.extrinsic_j,
                freq_min_mhz: if freq_min == u32::MAX { 0 } else { freq_min },
                freq_max_mhz: freq_max,
                degraded: status.degraded,
                degraded_lookups: degraded_now - prev_degraded_lookups,
                faults: faults_injected - faults_before,
            },
        ));
        prev_degraded_lookups = degraded_now;
    }

    // End-of-run post-mortem: any faulted run leaves its time series on
    // disk next to whatever the server's containment path already wrote.
    if faults_injected > 0 {
        if let Some(path) = &cfg.flight_dump {
            let _ = server.flight_recorder().dump_to(path);
        }
    }

    let stats = server
        .job_status("chaos")
        .map(|s| s.chaos)
        .unwrap_or_default();
    accumulate(&mut durability_acc, server.durability());
    Ok(ChaosReport {
        seed: cfg.seed,
        iterations: cfg.iterations,
        faults_scheduled: plan.len() as u64,
        faults_injected,
        server_faults_absorbed: absorbed_carry + stats.faults_injected,
        degraded_lookups: degraded_carry + stats.degraded_lookups,
        notifications_sent,
        notifications_answered,
        client_retries: retries_carry + client.retries(),
        total_energy_j: total_energy,
        total_time_s: total_time,
        min_iter_time_s: if min_iter_time.is_finite() {
            min_iter_time
        } else {
            0.0
        },
        fault_free_critical_path_s,
        flight: server.flight_record(),
        crashes_survived,
        leader_failovers,
        journal_corruptions,
        durability: durability_acc,
        alerts_fired: alerts
            .iter()
            .filter(|a| a.state == AlertState::Firing)
            .count() as u64,
        alerts_cleared: alerts
            .iter()
            .filter(|a| a.state == AlertState::Cleared)
            .count() as u64,
        alerts,
    })
}
