//! Deterministic fault injection for the Perseus control plane.
//!
//! Energy-optimal schedules are only worth deploying if the system
//! serving them survives the failures production clusters actually see:
//! lost RPC traffic, crashing workers, datacenter frequency caps, skewed
//! clocks, and stragglers that come and go (§2.3). This crate turns those
//! failures into a *seeded, replayable* test dimension:
//!
//! * [`FaultPlan`] derives a deterministic event schedule from a `u64`
//!   seed (seed 0 = no faults, byte-identical to a fault-free run);
//! * [`run_chaos`] replays a plan against a cluster
//!   [`Emulator`](perseus_cluster::Emulator) and a live
//!   [`PerseusServer`](perseus_server::PerseusServer) in lockstep,
//!   through the retrying [`JobClient`](perseus_server::JobClient);
//! * [`ChaosReport`] surfaces what was absorbed — every scheduled fault
//!   must be injected, every straggler notification answered, and
//!   `degraded_lookups` bounds how stale the served frontiers got.
//!
//! # Examples
//!
//! ```no_run
//! use perseus_chaos::{run_chaos, ChaosConfig};
//! use perseus_cluster::{ClusterConfig, Emulator, Policy};
//! use perseus_gpu::GpuSpec;
//! use perseus_models::zoo;
//! use perseus_pipeline::ScheduleKind;
//!
//! let config = ClusterConfig {
//!     model: zoo::gpt3_xl(4),
//!     gpu: GpuSpec::a100_pcie(),
//!     n_stages: 4,
//!     n_microbatches: 8,
//!     n_pipelines: 4,
//!     tensor_parallel: 1,
//!     schedule: ScheduleKind::OneFOneB,
//!     frontier: Default::default(),
//! };
//! let mut emu = Emulator::new(config).unwrap();
//! let cfg = ChaosConfig { seed: 42, iterations: 100, ..Default::default() };
//! let report = run_chaos(&mut emu, &cfg).unwrap();
//! assert_eq!(report.faults_injected, report.faults_scheduled);
//! ```

mod harness;
mod plan;

pub use harness::{
    model_profiles, run_chaos, ChaosConfig, ChaosError, ChaosReport, ScriptedInjector,
};
pub use plan::{FaultEvent, FaultKind, FaultPlan};

#[cfg(test)]
mod tests;
