//! Kareus suite: joint frequency + sleep planning versus frequency-only
//! Perseus across the Figure 8 strong-scaling sweep, with two
//! machine-checked claim lines (Kareus never spends more than Perseus;
//! strictly less wherever bubbles amortize sleep entry/exit latency).
//! The process exits nonzero if either claim is violated — CI gates on
//! it directly.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! snapshot printed to **stderr**; stdout stays byte-identical. With
//! `--bench-json <path>`, machine-readable per-config results are
//! archived next to the stdout report. With `--svg <path>`, the
//! per-config Kareus attribution is rendered as a stacked-bar chart with
//! the static-sleep joules drawn as their own segment.
//!
//! Run: `cargo run --release -p perseus-bench --bin kareus_suite \
//!        [-- --metrics] [--bench-json BENCH_kareus.json] [--svg kareus.svg]`

use perseus_bench::SuiteTelemetry;
use perseus_viz::{breakdown_svg, BreakdownBar, BreakdownPlot};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let suite = SuiteTelemetry::from_args(&args);
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let bench_json = flag_value("--bench-json");
    let svg_path = flag_value("--svg");
    let tel = suite.telemetry().clone();
    let stdout = std::io::stdout();
    let entries =
        perseus_bench::kareus_report_with(&mut stdout.lock(), &tel).expect("kareus claims hold");
    if let Some(path) = bench_json {
        perseus_bench::write_bench_json(path.as_ref(), &entries).expect("write bench json");
    }
    if let Some(path) = svg_path {
        let svg = breakdown_svg(&BreakdownPlot {
            title: "Kareus attribution (slowdown 1.2)".into(),
            bars: entries
                .iter()
                .filter(|e| e.name.starts_with("kareus_suite/"))
                .map(|e| {
                    let sleep_j = e
                        .extras
                        .iter()
                        .find(|(k, _)| k == "static_sleep_j")
                        .map_or(0.0, |&(_, v)| v);
                    BreakdownBar {
                        label: e.name.trim_start_matches("kareus_suite/").into(),
                        // StaticSleep books as useful (a parked GPU does
                        // the cheapest possible thing); split it out so
                        // the chart shows where Kareus parks.
                        useful_j: e.useful_j - sleep_j,
                        intrinsic_j: e.intrinsic_j,
                        extrinsic_j: e.extrinsic_j,
                        sleep_j,
                    }
                })
                .collect(),
        });
        std::fs::write(path, svg).expect("write svg");
    }
    suite.finish();
}
