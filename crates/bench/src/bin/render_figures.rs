//! Renders SVG figures into `results/`: the Figure 1 timelines (max
//! frequency vs Perseus schedule, power-colored) and the Figure 9
//! frontiers (Perseus vs the Zeus baselines).
//!
//! Run: `cargo run --release -p perseus-bench --bin render_figures`

use std::fs;

use perseus_baselines::{AllMaxFreq, ZeusGlobal, ZeusPerStage};
use perseus_cluster::{ClusterConfig, Emulator};
use perseus_core::{FrontierOptions, Planner};
use perseus_gpu::GpuSpec;
use perseus_models::zoo;
use perseus_pipeline::ScheduleKind;
use perseus_viz::{frontier_svg, timeline_svg, FrontierPlot, Series, TimelineStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fs::create_dir_all("results")?;

    // ---- Figure 1: GPT-3 1.3B timeline, 4 stages x 6 microbatches ----
    let emu = Emulator::new(ClusterConfig {
        model: zoo::gpt3_xl(4),
        gpu: GpuSpec::a100_pcie(),
        n_stages: 4,
        n_microbatches: 6,
        n_pipelines: 1,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    })?;
    let ctx = emu.ctx();
    let gpu = GpuSpec::a100_pcie();
    let base = AllMaxFreq
        .plan(&ctx)?
        .into_schedule()
        .expect("single schedule");
    let fast = &emu.frontier().fastest().schedule;
    for (schedule, name, title) in [
        (
            &base,
            "fig1a_maxfreq.svg",
            "GPT-3 1.3B, all computations at maximum frequency",
        ),
        (
            fast,
            "fig1b_perseus.svg",
            "GPT-3 1.3B, Perseus energy schedule (intrinsic bloat removed)",
        ),
    ] {
        let svg = timeline_svg(
            emu.pipe(),
            &gpu,
            |id, _| schedule.realized_dur[id.index()],
            |id, _| schedule.realized_energy[id.index()],
            &TimelineStyle {
                title: title.into(),
                ..Default::default()
            },
        );
        fs::write(format!("results/{name}"), svg)?;
        println!("wrote results/{name}");
    }

    // ---- Figure 9(a): GPT-3 1.3B frontier on A100, 4 stages ----
    let emu = Emulator::new(ClusterConfig {
        model: zoo::gpt3_xl(4),
        gpu: GpuSpec::a100_pcie(),
        n_stages: 4,
        n_microbatches: 32,
        n_pipelines: 1,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    })?;
    let ctx = emu.ctx();
    let thin = |pts: Vec<(f64, f64)>, max: usize| -> Vec<(f64, f64)> {
        let stride = (pts.len() / max).max(1);
        pts.into_iter().step_by(stride).collect()
    };
    let perseus: Vec<(f64, f64)> = emu
        .frontier()
        .points()
        .iter()
        .map(|p| {
            let r = p.schedule.energy_report(&ctx, None);
            (r.iter_time_s, r.total_j())
        })
        .collect();
    let zeus_g: Vec<(f64, f64)> = ZeusGlobal
        .plan(&ctx)?
        .into_sweep()
        .expect("sweep planner")
        .iter()
        .map(|s| {
            let r = s.energy_report(&ctx, None);
            (r.iter_time_s, r.total_j())
        })
        .collect();
    let zeus_ps: Vec<(f64, f64)> = ZeusPerStage
        .plan(&ctx)?
        .into_sweep()
        .expect("sweep planner")
        .iter()
        .map(|s| {
            let r = s.energy_report(&ctx, None);
            (r.iter_time_s, r.total_j())
        })
        .collect();
    let svg = frontier_svg(&FrontierPlot {
        title: "GPT-3 1.3B, four-stage pipeline, A100 (Figure 9a)".into(),
        series: vec![
            Series {
                label: "Perseus".into(),
                points: thin(perseus, 64),
            },
            Series {
                label: "ZeusGlobal".into(),
                points: thin(zeus_g, 40),
            },
            Series {
                label: "ZeusPerStage".into(),
                points: thin(zeus_ps, 40),
            },
        ],
    });
    fs::write("results/fig9a_frontier.svg", svg)?;
    println!("wrote results/fig9a_frontier.svg");
    Ok(())
}
