//! Fleet suite: the claim gate for fleet-scale multi-tenant planning and
//! the fingerprint-keyed cross-job plan cache.
//!
//! Simulates a fleet serving **1000 jobs drawn from 20 distinct
//! structures** (GPT-3 XL at varying pipeline depth and microbatch
//! count) on a sharded [`FleetServer`]: a warm phase solves each
//! structure once, then an open-loop phase pours the remaining 980 jobs
//! through the shards — every one a fingerprint hit that skips the
//! frontier solver. The process exits nonzero unless
//!
//!   1. the fleet cache hit rate is **>= 90%** across the run (the
//!      structural-repetition claim: 1000 jobs / 20 structures),
//!   2. admitting a cached job is **>= 10x faster** than a cold solve
//!      (sequential timed samples of submit→deploy on both paths), and
//!   3. every cache-hit plan is **bit-identical** to a fresh solve of
//!      the same structure, field by field (`f64::to_bits` everywhere),
//!      with all 20 structure fingerprints pairwise distinct.
//!
//! Stdout is deterministic: job counts, cache counters, and gate
//! verdicts only. Throughput (jobs/sec), lookup p50/p99, and the timed
//! speedup ratio go to **stderr** and, with `--bench-json <path>`, into
//! the machine-readable artifact. With `--metrics`, the telemetry
//! snapshot is printed to stderr; stdout stays byte-identical.
//!
//! Run: `cargo run --release -p perseus-bench --bin fleet_suite -- \
//!        [--jobs 1000] [--shards 4] [--metrics] \
//!        [--bench-json BENCH_fleet.json]`

use std::time::Instant;

use perseus_bench::SuiteTelemetry;
use perseus_core::{
    plan_fingerprint, FrontierOptions, FrontierSolver, ParetoFrontier, PlanContext,
};
use perseus_gpu::GpuSpec;
use perseus_models::{min_imbalance_partition, zoo};
use perseus_pipeline::{PipelineBuilder, PipelineDag, ScheduleKind};
use perseus_server::{FleetConfig, FleetServer, JobSpec, TenantId};

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_usize(args: &[String], flag: &str) -> Option<usize> {
    arg_str(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} wants an integer, got {v:?}"))
    })
}

/// Field-by-field bitwise comparison of two frontiers; returns a
/// description of the first divergence, if any.
fn frontier_divergence(a: &ParetoFrontier, b: &ParetoFrontier) -> Option<String> {
    if a.points().len() != b.points().len() {
        return Some(format!(
            "point counts differ: {} vs {}",
            a.points().len(),
            b.points().len()
        ));
    }
    for (i, (pa, pb)) in a.points().iter().zip(b.points().iter()).enumerate() {
        if pa.planned_time_s.to_bits() != pb.planned_time_s.to_bits()
            || pa.planned_energy_j.to_bits() != pb.planned_energy_j.to_bits()
        {
            return Some(format!("point {i}: planned time/energy bits differ"));
        }
        let (sa, sb) = (&pa.schedule, &pb.schedule);
        if sa.time_s.to_bits() != sb.time_s.to_bits()
            || sa.compute_j.to_bits() != sb.compute_j.to_bits()
            || sa.freqs != sb.freqs
        {
            return Some(format!("point {i}: schedule time/energy/freqs differ"));
        }
        let same = |x: &[f64], y: &[f64]| {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|(u, v)| u.to_bits() == v.to_bits())
        };
        if !same(&sa.planned, &sb.planned)
            || !same(&sa.realized_dur, &sb.realized_dur)
            || !same(&sa.realized_energy, &sb.realized_energy)
        {
            return Some(format!("point {i}: per-node schedule vectors differ"));
        }
    }
    None
}

/// One of the fleet's 20 distinct job structures.
struct Structure {
    pipe: PipelineDag,
    stages: Vec<perseus_models::StageWorkloads>,
    gpu: GpuSpec,
}

impl Structure {
    fn ctx(&self) -> PlanContext<'_> {
        PlanContext::from_model_profiles(&self.pipe, &self.gpu, &self.stages).expect("ctx")
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = SuiteTelemetry::from_args(&args);
    let bench_json = arg_str(&args, "--bench-json");
    let n_jobs = arg_usize(&args, "--jobs").unwrap_or(1000);
    let n_shards = arg_usize(&args, "--shards").unwrap_or(4);
    let tel = suite.telemetry().clone();

    // 20 distinct structures: GPT-3 XL at 4 depths x 5 microbatch
    // counts. A fleet is structurally repetitive — the same zoo entries
    // at the same parallelism degrees, over and over.
    let model = zoo::gpt3_xl(4);
    let gpu = GpuSpec::a100_pcie();
    let depths = [2usize, 3, 4, 6];
    let widths = [4usize, 6, 8, 10, 12];
    let structures: Vec<Structure> = depths
        .iter()
        .flat_map(|&d| widths.iter().map(move |&w| (d, w)))
        .map(|(d, w)| {
            let weights = model.fwd_latency_weights(&gpu);
            let partition = min_imbalance_partition(&weights, d).expect("partition");
            let stages = model.stage_workloads(&partition, &gpu).expect("stages");
            let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, d, w)
                .build()
                .expect("pipe");
            Structure {
                pipe,
                stages,
                gpu: gpu.clone(),
            }
        })
        .collect();
    let n_structures = structures.len();
    let opts = FrontierOptions {
        tau_s: Some(5e-3),
        max_iters: 50_000,
        ..FrontierOptions::default()
    };

    let fleet = FleetServer::with_telemetry(
        FleetConfig::default().shards(n_shards).workers_per_shard(2),
        tel.clone(),
    );
    let job_name = |i: usize| format!("fleet-job-{i:04}");
    let tenant_of = |i: usize| TenantId(format!("tenant-{:02}", i % 10));
    for i in 0..n_jobs {
        let s = &structures[i % n_structures];
        fleet
            .register_job(JobSpec {
                name: job_name(i),
                pipe: s.pipe.clone(),
                gpu: s.gpu.clone(),
                power_states: None,
            })
            .expect("register");
    }

    // Warm phase: the first job of each structure solves cold and fills
    // the fleet cache. Timed one by one — these are the cold samples for
    // the >=10x gate.
    let mut cold_s = Vec::with_capacity(n_structures);
    for i in 0..n_structures.min(n_jobs) {
        let s = &structures[i % n_structures];
        let profiles = s.ctx().profiles;
        let t0 = Instant::now();
        fleet
            .submit_profiles(&tenant_of(i), &job_name(i), profiles, &opts)
            .expect("warm submit")
            .wait()
            .expect("warm characterize");
        cold_s.push(t0.elapsed().as_secs_f64());
    }

    // Open-loop phase: the rest of the fleet pours in without waiting
    // for deployments; every job is a fingerprint hit.
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(n_jobs.saturating_sub(n_structures));
    for i in n_structures.min(n_jobs)..n_jobs {
        let s = &structures[i % n_structures];
        let profiles = s.ctx().profiles;
        tickets.push(
            fleet
                .submit_profiles(&tenant_of(i), &job_name(i), profiles, &opts)
                .expect("open-loop submit"),
        );
    }
    for t in tickets {
        t.wait().expect("open-loop characterize");
    }
    let open_loop_s = t0.elapsed().as_secs_f64();
    let open_loop_jobs = n_jobs.saturating_sub(n_structures);
    let jobs_per_sec = open_loop_jobs as f64 / open_loop_s.max(1e-9);

    // Lookup latency under the full fleet: p50/p99 of job_status.
    let mut lookups_us: Vec<f64> = (0..n_jobs)
        .map(|i| {
            let t0 = Instant::now();
            fleet
                .job_status(&tenant_of(i), &job_name(i))
                .expect("status");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    lookups_us.sort_by(f64::total_cmp);
    let (p50_us, p99_us) = (percentile(&lookups_us, 0.50), percentile(&lookups_us, 0.99));

    // Cached admission samples: fresh probe jobs over the same (already
    // cached) structures, timed submit→deploy one by one.
    let mut cached_s = Vec::with_capacity(n_structures);
    for (k, s) in structures.iter().enumerate() {
        let name = format!("fleet-probe-{k:02}");
        fleet
            .register_job(JobSpec {
                name: name.clone(),
                pipe: s.pipe.clone(),
                gpu: s.gpu.clone(),
                power_states: None,
            })
            .expect("register probe");
        let profiles = s.ctx().profiles;
        let t0 = Instant::now();
        fleet
            .submit_profiles(&tenant_of(k), &name, profiles, &opts)
            .expect("probe submit")
            .wait()
            .expect("probe characterize");
        cached_s.push(t0.elapsed().as_secs_f64());
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let (cold_mean, cached_mean) = (mean(&cold_s), mean(&cached_s));
    let speedup = cold_mean / cached_mean.max(1e-12);

    let stats = fleet.stats();
    let hit_rate = fleet.plan_cache().hit_rate();
    println!("== Fleet suite: {n_jobs} jobs from {n_structures} structures, {n_shards} shards ==");
    println!("submitted                    {:>12}", stats.submitted);
    println!("admitted                     {:>12}", stats.admitted);
    println!("cache inserts                {:>12}", stats.cache.inserts);
    println!("cache hits                   {:>12}", stats.cache.hits);
    println!("cache misses                 {:>12}", stats.cache.misses);
    println!("hit rate                     {:>11.1}%", hit_rate * 100.0);
    eprintln!(
        "open loop: {open_loop_jobs} jobs in {open_loop_s:.3} s ({jobs_per_sec:.0} jobs/s); \
         lookup p50 {p50_us:.1} us, p99 {p99_us:.1} us"
    );
    eprintln!(
        "admission: cold {:.3} ms mean, cached {:.3} ms mean ({speedup:.1}x)",
        cold_mean * 1e3,
        cached_mean * 1e3
    );

    let mut failed = false;

    // Gate 1: structural repetition pays — >= 90% of lookups hit.
    if hit_rate >= 0.90 {
        println!("GATE hit-rate>=90%: PASS");
    } else {
        println!("GATE hit-rate>=90%: FAIL ({:.1}%)", hit_rate * 100.0);
        failed = true;
    }

    // Gate 2: a cache hit skips the solver — cached admission is >= 10x
    // faster than a cold solve.
    if speedup >= 10.0 {
        println!("GATE cached>=10x: PASS");
    } else {
        println!("GATE cached>=10x: FAIL ({speedup:.1}x)");
        failed = true;
    }

    // Gate 3: caching never changes what deploys. Every cached plan is
    // bit-identical to a fresh solve, and the 20 fingerprints are
    // pairwise distinct.
    let mut identical = true;
    let mut fps = Vec::with_capacity(n_structures);
    for (k, s) in structures.iter().enumerate() {
        let ctx = s.ctx();
        let fp = plan_fingerprint("perseus", &s.pipe, &s.gpu, &ctx.profiles, &opts);
        fps.push(fp);
        let cached = fleet
            .plan_cache()
            .get(fp)
            .and_then(|p| p.as_frontier().cloned());
        let fresh = FrontierSolver::new(&s.pipe)
            .characterize(&ctx, &opts)
            .expect("fresh solve");
        match cached {
            None => {
                println!("GATE hit==fresh: FAIL (structure {k} missing from cache)");
                identical = false;
            }
            Some(cached) => {
                if let Some(d) = frontier_divergence(&cached, &fresh) {
                    println!("GATE hit==fresh: FAIL (structure {k}: {d})");
                    identical = false;
                }
            }
        }
    }
    fps.sort_unstable();
    fps.dedup();
    if fps.len() != n_structures {
        println!(
            "GATE hit==fresh: FAIL (only {} of {n_structures} fingerprints distinct)",
            fps.len()
        );
        identical = false;
    }
    if identical {
        println!("GATE hit==fresh: PASS");
    } else {
        failed = true;
    }

    if let Some(path) = bench_json {
        let s0 = &structures[0];
        let ctx = s0.ctx();
        let frontier = fleet
            .shard(fleet.shard_of(&job_name(0)))
            .frontier(&job_name(0))
            .expect("warm frontier");
        let report = frontier.fastest().schedule.energy_report(&ctx, None);
        let entry = perseus_bench::BenchEntry {
            name: format!("fleet_suite/{n_jobs}jobs_{n_structures}structures"),
            wall_time_s: cold_s.iter().sum::<f64>() + open_loop_s + cached_s.iter().sum::<f64>(),
            total_energy_j: report.total_j(),
            useful_j: report.compute_j + report.fixed_j,
            intrinsic_j: report.blocking_j,
            extrinsic_j: 0.0,
            extras: Vec::new(),
        }
        .with_extra("jobs", n_jobs as f64)
        .with_extra("structures", n_structures as f64)
        .with_extra("shards", n_shards as f64)
        .with_extra("cache_hits", stats.cache.hits as f64)
        .with_extra("cache_misses", stats.cache.misses as f64)
        .with_extra("cache_inserts", stats.cache.inserts as f64)
        .with_extra("hit_rate", hit_rate)
        .with_extra("jobs_per_sec", jobs_per_sec)
        .with_extra("lookup_p50_us", p50_us)
        .with_extra("lookup_p99_us", p99_us)
        .with_extra("cold_admission_ms", cold_mean * 1e3)
        .with_extra("cached_admission_ms", cached_mean * 1e3)
        .with_extra("cached_speedup", speedup);
        perseus_bench::write_bench_json(path.as_ref(), &[entry]).expect("write bench json");
    }
    if failed {
        suite.finish();
        std::process::exit(1);
    }
    suite.finish();
}
