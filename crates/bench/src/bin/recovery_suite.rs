//! Recovery suite: proves the server's crash-recovery contract and
//! reports the re-characterization work the durability layer saves.
//!
//! Three claims, each gating the exit code:
//!
//! 1. **Bit-identical recovery** — a durable server driven through a
//!    scripted history (register, characterize, straggler, frequency
//!    cap, pending-straggler timer), killed, and reopened must carry a
//!    state fingerprint equal to an uninterrupted in-memory server
//!    driven through the identical history.
//! 2. **Work saved** — recovering from a snapshot restores the solved
//!    Pareto frontier without re-running the solver
//!    (`recharacterizations_avoided`), while a journal-only recovery
//!    must re-solve (`recharacterizations_replayed`). The difference is
//!    the frontier solves a crash no longer costs.
//! 3. **Durable chaos replay** — a chaos run whose plan schedules
//!    `CrashRestart` and `CorruptJournalTail` completes, recovers once
//!    per crash, and reproduces bit-identical energy totals when run
//!    again from a fresh directory.
//! 4. **Fleet cache survives the crash** — a durable [`FleetServer`]
//!    whose plan cache was filled by one job and hit by another, killed
//!    and reopened, must (a) recover the cache entry from its WAL,
//!    (b) replay both jobs *without* re-running the solver
//!    (`recharacterizations_avoided`), (c) carry shard state
//!    fingerprints bit-identical to the pre-crash server, and (d) serve
//!    a brand-new job of the same structure as a pure hit.
//!
//! Stdout is deterministic (claim lines only); wall-clock recovery
//! timings go to stderr.
//!
//! Run: `cargo run --release -p perseus-bench --bin recovery_suite`

use perseus_chaos::{model_profiles, run_chaos, ChaosConfig, FaultKind, FaultPlan};
use perseus_cluster::{ClusterConfig, Emulator, Policy};
use perseus_core::FrontierOptions;
use perseus_gpu::{FreqMHz, GpuSpec};
use perseus_models::zoo;
use perseus_pipeline::{OpKey, PipelineDag, ScheduleKind};
use perseus_profiler::ProfileDb;
use perseus_server::{FleetConfig, FleetServer, JobSpec, PerseusServer, TenantId};
use perseus_telemetry::Telemetry;

fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        model: zoo::gpt3_xl(4),
        gpu: GpuSpec::a100_pcie(),
        n_stages: 4,
        n_microbatches: 8,
        n_pipelines: 4,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    }
}

/// Drives one scripted history covering every journaled event kind.
fn drive_history(server: &PerseusServer, pipe: &PipelineDag, profiles: &ProfileDb<OpKey>) {
    let gpu = GpuSpec::a100_pcie();
    server
        .register_job(JobSpec {
            name: "recovery".into(),
            pipe: pipe.clone(),
            gpu: gpu.clone(),
            power_states: None,
        })
        .expect("register");
    server
        .submit_profiles("recovery", profiles.clone(), &FrontierOptions::default())
        .expect("submit")
        .wait()
        .expect("characterize");
    server
        .set_straggler("recovery", 0, 0.0, 1.25)
        .expect("straggler");
    let cap = FreqMHz((gpu.min_freq_mhz + gpu.max_freq_mhz) / 2);
    server.apply_freq_cap("recovery", cap).expect("freq cap");
    // A pending timer that recovery must keep armed across the crash.
    server
        .set_straggler("recovery", 2, 60.0, 1.4)
        .expect("pending straggler");
    server.advance_time("recovery", 10.0).expect("advance");
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("perseus-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// First seed whose durable plan schedules both durability faults.
fn seed_with_durability_faults(iterations: usize, n_pipelines: usize, gpu: &GpuSpec) -> u64 {
    (1..500)
        .find(|&seed| {
            let plan = FaultPlan::from_seed_durable(seed, iterations, n_pipelines, gpu);
            plan.events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::CrashRestart))
                && plan
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::CorruptJournalTail { .. }))
        })
        .expect("some seed below 500 schedules both durability faults")
}

fn claim(name: &str, holds: bool, failed: &mut bool) {
    println!("{name}: {}", if holds { "HOLDS" } else { "FAILED" });
    if !holds {
        *failed = true;
    }
}

fn main() {
    let config = cluster_config();
    let emu = Emulator::new(config.clone()).expect("emulator builds");
    let pipe = emu.pipe().clone();
    let profiles = model_profiles(&pipe, &config.gpu, emu.stages());
    drop(emu);
    let mut failed = false;

    println!("== Recovery suite: crash recovery + re-characterization savings ==");

    // [1] Bit-identical recovery, snapshot path: snapshot + journal tail.
    let baseline = PerseusServer::with_workers(1);
    drive_history(&baseline, &pipe, &profiles);
    let baseline_fp = baseline.state_fingerprint();
    drop(baseline);

    let snap_dir = unique_dir("snap");
    let durable =
        PerseusServer::open_with(&snap_dir, 1, Telemetry::disabled()).expect("open durable");
    drive_history(&durable, &pipe, &profiles);
    durable.snapshot_now().expect("snapshot");
    drop(durable); // crash

    let t0 = std::time::Instant::now();
    let recovered = PerseusServer::recover(&snap_dir).expect("recover from snapshot");
    let snap_recovery = t0.elapsed();
    claim(
        "post-recovery state bit-identical to uninterrupted run (snapshot)",
        recovered.state_fingerprint() == baseline_fp,
        &mut failed,
    );
    let snap_stats = recovered.durability();
    drop(recovered);

    // [1b] Bit-identical recovery, journal-only path: snapshots disabled,
    // so recovery replays every event and re-solves the frontier.
    let wal_dir = unique_dir("wal");
    let durable =
        PerseusServer::open_with(&wal_dir, 1, Telemetry::disabled()).expect("open durable");
    durable.set_snapshot_every(u64::MAX);
    drive_history(&durable, &pipe, &profiles);
    drop(durable); // crash before any snapshot

    let t0 = std::time::Instant::now();
    let recovered = PerseusServer::recover(&wal_dir).expect("recover from journal");
    let wal_recovery = t0.elapsed();
    claim(
        "post-recovery state bit-identical to uninterrupted run (journal-only)",
        recovered.state_fingerprint() == baseline_fp,
        &mut failed,
    );
    let wal_stats = recovered.durability();
    drop(recovered);

    // [2] Work saved: the snapshot recovery avoided the solve the
    // journal-only recovery had to repeat.
    println!(
        "snapshot recovery       {} re-characterizations avoided, {} replayed",
        snap_stats.recharacterizations_avoided, snap_stats.recharacterizations_replayed
    );
    println!(
        "journal-only recovery   {} re-characterizations avoided, {} replayed",
        wal_stats.recharacterizations_avoided, wal_stats.recharacterizations_replayed
    );
    println!(
        "frontier solves saved by snapshotting: {}",
        snap_stats.recharacterizations_avoided
    );
    claim(
        "snapshot recovery skips the solver; journal-only replays it",
        snap_stats.recharacterizations_avoided == 1
            && snap_stats.recharacterizations_replayed == 0
            && wal_stats.recharacterizations_avoided == 0
            && wal_stats.recharacterizations_replayed == 1,
        &mut failed,
    );
    eprintln!(
        "recovery wall time: snapshot {:.3} ms, journal-only (re-solve) {:.3} ms",
        snap_recovery.as_secs_f64() * 1e3,
        wal_recovery.as_secs_f64() * 1e3
    );

    // [3] Durable chaos with CrashRestart/CorruptJournalTail, replayed.
    let iterations = 40;
    let seed = seed_with_durability_faults(iterations, config.n_pipelines, &config.gpu);
    let chaos = |tag: &str| {
        let dir = unique_dir(tag);
        let mut emu = Emulator::new(cluster_config()).expect("emulator builds");
        let cfg = ChaosConfig {
            seed,
            iterations,
            policy: Policy::Perseus,
            durable_dir: Some(dir.clone()),
            ..Default::default()
        };
        let report = run_chaos(&mut emu, &cfg).expect("chaos run completes");
        let _ = std::fs::remove_dir_all(&dir);
        report
    };
    let a = chaos("chaos-a");
    println!(
        "durable chaos seed {seed}: {} crashes survived, {} recoveries, {} journal scribbles",
        a.crashes_survived, a.durability.recoveries, a.journal_corruptions
    );
    claim(
        "every crash recovered from disk",
        a.crashes_survived > 0 && a.durability.recoveries == a.crashes_survived,
        &mut failed,
    );
    let b = chaos("chaos-b");
    claim(
        "durable chaos replay is bit-identical (energy, time, crashes)",
        a.total_energy_j.to_bits() == b.total_energy_j.to_bits()
            && a.total_time_s.to_bits() == b.total_time_s.to_bits()
            && a.crashes_survived == b.crashes_survived,
        &mut failed,
    );

    // [4] Fleet cache durability: one solve feeds two jobs, the server
    // dies, and recovery replays both from the WAL-journaled cache
    // entry instead of the solver.
    let fleet_dir = unique_dir("fleet");
    let fleet_cfg = || FleetConfig::default().shards(2).workers_per_shard(1);
    let tenant = TenantId::from("recovery-tenant");
    let gpu = GpuSpec::a100_pcie();
    let opts = FrontierOptions::default();
    let pre_crash_fps;
    {
        let fleet = FleetServer::open(&fleet_dir, fleet_cfg()).expect("open fleet");
        for name in ["fleet-a", "fleet-b"] {
            fleet
                .register_job(JobSpec {
                    name: name.into(),
                    pipe: pipe.clone(),
                    gpu: gpu.clone(),
                    power_states: None,
                })
                .expect("register fleet job");
            fleet
                .submit_profiles(&tenant, name, profiles.clone(), &opts)
                .expect("fleet submit")
                .wait()
                .expect("fleet characterize");
        }
        let cache = fleet.plan_cache().stats();
        claim(
            "one solve feeds the whole fleet before the crash",
            cache.inserts == 1 && cache.hits >= 1 && cache.entries == 1,
            &mut failed,
        );
        pre_crash_fps = fleet.state_fingerprints();
        // Dropped without any shutdown handshake — a crash.
    }
    let t0 = std::time::Instant::now();
    let fleet = FleetServer::open(&fleet_dir, fleet_cfg()).expect("reopen fleet");
    let fleet_recovery = t0.elapsed();
    let avoided: u64 = (0..2)
        .map(|i| fleet.shard(i).durability().recharacterizations_avoided)
        .sum();
    println!(
        "fleet recovery          {} re-characterizations avoided, {} cache entries recovered",
        avoided,
        fleet.plan_cache().stats().recovered_entries
    );
    claim(
        "fleet cache survives the crash and replay skips the solver",
        fleet.plan_cache().stats().recovered_entries == 1 && avoided >= 1,
        &mut failed,
    );
    claim(
        "post-recovery fleet state bit-identical to pre-crash server",
        fleet.state_fingerprints() == pre_crash_fps,
        &mut failed,
    );
    let inserts_before = fleet.plan_cache().stats().inserts;
    fleet
        .register_job(JobSpec {
            name: "fleet-c".into(),
            pipe: pipe.clone(),
            gpu: gpu.clone(),
            power_states: None,
        })
        .expect("register post-recovery job");
    fleet
        .submit_profiles(&tenant, "fleet-c", profiles.clone(), &opts)
        .expect("post-recovery submit")
        .wait()
        .expect("post-recovery characterize");
    claim(
        "a new job after recovery is a pure cache hit",
        fleet.plan_cache().stats().inserts == inserts_before
            && fleet.plan_cache().stats().hits >= 1,
        &mut failed,
    );
    eprintln!(
        "fleet recovery wall time: {:.3} ms (2 shards, 1 cache entry)",
        fleet_recovery.as_secs_f64() * 1e3
    );
    drop(fleet);

    let _ = std::fs::remove_dir_all(&snap_dir);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&fleet_dir);
    if failed {
        std::process::exit(1);
    }
}
