//! Figure 9 (and Appendix G Figures 11/12): iteration time–energy
//! frontiers of Perseus versus the two Zeus-derived baselines.
//!
//! Emits CSV series (`policy,time_s,energy_j`) for:
//!   (a) GPT-3 1.3B, four-stage pipeline, A100;
//!   (b) GPT-3 2.7B, eight-stage pipeline, A40;
//!   (c) GPT-3 6.7B, 3D parallelism (DP 2, TP 2, PP 4), A40;
//! plus the Appendix G workloads via `--appendix`.
//!
//! Run: `cargo run --release -p perseus-bench --bin fig9_frontier [-- --appendix]`

fn main() {
    let appendix = std::env::args().any(|a| a == "--appendix");
    let stdout = std::io::stdout();
    perseus_bench::fig9_report(&mut stdout.lock(), appendix).expect("write to stdout");
}
