//! Figure 9 (and Appendix G Figures 11/12): iteration time–energy
//! frontiers of Perseus versus the two Zeus-derived baselines.
//!
//! Emits CSV series (`policy,time_s,energy_j`) for:
//!   (a) GPT-3 1.3B, four-stage pipeline, A100;
//!   (b) GPT-3 2.7B, eight-stage pipeline, A40;
//!   (c) GPT-3 6.7B, 3D parallelism (DP 2, TP 2, PP 4), A40;
//! plus the Appendix G workloads via `--appendix`.
//!
//! Run: `cargo run --release -p perseus-bench --bin fig9_frontier [-- --appendix]`

use perseus_baselines::{AllMaxFreq, ZeusGlobal, ZeusPerStage};
use perseus_cluster::{ClusterConfig, Emulator};
use perseus_core::FrontierOptions;
use perseus_core::Planner;
use perseus_gpu::GpuSpec;
use perseus_models::{zoo, ModelSpec};
use perseus_pipeline::ScheduleKind;

struct Config {
    label: &'static str,
    model: fn(usize) -> ModelSpec,
    microbatch: usize,
    n_microbatches: usize,
    gpu: GpuSpec,
    n_stages: usize,
    tensor_parallel: usize,
}

fn frontier_csv(cfg: &Config) {
    let emu = Emulator::new(ClusterConfig {
        model: (cfg.model)(cfg.microbatch),
        gpu: cfg.gpu.clone(),
        n_stages: cfg.n_stages,
        n_microbatches: cfg.n_microbatches,
        n_pipelines: 1,
        tensor_parallel: cfg.tensor_parallel,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    })
    .expect("emulator builds");
    let ctx = emu.ctx();
    let tp = cfg.tensor_parallel as f64;

    println!(
        "# {} on {} ({} stages, TP {})",
        cfg.label, cfg.gpu.name, cfg.n_stages, cfg.tensor_parallel
    );
    println!("policy,time_s,energy_j");
    let base = AllMaxFreq
        .plan(&ctx)
        .expect("all-max")
        .select(None)
        .energy_report(&ctx, None);
    println!("all-max,{:.4},{:.1}", base.iter_time_s, base.total_j() * tp);

    // Perseus: thin the frontier to ~64 evenly spaced points for plotting.
    let points = emu.frontier().points();
    let stride = (points.len() / 64).max(1);
    for p in points.iter().step_by(stride) {
        let r = p.schedule.energy_report(&ctx, None);
        println!("perseus,{:.4},{:.1}", r.iter_time_s, r.total_j() * tp);
    }
    let zeus_global = ZeusGlobal
        .plan(&ctx)
        .expect("zeus global")
        .into_sweep()
        .expect("sweep planner");
    for s in zeus_global.iter().step_by(4) {
        let r = s.energy_report(&ctx, None);
        println!("zeus-global,{:.4},{:.1}", r.iter_time_s, r.total_j() * tp);
    }
    for s in ZeusPerStage
        .plan(&ctx)
        .expect("zeus per-stage")
        .into_sweep()
        .expect("sweep planner")
    {
        let r = s.energy_report(&ctx, None);
        println!(
            "zeus-per-stage,{:.4},{:.1}",
            r.iter_time_s,
            r.total_j() * tp
        );
    }

    // Dominance summary: at a mid-frontier time budget, compare energies.
    let mid_t = (emu.frontier().t_min() + emu.frontier().t_star()) * 0.5;
    let perseus_mid = emu
        .frontier()
        .lookup(mid_t)
        .schedule
        .energy_report(&ctx, None)
        .total_j();
    let zeus_mid = zeus_global
        .iter()
        .filter(|s| s.time_s <= mid_t)
        .map(|s| s.energy_report(&ctx, None).total_j())
        .fold(f64::INFINITY, f64::min);
    println!(
        "# at T={mid_t:.3}s: perseus {perseus_mid:.0} J vs best zeus-global {zeus_mid:.0} J ({})",
        if perseus_mid <= zeus_mid {
            "perseus dominates"
        } else {
            "DOMINANCE VIOLATED"
        }
    );
    println!();
}

fn main() {
    let appendix = std::env::args().any(|a| a == "--appendix");
    let mut configs = vec![
        Config {
            label: "GPT-3 1.3B",
            model: zoo::gpt3_xl,
            microbatch: 4,
            n_microbatches: 128,
            gpu: GpuSpec::a100_pcie(),
            n_stages: 4,
            tensor_parallel: 1,
        },
        Config {
            label: "GPT-3 2.7B",
            model: zoo::gpt3_2_7b,
            microbatch: 4,
            n_microbatches: 256,
            gpu: GpuSpec::a40(),
            n_stages: 8,
            tensor_parallel: 1,
        },
        Config {
            label: "GPT-3 6.7B (3D: DP2 TP2 PP4)",
            model: zoo::gpt3_6_7b,
            microbatch: 4,
            n_microbatches: 128,
            gpu: GpuSpec::a40(),
            n_stages: 4,
            tensor_parallel: 2,
        },
    ];
    if appendix {
        for (label, model, mb, m) in [
            (
                "BERT 1.3B",
                zoo::bert_huge as fn(usize) -> ModelSpec,
                8usize,
                32usize,
            ),
            ("T5 3B", zoo::t5_3b, 4, 32),
            ("Bloom 3B", zoo::bloom_3b, 4, 128),
            ("Wide-ResNet 1.5B", zoo::wide_resnet101_8, 32, 48),
        ] {
            configs.push(Config {
                label,
                model,
                microbatch: mb,
                n_microbatches: m,
                gpu: GpuSpec::a40(),
                n_stages: 8,
                tensor_parallel: 1,
            });
            configs.push(Config {
                label,
                model,
                microbatch: mb,
                n_microbatches: m,
                gpu: GpuSpec::a100_pcie(),
                n_stages: 4,
                tensor_parallel: 1,
            });
        }
    }
    for cfg in &configs {
        frontier_csv(cfg);
    }
}
