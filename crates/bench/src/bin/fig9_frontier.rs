//! Figure 9 (and Appendix G Figures 11/12): iteration time–energy
//! frontiers of Perseus versus the two Zeus-derived baselines.
//!
//! Emits CSV series (`policy,time_s,energy_j`) for:
//!   (a) GPT-3 1.3B, four-stage pipeline, A100;
//!   (b) GPT-3 2.7B, eight-stage pipeline, A40;
//!   (c) GPT-3 6.7B, 3D parallelism (DP 2, TP 2, PP 4), A40;
//! plus the Appendix G workloads via `--appendix`.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! metrics snapshot is printed to **stderr**; stdout stays byte-identical
//! to the metrics-free run.
//!
//! Run: `cargo run --release -p perseus-bench --bin fig9_frontier [-- --appendix] [-- --metrics]`

use perseus_bench::SuiteTelemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let appendix = args.iter().any(|a| a == "--appendix");
    let suite = SuiteTelemetry::from_args(&args);
    let tel = suite.telemetry().clone();
    let stdout = std::io::stdout();
    perseus_bench::fig9_report_with(&mut stdout.lock(), appendix, &tel).expect("write to stdout");
    suite.finish();
}
