//! Large-scale emulation suite (§6.3): reproduces **Table 6** (intrinsic
//! savings vs microbatch count for GPT-3 175B and Bloom 176B), **Figure 7**
//! (savings breakdown at straggler slowdown 1.2 on 1,024 GPUs), and
//! **Figure 8** (savings vs straggler slowdown across the Table 5
//! strong-scaling configurations).
//!
//! One emulator per (model, GPU, microbatch count) is characterized once
//! and reused across all three artifacts.
//!
//! Run: `cargo run --release -p perseus-bench --bin emulation_suite`

fn main() {
    let stdout = std::io::stdout();
    perseus_bench::emulation_suite_report(&mut stdout.lock()).expect("write to stdout");
}
