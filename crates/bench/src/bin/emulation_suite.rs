//! Large-scale emulation suite (§6.3): reproduces **Table 6** (intrinsic
//! savings vs microbatch count for GPT-3 175B and Bloom 176B), **Figure 7**
//! (savings breakdown at straggler slowdown 1.2 on 1,024 GPUs), and
//! **Figure 8** (savings vs straggler slowdown across the Table 5
//! strong-scaling configurations).
//!
//! One emulator per (model, GPU, microbatch count) is characterized once
//! and reused across all three artifacts.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! metrics snapshot is printed to **stderr**; stdout stays byte-identical
//! to the metrics-free run (the golden-trace CI gate relies on this).
//!
//! Run: `cargo run --release -p perseus-bench --bin emulation_suite [-- --metrics]`

use perseus_telemetry::Telemetry;

fn main() {
    let metrics = std::env::args().any(|a| a == "--metrics");
    let tel = if metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let stdout = std::io::stdout();
    perseus_bench::emulation_suite_report_with(&mut stdout.lock(), &tel).expect("write to stdout");
    if metrics {
        eprint!("{}", tel.snapshot().render());
    }
}
