//! Large-scale emulation suite (§6.3): reproduces **Table 6** (intrinsic
//! savings vs microbatch count for GPT-3 175B and Bloom 176B), **Figure 7**
//! (savings breakdown at straggler slowdown 1.2 on 1,024 GPUs), and
//! **Figure 8** (savings vs straggler slowdown across the Table 5
//! strong-scaling configurations).
//!
//! One emulator per (model, GPU, microbatch count) is characterized once
//! and reused across all three artifacts.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! metrics snapshot is printed to **stderr**; stdout stays byte-identical
//! to the metrics-free run (the golden-trace CI gate relies on this).
//! With `--bench-json <path>`, the machine-readable suite results (wall
//! time, energy totals, bloat breakdown) are written as JSON — stdout is
//! untouched either way.
//!
//! Run: `cargo run --release -p perseus-bench --bin emulation_suite \
//!        [-- --metrics] [--bench-json BENCH_perseus.json]`

use perseus_bench::SuiteTelemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = SuiteTelemetry::from_args(&args);
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let tel = suite.telemetry().clone();
    let stdout = std::io::stdout();
    let entries = perseus_bench::emulation_suite_report_with(&mut stdout.lock(), &tel)
        .expect("write to stdout");
    if let Some(path) = bench_json {
        perseus_bench::write_bench_json(path.as_ref(), &entries).expect("write bench json");
    }
    suite.finish();
}
