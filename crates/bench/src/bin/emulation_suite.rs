//! Large-scale emulation suite (§6.3): reproduces **Table 6** (intrinsic
//! savings vs microbatch count for GPT-3 175B and Bloom 176B), **Figure 7**
//! (savings breakdown at straggler slowdown 1.2 on 1,024 GPUs), and
//! **Figure 8** (savings vs straggler slowdown across the Table 5
//! strong-scaling configurations).
//!
//! One emulator per (model, GPU, microbatch count) is characterized once
//! and reused across all three artifacts.
//!
//! Run: `cargo run --release -p perseus-bench --bin emulation_suite`

use std::collections::HashMap;

use perseus_cluster::{strong_scaling_table5, ClusterConfig, Emulator, Policy};
use perseus_core::FrontierOptions;
use perseus_gpu::GpuSpec;
use perseus_models::{zoo, ModelSpec};
use perseus_pipeline::ScheduleKind;

type ModelEntry = (&'static str, fn(usize) -> ModelSpec);
const MODELS: [ModelEntry; 2] = [
    ("GPT-3 175B", zoo::gpt3_175b),
    ("Bloom 176B", zoo::bloom_176b),
];

fn build(
    model: fn(usize) -> ModelSpec,
    gpu: GpuSpec,
    cfg: &perseus_cluster::ScalingConfig,
) -> Emulator {
    Emulator::new(ClusterConfig {
        model: model(1),
        gpu,
        n_stages: cfg.n_stages,
        n_microbatches: cfg.n_microbatches,
        n_pipelines: cfg.n_pipelines,
        tensor_parallel: cfg.tensor_parallel,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    })
    .expect("emulator builds")
}

fn main() {
    let scaling = strong_scaling_table5();

    // ---- Table 6: intrinsic savings vs #microbatches ----
    println!("== Table 6: intrinsic bloat reduction (no stragglers), strong scaling ==");
    println!(
        "{:<12} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "Model", "GPU", "M=12", "M=24", "M=48", "M=96"
    );
    // cache: (model name, gpu name, microbatches) -> emulator
    let mut emus: HashMap<(usize, usize, usize), Emulator> = HashMap::new();
    for (mi, (name, ctor)) in MODELS.iter().enumerate() {
        for (gi, gpu) in [GpuSpec::a100_sxm(), GpuSpec::a40()].iter().enumerate() {
            print!("{:<12} {:<10}", name, if gi == 0 { "A100" } else { "A40" });
            for cfg in scaling.iter().rev() {
                // rev(): ascending microbatch count 12, 24, 48, 96
                let emu = emus
                    .entry((mi, gi, cfg.n_microbatches))
                    .or_insert_with(|| build(*ctor, gpu.clone(), cfg));
                let s = emu.savings(Policy::Perseus, None).expect("savings");
                print!(" {:>8.2}", s.savings_pct);
            }
            println!();
        }
    }
    println!(
        "Paper: GPT-3 175B A100 15.20/14.19/13.62/13.32; Bloom 176B A100 10.47/7.06/5.23/4.28."
    );
    println!("Shape to hold: savings decrease as microbatches increase; GPT-3 > Bloom at A100.\n");

    // ---- Figure 7: savings breakdown, slowdown 1.2, 1,024 GPUs ----
    println!(
        "== Figure 7: savings breakdown, straggler slowdown 1.2, 1024 GPUs (16 pipelines, M=96) =="
    );
    println!(
        "{:<12} {:>16} {:>22} {:>18}",
        "Model", "intrinsic only", "intrinsic+extrinsic", "EnvPipe (intr.)"
    );
    for (mi, (name, _)) in MODELS.iter().enumerate() {
        let emu = &emus[&(mi, 0usize, 96usize)]; // A100, M=96 config
        let intr = emu
            .savings(Policy::Perseus, None)
            .expect("savings")
            .savings_pct;
        let both = emu
            .savings(Policy::Perseus, Some(1.2))
            .expect("savings")
            .savings_pct;
        let ep = emu
            .savings(Policy::EnvPipe, Some(1.2))
            .expect("savings")
            .savings_pct;
        println!("{:<12} {:>15.1}% {:>21.1}% {:>17.1}%", name, intr, both, ep);
    }
    println!("Paper: Perseus up to ~30% total; EnvPipe limited to (suboptimal) intrinsic only.\n");

    // ---- Figure 8: savings vs straggler slowdown across scaling configs ----
    println!("== Figure 8: intrinsic+extrinsic savings vs straggler slowdown (A100) ==");
    let degrees = [1.05, 1.1, 1.2, 1.3, 1.4, 1.5];
    for (mi, (name, _)) in MODELS.iter().enumerate() {
        println!("--- {name} ---");
        print!("{:<26}", "config");
        for d in degrees {
            print!(" {d:>6.2}");
        }
        println!("   T*/T");
        for cfg in &scaling {
            let emu = &emus[&(mi, 0usize, cfg.n_microbatches)];
            print!(
                "{:>5} GPUs x{:>3} pipes M{:<3}",
                cfg.n_gpus, cfg.n_pipelines, cfg.n_microbatches
            );
            for d in degrees {
                let s = emu.savings(Policy::Perseus, Some(d)).expect("savings");
                print!(" {:>6.1}", s.savings_pct);
            }
            println!("   {:.2}", emu.frontier().t_star() / emu.frontier().t_min());
        }
    }
    println!("\nShape to hold: savings rise until T'/T reaches T*/T (the star in the paper's");
    println!("figure), then wane; fewer microbatches (more pipelines) => higher savings %.");
}
