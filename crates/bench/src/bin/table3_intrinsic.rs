//! Table 3: intrinsic energy-bloat reduction (no stragglers) and iteration
//! slowdown — Perseus vs EnvPipe, on (a) four-stage A100 and (b)
//! eight-stage A40, with the workload parameters of Appendix B.
//!
//! Run: `cargo run --release -p perseus-bench --bin table3_intrinsic`

use perseus_bench::{a100_workloads, a40_workloads, testbed_emulator};
use perseus_cluster::Policy;
use perseus_gpu::GpuSpec;

fn main() {
    for (gpu, stages, workloads, label) in [
        (
            GpuSpec::a100_pcie(),
            4usize,
            a100_workloads(),
            "(a) Four-stage pipeline on A100",
        ),
        (
            GpuSpec::a40(),
            8,
            a40_workloads(),
            "(b) Eight-stage pipeline on A40",
        ),
    ] {
        println!("== Table 3 {label} ==");
        println!(
            "{:<18} {:>14} {:>14} {:>14} {:>14}",
            "Model", "Perseus sav%", "EnvPipe sav%", "Perseus slow%", "EnvPipe slow%"
        );
        for w in workloads {
            let emu = match testbed_emulator(&w, gpu.clone(), stages) {
                Ok(e) => e,
                Err(e) => {
                    println!("{:<18} failed: {e}", w.name);
                    continue;
                }
            };
            let p = emu.savings(Policy::Perseus, None).expect("perseus savings");
            let e = emu.savings(Policy::EnvPipe, None).expect("envpipe savings");
            println!(
                "{:<18} {:>14.1} {:>14.1} {:>14.2} {:>14.2}",
                w.name, p.savings_pct, e.savings_pct, p.slowdown_pct, e.slowdown_pct
            );
        }
        println!();
    }
    println!("Paper reference (Table 3a, A100): Perseus 13.2/12.9/10.6/11.7/3.2 %,");
    println!("EnvPipe 8.8/8.0/7.4/8.9/3.7 %; (Table 3b, A40): Perseus 21.1/15.7/28.5/22.4/20.4 %.");
}
