//! Table 3: intrinsic energy-bloat reduction (no stragglers) and iteration
//! slowdown — Perseus vs EnvPipe, on (a) four-stage A100 and (b)
//! eight-stage A40, with the workload parameters of Appendix B.
//!
//! Run: `cargo run --release -p perseus-bench --bin table3_intrinsic`

fn main() {
    let stdout = std::io::stdout();
    perseus_bench::table3_report(&mut stdout.lock()).expect("write to stdout");
}
