//! Table 3: intrinsic energy-bloat reduction (no stragglers) and iteration
//! slowdown — Perseus vs EnvPipe, on (a) four-stage A100 and (b)
//! eight-stage A40, with the workload parameters of Appendix B.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! metrics snapshot is printed to **stderr**; stdout stays byte-identical
//! to the metrics-free run (the golden-trace CI gate relies on this).
//!
//! Run: `cargo run --release -p perseus-bench --bin table3_intrinsic [-- --metrics]`

use perseus_bench::SuiteTelemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = SuiteTelemetry::from_args(&args);
    let tel = suite.telemetry().clone();
    let stdout = std::io::stdout();
    perseus_bench::table3_report_with(&mut stdout.lock(), &tel).expect("write to stdout");
    suite.finish();
}
