//! Table 3: intrinsic energy-bloat reduction (no stragglers) and iteration
//! slowdown — Perseus vs EnvPipe, on (a) four-stage A100 and (b)
//! eight-stage A40, with the workload parameters of Appendix B.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! metrics snapshot is printed to **stderr**; stdout stays byte-identical
//! to the metrics-free run (the golden-trace CI gate relies on this).
//!
//! Run: `cargo run --release -p perseus-bench --bin table3_intrinsic [-- --metrics]`

use perseus_telemetry::Telemetry;

fn main() {
    let metrics = std::env::args().any(|a| a == "--metrics");
    let tel = if metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let stdout = std::io::stdout();
    perseus_bench::table3_report_with(&mut stdout.lock(), &tel).expect("write to stdout");
    if metrics {
        eprint!("{}", tel.snapshot().render());
    }
}
