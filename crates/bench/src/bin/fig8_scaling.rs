//! Figure 8 scaling: how the *extrinsic* share of energy bloat grows
//! with straggler slowdown across the Table 5 strong-scaling
//! configurations (A100, all-max attribution), with a machine-checkable
//! monotone-growth claim line. Stdout is golden-gated in CI.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! snapshot printed to **stderr**; stdout stays byte-identical.
//!
//! Run: `cargo run --release -p perseus-bench --bin fig8_scaling [-- --metrics]`

use perseus_telemetry::Telemetry;

fn main() {
    let metrics = std::env::args().any(|a| a == "--metrics");
    let tel = if metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let stdout = std::io::stdout();
    perseus_bench::fig8_scaling_report_with(&mut stdout.lock(), &tel).expect("write to stdout");
    if metrics {
        eprint!("{}", tel.snapshot().render());
    }
}
