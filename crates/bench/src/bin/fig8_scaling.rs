//! Figure 8 scaling: how the *extrinsic* share of energy bloat grows
//! with straggler slowdown across the Table 5 strong-scaling
//! configurations (A100, all-max attribution), with a machine-checkable
//! monotone-growth claim line. Stdout is golden-gated in CI.
//!
//! With `--metrics`, characterization telemetry is recorded and the
//! snapshot printed to **stderr**; stdout stays byte-identical.
//!
//! Run: `cargo run --release -p perseus-bench --bin fig8_scaling [-- --metrics]`

use perseus_bench::SuiteTelemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = SuiteTelemetry::from_args(&args);
    let tel = suite.telemetry().clone();
    let stdout = std::io::stdout();
    perseus_bench::fig8_scaling_report_with(&mut stdout.lock(), &tel).expect("write to stdout");
    suite.finish();
}
