//! Figure 1 / Figure 10: one-iteration execution timelines, before and
//! after Perseus removes intrinsic energy bloat.
//!
//! For each four-stage workload, prints the ASCII timeline of (a) every
//! computation at maximum frequency and (b) Perseus's `T_min` energy
//! schedule — same makespan, computations stretched to pack tightly.
//! Six microbatches, like the paper's visualization.
//!
//! Run: `cargo run --release -p perseus-bench --bin fig1_timeline`

use perseus_baselines::AllMaxFreq;
use perseus_cluster::{ClusterConfig, Emulator};
use perseus_core::{FrontierOptions, Planner};
use perseus_gpu::GpuSpec;
use perseus_models::zoo;
use perseus_pipeline::{render_timeline, ScheduleKind};

fn main() {
    type Row = (&'static str, fn(usize) -> perseus_models::ModelSpec, usize);
    let workloads: Vec<Row> = vec![
        ("GPT-3 1.3B", zoo::gpt3_xl, 4),
        ("BERT 1.3B", zoo::bert_huge, 8),
        ("T5 3B", zoo::t5_3b, 4),
        ("Bloom 3B", zoo::bloom_3b, 4),
        ("Wide-ResNet101 1.5B", zoo::wide_resnet101_8, 64),
    ];
    for (name, ctor, mb) in workloads {
        let emu = Emulator::new(ClusterConfig {
            model: ctor(mb),
            gpu: GpuSpec::a100_pcie(),
            n_stages: 4,
            n_microbatches: 6,
            n_pipelines: 1,
            tensor_parallel: 1,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        })
        .expect("emulator builds");
        let ctx = emu.ctx();

        println!("=== {name}: all computations at maximum frequency ===");
        let base = AllMaxFreq
            .plan(&ctx)
            .expect("all-max realizes")
            .into_schedule()
            .expect("single schedule");
        println!(
            "{}",
            render_timeline(emu.pipe(), |id, _| base.realized_dur[id.index()], 100)
        );

        println!("=== {name}: Perseus T_min energy schedule (intrinsic bloat removed) ===");
        let point = emu.frontier().fastest();
        println!(
            "{}",
            render_timeline(
                emu.pipe(),
                |id, _| point.schedule.realized_dur[id.index()],
                100
            )
        );
        let b = base.energy_report(&ctx, None);
        let p = point.schedule.energy_report(&ctx, None);
        println!(
            "energy {:.0} J -> {:.0} J ({:.1}% saved), iteration {:.3} s -> {:.3} s\n",
            b.total_j(),
            p.total_j(),
            (1.0 - p.total_j() / b.total_j()) * 100.0,
            b.iter_time_s,
            p.iter_time_s,
        );
    }
}
