//! §6.5: Perseus overhead — online profiling time (simulated GPU-seconds
//! added to the start of training) and optimization-algorithm wall-clock
//! runtime, plus the claimed O(1) straggler lookup.
//!
//! Paper reference: profiling added ~13 min to training start; the
//! algorithm averaged 6.5 min (longest: Bloom 3B, 15.7 min); the 8,192-GPU
//! emulation took 87 s; lookups are instant.
//!
//! Run: `cargo run --release -p perseus-bench --bin overhead`

use std::time::Instant;

use perseus_bench::{a100_workloads, testbed_emulator};
use perseus_gpu::{GpuSpec, SimGpu};
use perseus_profiler::OnlineProfiler;

fn main() {
    println!("== Profiling overhead (simulated GPU time, §5 sweep, 3 reps/freq) ==");
    let gpu_spec = GpuSpec::a100_pcie();
    for w in a100_workloads() {
        let model = (w.model)(w.microbatch);
        let weights = model.fwd_latency_weights(&gpu_spec);
        let part = perseus_models::min_imbalance_partition(&weights, 4).expect("partition");
        let stages = model.stage_workloads(&part, &gpu_spec).expect("stages");
        let mut total = 0.0;
        for sw in &stages {
            let mut gpu = SimGpu::new(gpu_spec.clone());
            let profiler = OnlineProfiler::default();
            let _ = profiler.profile(&mut gpu, &sw.fwd);
            let _ = profiler.profile(&mut gpu, &sw.bwd);
            total = f64::max(total, gpu.clock_s()); // stages profile in parallel
        }
        println!(
            "{:<18} {:>8.1} s of training time (stages profile concurrently)",
            w.name, total
        );
    }

    println!("\n== Algorithm runtime (frontier characterization, wall clock) ==");
    for w in a100_workloads() {
        let t0 = Instant::now();
        let emu = match testbed_emulator(&w, gpu_spec.clone(), 4) {
            Ok(e) => e,
            Err(e) => {
                println!("{:<18} failed: {e}", w.name);
                continue;
            }
        };
        let dt = t0.elapsed();
        println!(
            "{:<18} {:>8.2?} for {} frontier points",
            w.name,
            dt,
            emu.frontier().points().len()
        );

        // Lookup latency: §3.2 claims instant reaction to stragglers.
        let t0 = Instant::now();
        let reps = 10_000;
        let mut acc = 0.0;
        for i in 0..reps {
            let t_prime = emu.frontier().t_min() * (1.0 + (i % 50) as f64 * 0.01);
            acc += emu.frontier().lookup(t_prime).planned_time_s;
        }
        let per = t0.elapsed() / reps;
        println!("{:<18} lookup: {per:?} per query (checksum {acc:.1})", "");
    }
}
