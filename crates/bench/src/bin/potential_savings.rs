//! §2.4 / §6.2.3: potential energy savings (every computation at its
//! minimum-energy frequency — an upper bound that slows training) and the
//! fraction of that potential Perseus realizes with negligible slowdown.
//!
//! Paper reference: potential ≈ 16% (A100) and 27% (A40) on average;
//! Perseus realizes ≈ 74% (A100) and 89% (A40) of it.
//!
//! Run: `cargo run --release -p perseus-bench --bin potential_savings`

use perseus_bench::{a100_workloads, a40_workloads, testbed_emulator};
use perseus_cluster::Policy;
use perseus_gpu::GpuSpec;

fn main() {
    for (gpu, stages, workloads, label) in [
        (
            GpuSpec::a100_pcie(),
            4usize,
            a100_workloads(),
            "A100, four stages",
        ),
        (GpuSpec::a40(), 8, a40_workloads(), "A40, eight stages"),
    ] {
        println!("== Potential vs realized savings ({label}) ==");
        println!(
            "{:<18} {:>12} {:>12} {:>12} {:>10}",
            "Model", "potential%", "perseus%", "realized", "oracle slow%"
        );
        let mut pot_sum = 0.0;
        let mut real_sum = 0.0;
        let mut n = 0.0;
        for w in workloads {
            let emu = match testbed_emulator(&w, gpu.clone(), stages) {
                Ok(e) => e,
                Err(e) => {
                    println!("{:<18} failed: {e}", w.name);
                    continue;
                }
            };
            let oracle = emu.savings(Policy::MinEnergyOracle, None).expect("oracle");
            let perseus = emu.savings(Policy::Perseus, None).expect("perseus");
            let frac = perseus.savings_pct / oracle.savings_pct;
            pot_sum += oracle.savings_pct;
            real_sum += frac;
            n += 1.0;
            println!(
                "{:<18} {:>12.1} {:>12.1} {:>11.0}% {:>10.1}",
                w.name,
                oracle.savings_pct,
                perseus.savings_pct,
                frac * 100.0,
                oracle.slowdown_pct
            );
        }
        println!(
            "average potential {:.1}%, average realized fraction {:.0}%\n",
            pot_sum / n,
            real_sum / n * 100.0
        );
    }
}
