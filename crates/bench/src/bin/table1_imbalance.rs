//! Table 1 / Table 7: minimum imbalance ratios for all zoo models under
//! four and eight pipeline stages, on A100 and A40, plus the partition
//! boundary lists of Appendix B.
//!
//! Run: `cargo run --release -p perseus-bench --bin table1_imbalance`

use perseus_gpu::GpuSpec;
use perseus_models::{min_imbalance_partition, zoo};

fn main() {
    for gpu in [GpuSpec::a100_pcie(), GpuSpec::a40()] {
        println!("== {} ==", gpu.name);
        println!(
            "{:<22} {:>7} {:>9} {:>9}  {:<28} partition (8)",
            "Model", "#Params", "4 stages", "8 stages", "partition (4)"
        );
        for (ctor, name) in zoo::all_presets() {
            let model = ctor(4);
            let weights = model.fwd_latency_weights(&gpu);
            let mut ratios = Vec::new();
            let mut parts = Vec::new();
            for stages in [4usize, 8] {
                match min_imbalance_partition(&weights, stages) {
                    Ok(p) => {
                        ratios.push(format!("{:.2}", p.imbalance_ratio(&weights)));
                        parts.push(format!("{:?}", p.boundaries()));
                    }
                    Err(e) => {
                        ratios.push(format!("({e})"));
                        parts.push(String::new());
                    }
                }
            }
            println!(
                "{:<22} {:>6.1}B {:>9} {:>9}  {:<28} {}",
                name, model.params_b, ratios[0], ratios[1], parts[0], parts[1]
            );
        }
        println!();
    }
    println!("Paper reference (Table 1, A100): GPT-3 1.3B 1.17/1.33, Bloom 3B 1.13/1.25,");
    println!("BERT 0.1B 1.33/2.00, T5 3B 1.06/1.16, WRN101 1.09/1.25. 1.00 = perfect balance.");
}
