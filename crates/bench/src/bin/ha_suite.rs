//! HA suite: the claim gate for replicated serving, leader failover, and
//! live re-planning on profile drift.
//!
//! Seven claims, each gating the exit code:
//!
//! 1. **Bit-identical promotion** — a follower fed the leader's journal
//!    by WAL shipping, then promoted after the leader dies, must carry a
//!    state fingerprint equal to the leader's at the shipped watermark.
//! 2. **Bounded tail replay** — promotion replays only the
//!    shipped-but-unapplied queue (≤ the configured lag bound), never
//!    the journal from genesis.
//! 3. **Drift triggers a warm-started re-plan** — accumulated profile
//!    drift past the watcher threshold must re-characterize through the
//!    warm-started solver (`warm_start_hits` increases), bump the
//!    deployment epoch, and advance + invalidate the fleet plan cache;
//!    drift below the threshold must be a no-op.
//! 4. **Staleness SLO** — after the drift re-plan triggers, lookups must
//!    be served from the re-characterized frontier within the
//!    `drift_staleness` SLO bound (tracked through the observability
//!    pipeline as a real error-budgeted objective).
//! 5. **Torn follower tail** — a follower whose journal loses its tail
//!    mid-record (torn write) must truncate at open exactly like the
//!    leader's recovery does, then resynchronize from the leader's
//!    watermark to a bit-identical state.
//! 6. **Failover mid-run** — a chaos run that kills the leader and
//!    promotes a follower at a scheduled iteration must complete, and a
//!    rerun from a fresh directory must be bit-identical (energy, time).
//! 7. **Watcher inertness** — table 3 and figure 9 rendered with a live
//!    drift watcher active in the same process (shared telemetry) must
//!    stay byte-identical to the golden fixtures.
//!
//! Stdout is deterministic (claim lines only); promotion/recovery wall
//! times go to stderr. `--bench-json PATH` writes the machine-readable
//! artifact; `--metrics` prints the suite's telemetry snapshot.
//!
//! Run: `cargo run --release -p perseus-bench --bin ha_suite \
//!        [-- --bench-json BENCH_ha.json] [--metrics]`

use std::sync::Arc;
use std::time::Instant;

use perseus_bench::SuiteTelemetry;
use perseus_chaos::{model_profiles, run_chaos, ChaosConfig, FaultEvent, FaultKind, FaultPlan};
use perseus_cluster::{ClusterConfig, Emulator};
use perseus_core::{FrontierOptions, PlanCache};
use perseus_gpu::{FreqMHz, GpuSpec, NoiseModel};
use perseus_models::zoo;
use perseus_pipeline::{OpKey, PipelineDag, ScheduleKind};
use perseus_profiler::{ProfileDb, ProfileDrift};
use perseus_server::{
    FollowerServer, JobSpec, PerseusServer, Replicator, Role, DEFAULT_DRIFT_THRESHOLD,
};
use perseus_telemetry::pipeline::series;
use perseus_telemetry::{ObsPipeline, PipelineConfig, SloSpec, Telemetry};

const TABLE3_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/table3_intrinsic.txt"
);
const FIG9_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/fig9_frontier.txt"
);

/// Iterations a drift re-plan gets before lookups must come from the
/// re-characterized frontier.
const STALENESS_BOUND_ITERS: f64 = 5.0;

/// Shipped-but-unapplied records the promotion test's follower tolerates.
const MAX_LAG: u64 = 2;

fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        model: zoo::gpt3_xl(4),
        gpu: GpuSpec::a100_pcie(),
        n_stages: 4,
        n_microbatches: 8,
        n_pipelines: 4,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions {
            tau_s: Some(2e-3),
            max_iters: 50_000,
            stretch: true,
            warm_start: true,
        },
    }
}

fn job_spec(name: &str, pipe: &PipelineDag) -> JobSpec {
    JobSpec {
        name: name.into(),
        pipe: pipe.clone(),
        gpu: GpuSpec::a100_pcie(),
        power_states: None,
    }
}

/// Drives one scripted history covering every journaled event kind, so
/// replication ships a representative WAL.
fn drive_history(server: &PerseusServer, pipe: &PipelineDag, profiles: &ProfileDb<OpKey>) {
    let gpu = GpuSpec::a100_pcie();
    server.register_job(job_spec("ha", pipe)).expect("register");
    server
        .submit_profiles("ha", profiles.clone(), &FrontierOptions::default())
        .expect("submit")
        .wait()
        .expect("characterize");
    server.set_straggler("ha", 0, 0.0, 1.25).expect("straggler");
    let cap = FreqMHz((gpu.min_freq_mhz + gpu.max_freq_mhz) / 2);
    server.apply_freq_cap("ha", cap).expect("freq cap");
    server
        .set_straggler("ha", 2, 60.0, 1.4)
        .expect("pending straggler");
    server.advance_time("ha", 10.0).expect("advance");
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("perseus-ha-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn claim(name: &str, holds: bool, failed: &mut bool) {
    println!("{name}: {}", if holds { "HOLDS" } else { "FAILED" });
    if !holds {
        *failed = true;
    }
}

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = SuiteTelemetry::from_args(&args);
    let bench_json = arg_str(&args, "--bench-json");
    let mut failed = false;
    let started = Instant::now();

    let config = cluster_config();
    let emu = Emulator::new(config.clone()).expect("emulator builds");
    let pipe = emu.pipe().clone();
    let profiles = model_profiles(&pipe, &config.gpu, emu.stages());
    drop(emu);

    println!("== HA suite: replication + failover + live re-planning ==");

    // [1][2] WAL-shipped follower, bounded lag, kill leader, promote.
    let leader_dir = unique_dir("leader");
    let follower_dir = unique_dir("follower");
    let leader = Arc::new(
        PerseusServer::open_with(&leader_dir, 1, Telemetry::disabled()).expect("open leader"),
    );
    drive_history(&leader, &pipe, &profiles);
    let leader_fp = leader.state_fingerprint();
    let watermark = leader.replication_watermark().expect("watermark");

    let mut follower = FollowerServer::open(&follower_dir).expect("open follower");
    follower.set_max_lag(MAX_LAG);
    let replicator = Replicator::new(Arc::clone(&leader));
    replicator.sync(&mut follower).expect("sync");
    let lag_at_kill = follower.stats();
    drop(replicator);
    drop(leader); // the leader dies

    let t0 = Instant::now();
    let (promoted, report) = follower.promote().expect("promote");
    let promotion = t0.elapsed();
    claim(
        "[1] promoted follower fingerprint bit-identical to leader at shipped watermark",
        promoted.state_fingerprint() == leader_fp && promoted.role() == Role::Leader,
        &mut failed,
    );
    claim(
        "[2] promotion replays only the bounded pending tail, never from genesis",
        report.replayed_records <= MAX_LAG
            && report.replayed_records == lag_at_kill.lag_records
            && watermark > report.replayed_records,
        &mut failed,
    );
    println!(
        "promotion replayed {} of {} journaled records (lag bound {})",
        report.replayed_records, watermark, MAX_LAG
    );
    eprintln!(
        "promotion wall time: {:.3} ms",
        promotion.as_secs_f64() * 1e3
    );
    // The promoted server keeps serving: a mutation must succeed.
    promoted
        .set_straggler("ha", 1, 0.0, 1.1)
        .expect("promoted leader serves mutations");
    drop(promoted);

    // [3][4] Drift accumulation → threshold trip → warm-started re-plan,
    // epoch bump, cache invalidation, and the staleness SLO.
    let server = Arc::new(PerseusServer::with_workers(1));
    let cache = Arc::new(PlanCache::new());
    server.set_plan_cache(Some(Arc::clone(&cache)));
    server
        .register_job(job_spec("ha", &pipe))
        .expect("register");
    let opts = cluster_config().frontier;
    server
        .submit_profiles("ha", profiles.clone(), &opts)
        .expect("submit")
        .wait()
        .expect("characterize");
    let before = server.job_status("ha").expect("status");
    let cache_epoch0 = cache.stats().epoch;

    let mut drift = ProfileDrift::new(
        profiles.clone(),
        NoiseModel {
            time_rel_sigma: 0.0,
            energy_rel_sigma: 0.0,
            seed: 7,
        },
    );
    // Below threshold: 1% drift against the 5% default must be a no-op.
    let small = drift.shift_all(1.01, 1.01);
    let no_replan = server.ingest_drift("ha", &small).expect("ingest small");
    let untouched = server.job_status("ha").expect("status");
    // Accumulate past the threshold: cumulative ≈ 7% time drift.
    let big = drift.shift_all(1.06, 1.05);
    let trigger_iter: u64 = 100; // the simulated iteration of the trip
    let ticket = server
        .ingest_drift("ha", &big)
        .expect("ingest big")
        .expect("threshold crossed must re-plan");
    ticket.wait().expect("re-characterize");
    // The client-visible poll loop: iterations until a lookup answers
    // from the re-characterized frontier.
    let mut staleness = 0u64;
    for i in 1..=STALENESS_BOUND_ITERS as u64 {
        let status = server.job_status("ha").expect("status");
        if status.epoch > before.epoch {
            staleness = i;
            break;
        }
    }
    let after = server.job_status("ha").expect("status");
    claim(
        "[3] drift past threshold re-plans warm-started; below threshold is a no-op",
        no_replan.is_none()
            && untouched.epoch == before.epoch
            && server.drift_replans() == 1
            && after.epoch > before.epoch
            && after.solver.warm_start_hits > before.solver.warm_start_hits
            && cache.stats().epoch > cache_epoch0
            && cache.stats().invalidations >= 1,
        &mut failed,
    );
    let obs = ObsPipeline::new(PipelineConfig {
        slos: vec![SloSpec::drift_staleness(STALENESS_BOUND_ITERS)],
        ..PipelineConfig::default()
    });
    obs.observe_metric(
        trigger_iter + staleness,
        series::DRIFT_STALENESS_ITERS,
        staleness as f64,
    );
    let slo = obs.slo_status();
    claim(
        "[4] post-drift lookups served within the staleness SLO",
        staleness >= 1
            && obs.slo_healthy()
            && slo.len() == 1
            && slo[0].ticks == 1
            && slo[0].violations == 0,
        &mut failed,
    );
    println!(
        "drift watcher: threshold {:.2}, replans {}, staleness {} iters (bound {})",
        DEFAULT_DRIFT_THRESHOLD,
        server.drift_replans(),
        staleness,
        STALENESS_BOUND_ITERS
    );
    let warm_start_delta = after.solver.warm_start_hits - before.solver.warm_start_hits;
    drop(server);

    // [5] Torn follower tail: tear the shipped journal mid-record, reopen
    // (truncates like `Journal::open` always does), resync, converge.
    let leader_dir2 = unique_dir("leader2");
    let follower_dir2 = unique_dir("follower2");
    let leader = Arc::new(
        PerseusServer::open_with(&leader_dir2, 1, Telemetry::disabled()).expect("open leader"),
    );
    leader
        .register_job(job_spec("ha", &pipe))
        .expect("register");
    leader
        .submit_profiles("ha", profiles.clone(), &FrontierOptions::default())
        .expect("submit")
        .wait()
        .expect("characterize");
    let mut follower = FollowerServer::open(&follower_dir2).expect("open follower");
    let replicator = Replicator::new(Arc::clone(&leader));
    replicator.sync(&mut follower).expect("sync");
    let shipped_before_tear = follower.shipped_seq();
    drop(follower); // follower process dies mid-ship…

    // …with the last shipped record torn: the tail loses 7 bytes.
    let journal_path = follower_dir2.join("server.journal");
    let len = std::fs::metadata(&journal_path)
        .expect("journal metadata")
        .len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&journal_path)
        .expect("open follower journal");
    file.set_len(len - 7).expect("tear journal tail");
    drop(file);

    // Meanwhile the leader keeps mutating.
    leader.set_straggler("ha", 3, 0.0, 1.2).expect("straggler");
    leader.advance_time("ha", 5.0).expect("advance");

    let mut follower = FollowerServer::open(&follower_dir2).expect("reopen follower");
    let truncated = follower.shipped_seq() < shipped_before_tear;
    replicator.sync(&mut follower).expect("resync");
    follower.apply_all();
    claim(
        "[5] torn follower tail truncated at open and resynced bit-identical",
        truncated
            && follower.shipped_seq() == leader.replication_watermark().expect("watermark")
            && follower.server().state_fingerprint() == leader.state_fingerprint(),
        &mut failed,
    );
    drop(replicator);
    drop(leader);
    drop(follower);

    // [6] Leader failover mid-chaos-run, replayed bit-identically.
    let failover_chaos = |tag: &str| {
        let dir = unique_dir(tag);
        let plan = FaultPlan::from_events(
            0,
            vec![
                FaultEvent {
                    at_iteration: 10,
                    kind: FaultKind::DriftBurst {
                        pipeline: 1,
                        degree: 1.4,
                    },
                },
                FaultEvent {
                    at_iteration: 20,
                    kind: FaultKind::LeaderFailover,
                },
                FaultEvent {
                    at_iteration: 30,
                    kind: FaultKind::StragglerRecover { pipeline: 1 },
                },
            ],
        );
        let mut emu = Emulator::new(cluster_config()).expect("emulator builds");
        let report = run_chaos(
            &mut emu,
            &ChaosConfig {
                seed: 0,
                iterations: 40,
                durable_dir: Some(dir.clone()),
                plan: Some(plan),
                ..ChaosConfig::default()
            },
        )
        .expect("failover chaos run");
        let _ = std::fs::remove_dir_all(&dir);
        report
    };
    let a = failover_chaos("chaos-a");
    let b = failover_chaos("chaos-b");
    claim(
        "[6] mid-run leader failover survives and replays bit-identical",
        a.leader_failovers == 1
            && b.leader_failovers == 1
            && a.faults_injected == a.faults_scheduled
            && a.total_energy_j.to_bits() == b.total_energy_j.to_bits()
            && a.total_time_s.to_bits() == b.total_time_s.to_bits(),
        &mut failed,
    );

    // [7] Watcher inertness: a drift watcher re-planning in-process,
    // sharing the live telemetry handle, must leave table 3 and figure 9
    // byte-identical to the goldens.
    let active_tel = Telemetry::enabled();
    let watched = Arc::new(PerseusServer::with_telemetry(1, active_tel.clone()));
    watched
        .register_job(job_spec("ha", &pipe))
        .expect("register");
    watched
        .submit_profiles("ha", profiles.clone(), &opts)
        .expect("submit")
        .wait()
        .expect("characterize");
    let mut watched_drift = ProfileDrift::new(
        profiles.clone(),
        NoiseModel {
            time_rel_sigma: 0.0,
            energy_rel_sigma: 0.0,
            seed: 11,
        },
    );
    let deltas = watched_drift.shift_all(1.08, 1.06);
    watched
        .ingest_drift("ha", &deltas)
        .expect("ingest")
        .expect("re-plan")
        .wait()
        .expect("re-characterize");
    let mut table3_out = Vec::new();
    perseus_bench::table3_report_with(&mut table3_out, &active_tel).expect("table3");
    let mut fig9_out = Vec::new();
    perseus_bench::fig9_report_with(&mut fig9_out, false, &active_tel).expect("fig9");
    let table3_golden = std::fs::read(TABLE3_GOLDEN).expect("read table3 golden");
    let fig9_golden = std::fs::read(FIG9_GOLDEN).expect("read fig9 golden");
    claim(
        "[7] live drift watcher leaves table3/fig9 byte-identical to the goldens",
        watched.drift_replans() == 1 && table3_out == table3_golden && fig9_out == fig9_golden,
        &mut failed,
    );
    drop(watched);

    if let Some(path) = bench_json {
        let entry = perseus_bench::BenchEntry {
            name: "ha_suite/replication_failover_replanning".to_string(),
            wall_time_s: started.elapsed().as_secs_f64(),
            total_energy_j: a.total_energy_j,
            useful_j: 0.0,
            intrinsic_j: 0.0,
            extrinsic_j: 0.0,
            extras: Vec::new(),
        }
        .with_extra("journal_records", watermark as f64)
        .with_extra("promotion_replayed_records", report.replayed_records as f64)
        .with_extra("promotion_lag_bound", MAX_LAG as f64)
        .with_extra("promotion_wall_ms", promotion.as_secs_f64() * 1e3)
        .with_extra("drift_staleness_iters", staleness as f64)
        .with_extra("warm_start_hits_delta", warm_start_delta as f64)
        .with_extra("leader_failovers", a.leader_failovers as f64);
        perseus_bench::write_bench_json(path.as_ref(), &[entry]).expect("write bench json");
    }

    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
    let _ = std::fs::remove_dir_all(&leader_dir2);
    let _ = std::fs::remove_dir_all(&follower_dir2);
    if failed {
        suite.finish();
        std::process::exit(1);
    }
    suite.finish();
}
