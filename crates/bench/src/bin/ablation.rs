//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. **unit time τ** — frontier quality and algorithm runtime versus step
//!    granularity (the paper uses 1 ms; §4.2 footnote 4 notes the
//!    tradeoff);
//! 2. **stretch-into-slack pass** — our relaxation of the paper's
//!    lower-bounded min cut; disabling it shows the energy left on the
//!    table by pure fixed-step cuts.
//!
//! Run: `cargo run --release -p perseus-bench --bin ablation`

use std::time::Instant;

use perseus_baselines::AllMaxFreq;
use perseus_core::{characterize, FrontierOptions, PlanContext, Planner};
use perseus_gpu::GpuSpec;
use perseus_models::{min_imbalance_partition, zoo};
use perseus_pipeline::{PipelineBuilder, ScheduleKind};

fn main() {
    let gpu = GpuSpec::a100_pcie();
    let model = zoo::gpt3_xl(4);
    let weights = model.fwd_latency_weights(&gpu);
    let partition = min_imbalance_partition(&weights, 4).expect("partition");
    let stages = model.stage_workloads(&partition, &gpu).expect("stages");
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 32)
        .build()
        .expect("pipe");
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).expect("ctx");
    let base = AllMaxFreq
        .plan(&ctx)
        .expect("all-max")
        .select(None)
        .energy_report(&ctx, None);

    println!("GPT-3 1.3B, 4 stages, 32 microbatches, A100 — intrinsic savings at T_min");
    println!(
        "{:<10} {:>9} {:>12} {:>11} {:>9} {:>9}",
        "tau", "stretch", "savings %", "slowdown %", "points", "runtime"
    );
    for tau_ms in [0.5f64, 1.0, 2.0, 5.0, 10.0, 25.0] {
        for stretch in [true, false] {
            let opts = FrontierOptions {
                tau_s: Some(tau_ms * 1e-3),
                max_iters: 500_000,
                stretch,
                warm_start: true,
            };
            let t0 = Instant::now();
            let frontier = characterize(&ctx, &opts).expect("frontier");
            let dt = t0.elapsed();
            let r = frontier.fastest().schedule.energy_report(&ctx, None);
            println!(
                "{:>7.1}ms {:>9} {:>12.2} {:>11.3} {:>9} {:>9.2?}",
                tau_ms,
                stretch,
                (1.0 - r.total_j() / base.total_j()) * 100.0,
                (r.iter_time_s / base.iter_time_s - 1.0) * 100.0,
                frontier.points().len(),
                dt,
            );
        }
    }
    println!("\nExpected shape: with the stretch pass, savings are stable across τ");
    println!("(the pass reclaims step overshoot); without it, coarse τ leaks energy.");
}
