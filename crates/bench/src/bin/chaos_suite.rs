//! Chaos suite: the fault-injection counterpart of `emulation_suite`.
//!
//! * `--seed 0` (the default) runs **zero** faults and emits the exact
//!   `emulation_suite` report — byte-identical by construction, since both
//!   binaries call the same report function. This anchors the chaos layer:
//!   installing it without faults changes nothing.
//! * `--seed N` (nonzero) derives a deterministic fault plan from `N` and
//!   replays it against the cluster emulator and a live planning server,
//!   printing the absorption report. The process exits nonzero if any
//!   scheduled fault failed to inject, a straggler notification went
//!   unanswered, or `--max-degraded` was exceeded (the CI regression
//!   gate for `degraded_lookups`).
//!
//! With `--metrics`, telemetry (server lookup latency, degraded-lookup
//! counts, characterization spans) is recorded and the metrics snapshot is
//! printed to **stderr**; stdout stays byte-identical to the metrics-free
//! run. With `--bench-json <path>`, machine-readable results (wall time,
//! energy totals, bloat breakdown from the flight record) are written as
//! JSON. With `--flight-dump <path>`, a faulted run leaves its
//! per-iteration flight record as a JSON post-mortem.
//!
//! With `--durable-dir <dir>`, the planning server journals to `dir` and
//! the fault plan is drawn from the extended durable vocabulary
//! (`CrashRestart` kills and recovers the server in place;
//! `CorruptJournalTail` scribbles over the write-ahead log). Stdout keeps
//! the same deterministic report format — two durable runs of the same
//! seed are byte-identical, which is what the CI recovery job compares —
//! and the durability counters go to **stderr**. The run fails if a crash
//! was scheduled but a recovery did not restore state from disk.
//!
//! Run: `cargo run --release -p perseus-bench --bin chaos_suite -- \
//!        [--seed N] [--iterations N] [--max-degraded N] [--metrics] \
//!        [--bench-json BENCH_perseus.json] [--flight-dump flight.json] \
//!        [--durable-dir /tmp/perseus-journal]`

use perseus_bench::SuiteTelemetry;
use perseus_chaos::{run_chaos, ChaosConfig};
use perseus_cluster::{ClusterConfig, Emulator, Policy};
use perseus_core::FrontierOptions;
use perseus_gpu::GpuSpec;
use perseus_models::zoo;
use perseus_pipeline::ScheduleKind;

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} wants a non-negative integer, got {v:?}"))
        })
}

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_value(&args, "--seed").unwrap_or(0);
    let iterations = arg_value(&args, "--iterations").unwrap_or(100) as usize;
    let max_degraded = arg_value(&args, "--max-degraded");
    let suite = SuiteTelemetry::from_args(&args);
    let bench_json = arg_str(&args, "--bench-json");
    let flight_dump = arg_str(&args, "--flight-dump");
    let durable_dir = arg_str(&args, "--durable-dir");
    let tel = suite.telemetry().clone();

    if seed == 0 {
        // Fault-free: exactly the emulation suite, same code path.
        let stdout = std::io::stdout();
        let entries = perseus_bench::emulation_suite_report_with(&mut stdout.lock(), &tel)
            .expect("write to stdout");
        if let Some(path) = bench_json {
            perseus_bench::write_bench_json(path.as_ref(), &entries).expect("write bench json");
        }
        suite.finish();
        return;
    }

    let mut emu = Emulator::with_telemetry(
        ClusterConfig {
            model: zoo::gpt3_xl(4),
            gpu: GpuSpec::a100_pcie(),
            n_stages: 4,
            n_microbatches: 8,
            n_pipelines: 4,
            tensor_parallel: 1,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        },
        tel.clone(),
    )
    .expect("emulator builds");
    let cfg = ChaosConfig {
        seed,
        iterations,
        policy: Policy::Perseus,
        flight_dump: flight_dump.map(Into::into),
        durable_dir: durable_dir.map(Into::into),
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let r = run_chaos(&mut emu, &cfg).expect("chaos run completes");
    if let Some(path) = bench_json {
        let mut split = perseus_core::EnergyBreakdown::default();
        for s in &r.flight.samples {
            split.accumulate(perseus_core::EnergyBreakdown {
                useful_j: s.useful_j,
                intrinsic_j: s.intrinsic_j,
                extrinsic_j: s.extrinsic_j,
            });
        }
        let entry = perseus_bench::BenchEntry::from_breakdown(
            format!("chaos_suite/seed{seed}"),
            t0.elapsed().as_secs_f64(),
            &split,
        );
        perseus_bench::write_bench_json(path.as_ref(), &[entry]).expect("write bench json");
    }

    println!("== Chaos suite: seed {seed}, {iterations} iterations ==");
    println!("faults scheduled        {:>10}", r.faults_scheduled);
    println!("faults injected         {:>10}", r.faults_injected);
    println!("server faults absorbed  {:>10}", r.server_faults_absorbed);
    println!("degraded lookups        {:>10}", r.degraded_lookups);
    println!(
        "straggler notifications {:>10} sent, {} answered",
        r.notifications_sent, r.notifications_answered
    );
    println!("client retries          {:>10}", r.client_retries);
    println!("total energy            {:>14.1} J", r.total_energy_j);
    println!("total time              {:>14.3} s", r.total_time_s);
    println!(
        "min iteration time      {:>14.4} s (fault-free critical path {:.4} s)",
        r.min_iter_time_s, r.fault_free_critical_path_s
    );

    let mut failed = false;
    if r.faults_injected != r.faults_scheduled {
        eprintln!(
            "FAIL: {} of {} scheduled faults injected",
            r.faults_injected, r.faults_scheduled
        );
        failed = true;
    }
    if r.notifications_answered != r.notifications_sent {
        eprintln!(
            "FAIL: {} of {} straggler notifications answered",
            r.notifications_answered, r.notifications_sent
        );
        failed = true;
    }
    if r.min_iter_time_s < r.fault_free_critical_path_s - 1e-9 {
        eprintln!(
            "FAIL: iteration time {} beat the fault-free critical path {}",
            r.min_iter_time_s, r.fault_free_critical_path_s
        );
        failed = true;
    }
    if let Some(max) = max_degraded {
        if r.degraded_lookups > max {
            eprintln!(
                "FAIL: degraded_lookups {} exceeds recorded baseline {max}",
                r.degraded_lookups
            );
            failed = true;
        }
    }
    if cfg.durable_dir.is_some() {
        let d = r.durability;
        eprintln!("-- durability (stderr; stdout stays format-stable) --");
        eprintln!("crashes survived        {:>10}", r.crashes_survived);
        eprintln!("journal corruptions     {:>10}", r.journal_corruptions);
        eprintln!("journal appends         {:>10}", d.journal_appends);
        eprintln!("recoveries              {:>10}", d.recoveries);
        eprintln!("replayed events         {:>10}", d.replayed_events);
        eprintln!("truncated records       {:>10}", d.truncated_records);
        eprintln!("snapshots written       {:>10}", d.snapshots_written);
        eprintln!(
            "re-characterizations    {:>10} avoided, {} replayed",
            d.recharacterizations_avoided, d.recharacterizations_replayed
        );
        if r.crashes_survived > 0 && d.recoveries < r.crashes_survived {
            eprintln!(
                "FAIL: {} crashes but only {} recoveries restored state from disk",
                r.crashes_survived, d.recoveries
            );
            failed = true;
        }
    }
    if failed {
        suite.finish();
        std::process::exit(1);
    }
    suite.finish();
}
