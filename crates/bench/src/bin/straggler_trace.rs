//! Training-segment simulation under a thermal-cycling straggler trace
//! (extension beyond the paper's per-iteration tables): total energy and
//! time over 50 iterations for each policy, plus the cost of server
//! reaction latency.
//!
//! Run: `cargo run --release -p perseus-bench --bin straggler_trace`

use perseus_cluster::{
    simulate_run, thermal_cycle_trace, ClusterConfig, Emulator, Policy, RunConfig,
};
use perseus_core::FrontierOptions;
use perseus_gpu::GpuSpec;
use perseus_models::zoo;
use perseus_pipeline::ScheduleKind;

fn main() {
    let emu = Emulator::new(ClusterConfig {
        model: zoo::gpt3_xl(4),
        gpu: GpuSpec::a40(),
        n_stages: 4,
        n_microbatches: 16,
        n_pipelines: 8,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions::default(),
    })
    .expect("emulator");

    // Pipeline 3 overheats every 10 iterations for 4 iterations, at a
    // 1.25x slowdown — a datacenter hot spot cycling with the CRAC units.
    let iters = 50;
    let trace = thermal_cycle_trace(3, 1.25, 10, 4, iters);

    println!("GPT-3 1.3B, 8 pipelines on A40, thermal cycling on pipeline 3 (1.25x, 40% duty)");
    println!(
        "{:<16} {:>8} {:>14} {:>12} {:>10}",
        "policy", "react", "energy (kJ)", "time (s)", "avg kW"
    );
    for (policy, name) in [
        (Policy::AllMax, "all-max"),
        (Policy::EnvPipe, "envpipe"),
        (Policy::ZeusGlobal, "zeus-global"),
        (Policy::Perseus, "perseus"),
    ] {
        for delay in [0usize, 2] {
            let cfg = RunConfig {
                iterations: iters,
                reaction_delay_iters: delay,
            };
            let s = simulate_run(&emu, policy, &trace, &cfg).expect("run");
            println!(
                "{:<16} {:>8} {:>14.1} {:>12.2} {:>10.2}",
                name,
                if delay == 0 { "instant" } else { "2 iters" },
                s.total_energy_j / 1e3,
                s.total_time_s,
                s.avg_power_w() / 1e3,
            );
        }
    }
    println!("\nExpected shape: Perseus wins on energy at equal time; reaction latency");
    println!("erodes (but does not erase) the win — stale slow schedules cost time.");
}
