//! GPU-generation projection (§6.2.1's closing claim): newer GPUs with
//! higher maximum clocks and TDPs should show larger percentage *and*
//! absolute savings. Runs GPT-3 2.7B through V100 → A100 → A40 → H100.
//!
//! Run: `cargo run --release -p perseus-bench --bin gpu_projection`

use perseus_cluster::{ClusterConfig, Emulator, Policy};
use perseus_core::FrontierOptions;
use perseus_gpu::GpuSpec;
use perseus_models::zoo;
use perseus_pipeline::ScheduleKind;

fn main() {
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12}",
        "GPU", "clocks", "savings %", "J saved/it", "slowdown %"
    );
    for gpu in [
        GpuSpec::v100(),
        GpuSpec::a100_pcie(),
        GpuSpec::a40(),
        GpuSpec::h100_sxm(),
    ] {
        let emu = Emulator::new(ClusterConfig {
            model: zoo::gpt3_2_7b(4),
            gpu: gpu.clone(),
            n_stages: 4,
            n_microbatches: 24,
            n_pipelines: 1,
            tensor_parallel: 1,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        })
        .expect("emulator");
        let base = emu.report(Policy::AllMax, None).expect("base");
        let p = emu.report(Policy::Perseus, None).expect("perseus");
        let saved = base.total_j() - p.total_j();
        println!(
            "{:<24} {:>4}-{:<5} {:>12.1} {:>12.0} {:>12.2}",
            gpu.name,
            gpu.min_freq_mhz,
            gpu.max_freq_mhz,
            (1.0 - p.total_j() / base.total_j()) * 100.0,
            saved,
            (p.non_straggler.iter_time_s / base.non_straggler.iter_time_s - 1.0) * 100.0,
        );
    }
    println!("\nPaper claim (§6.2.1): wider clock ranges (A40 1740, H100 1980 MHz) and");
    println!("higher TDPs yield larger relative and absolute savings than A100/V100.");
}
