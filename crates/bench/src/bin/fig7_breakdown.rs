//! Figure 7 breakdown: energy-bloat attribution of the §6.3 M=96 A100
//! workloads at straggler slowdown 1.2 — total cluster joules split into
//! useful / intrinsic-bloat / extrinsic-bloat under all-max and Perseus,
//! with per-kind and per-stage detail and a machine-checkable claim line
//! (both bloat components nonzero). Stdout is golden-gated in CI.
//!
//! * `--svg <path>` additionally renders the stacked-bar chart.
//! * `--metrics` records characterization telemetry and prints the
//!   snapshot to **stderr**; stdout stays byte-identical.
//!
//! Run: `cargo run --release -p perseus-bench --bin fig7_breakdown \
//!        [-- --svg fig7.svg] [--metrics]`

use perseus_bench::SuiteTelemetry;
use perseus_viz::{breakdown_svg, BreakdownBar, BreakdownPlot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = SuiteTelemetry::from_args(&args);
    let svg_path = args
        .iter()
        .position(|a| a == "--svg")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let tel = suite.telemetry().clone();

    let stdout = std::io::stdout();
    let rows = perseus_bench::fig7_breakdown_report_with(&mut stdout.lock(), &tel)
        .expect("write to stdout");

    if let Some(path) = svg_path {
        let svg = breakdown_svg(&BreakdownPlot {
            title: "Figure 7: energy-bloat breakdown (slowdown 1.2)".into(),
            bars: rows
                .iter()
                .map(|r| BreakdownBar {
                    label: format!("{} {}", r.model, r.policy),
                    useful_j: r.breakdown.useful_j,
                    intrinsic_j: r.breakdown.intrinsic_j,
                    extrinsic_j: r.breakdown.extrinsic_j,
                    sleep_j: 0.0,
                })
                .collect(),
        });
        std::fs::write(&path, svg).expect("write svg");
    }
    suite.finish();
}
