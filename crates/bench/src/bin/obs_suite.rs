//! Observability suite: the claim gate for the streaming telemetry
//! pipeline (time-series store, drift detectors, SLO engine, fleet
//! rollup, HTTP endpoint).
//!
//! Four claims, each gating the exit code:
//!
//! 1. **Drift caught within bound** — a scripted
//!    [`FaultKind::DriftBurst`] (sustained 1.5× straggler) injected at a
//!    known iteration of a chaos run must raise a firing alert within 10
//!    iterations of onset, and no alert may precede the fault.
//! 2. **Zero false positives** — the fault-free seed-0 chaos run must
//!    emit zero alerts over its whole length.
//! 3. **Exact fleet rollup** — under `sharded_telemetry`, every counter
//!    and histogram sample in [`FleetServer::metrics_rollup`] must equal
//!    the sum of the corresponding per-registry samples (shards plus the
//!    fleet's own registry), exactly.
//! 4. **Observation changes nothing** — the table 3 and figure 9 reports
//!    rendered with live telemetry *and* a live streaming pipeline must
//!    be byte-identical to the golden fixtures recorded without either.
//!
//! Stdout is deterministic (claim lines only); `--bench-json PATH`
//! writes the machine-readable artifact. `--metrics` prints the suite's
//! own telemetry snapshot to stderr; `--serve <addr>` keeps serving
//! `/metrics`, `/alerts`, `/slo`, `/health` after the run.
//!
//! Run: `cargo run --release -p perseus-bench --bin obs_suite \
//!        [-- --bench-json BENCH_obs.json] [--metrics] [--serve 127.0.0.1:9184]`

use std::sync::Arc;
use std::time::Instant;

use perseus_bench::SuiteTelemetry;
use perseus_chaos::{run_chaos, ChaosConfig, FaultEvent, FaultKind, FaultPlan};
use perseus_cluster::{
    simulate_run, simulate_run_observed, ClusterConfig, Emulator, Policy, RunConfig,
};
use perseus_core::FrontierOptions;
use perseus_gpu::GpuSpec;
use perseus_models::zoo;
use perseus_pipeline::ScheduleKind;
use perseus_server::{FleetConfig, FleetServer, JobSpec, TenantId};
use perseus_telemetry::{AlertState, ObsPipeline, Telemetry};

const TABLE3_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/table3_intrinsic.txt"
);
const FIG9_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/fig9_frontier.txt"
);

/// Iterations the detectors get to flag a drift burst.
const DRIFT_BOUND: u64 = 10;

fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        model: zoo::gpt3_xl(4),
        gpu: GpuSpec::a100_pcie(),
        n_stages: 4,
        n_microbatches: 8,
        n_pipelines: 4,
        tensor_parallel: 1,
        schedule: ScheduleKind::OneFOneB,
        frontier: FrontierOptions {
            tau_s: Some(2e-3),
            max_iters: 50_000,
            stretch: true,
            warm_start: true,
        },
    }
}

fn claim(name: &str, holds: bool, failed: &mut bool) {
    println!("{name}: {}", if holds { "HOLDS" } else { "FAILED" });
    if !holds {
        *failed = true;
    }
}

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite = SuiteTelemetry::from_args(&args);
    let bench_json = arg_str(&args, "--bench-json");
    let tel = suite.telemetry().clone();
    let mut failed = false;
    let started = Instant::now();

    println!("== Observability suite: drift detection + rollup + pipeline inertness ==");

    // [1] Scripted drift burst: sustained 1.5x slowdown at iteration 60
    // of 120. The streaming detectors watch energy/iteration, sync time,
    // and degraded-lookup rate; any of them catching the step counts.
    const ONSET: usize = 60;
    let plan = FaultPlan::from_events(
        0,
        vec![FaultEvent {
            at_iteration: ONSET,
            kind: FaultKind::DriftBurst {
                pipeline: 1,
                degree: 1.5,
            },
        }],
    );
    let mut emu = Emulator::with_telemetry(cluster_config(), tel.clone()).expect("emulator");
    let drifted = run_chaos(
        &mut emu,
        &ChaosConfig {
            seed: 0,
            iterations: 120,
            plan: Some(plan),
            ..ChaosConfig::default()
        },
    )
    .expect("drift chaos run");
    let first_firing = drifted
        .alerts
        .iter()
        .find(|a| a.state == AlertState::Firing)
        .map(|a| a.iteration);
    let detection_latency = first_firing.map(|at| at.saturating_sub(ONSET as u64));
    claim(
        "[1] drift burst flagged within 10 iterations of onset",
        matches!(detection_latency, Some(lag) if lag <= DRIFT_BOUND)
            && drifted.alerts.iter().all(|a| a.iteration >= ONSET as u64),
        &mut failed,
    );

    // [2] Seed 0 is the empty plan: a fault-free run must stay silent.
    let mut emu = Emulator::new(cluster_config()).expect("emulator");
    let quiet = run_chaos(
        &mut emu,
        &ChaosConfig {
            seed: 0,
            iterations: 200,
            ..ChaosConfig::default()
        },
    )
    .expect("fault-free chaos run");
    claim(
        "[2] zero false positives over 200 fault-free iterations (seed 0)",
        quiet.faults_injected == 0 && quiet.alerts.is_empty(),
        &mut failed,
    );

    // [3] Exact rollup: disjoint per-shard registries, so every
    // rolled-up sample must equal the sum over the per-registry samples.
    let fleet_tel = Telemetry::enabled();
    let fleet = Arc::new(FleetServer::with_telemetry(
        FleetConfig::default()
            .shards(3)
            .workers_per_shard(1)
            .sharded_telemetry(true),
        fleet_tel.clone(),
    ));
    let tenant = TenantId::from("obs-suite");
    let emu = Emulator::new(cluster_config()).expect("emulator");
    let profiles = perseus_chaos::model_profiles(emu.pipe(), &cluster_config().gpu, emu.stages());
    for name in ["job-a", "job-b", "job-c", "job-d"] {
        fleet
            .register_job(JobSpec {
                name: name.into(),
                pipe: emu.pipe().clone(),
                gpu: cluster_config().gpu,
                power_states: None,
            })
            .expect("register");
        fleet
            .submit_profiles(&tenant, name, profiles.clone(), &FrontierOptions::default())
            .expect("submit")
            .wait()
            .expect("characterize");
        fleet.job_status(&tenant, name).expect("status");
    }
    let mut registries: Vec<_> = fleet
        .shards()
        .iter()
        .map(|s| s.telemetry().snapshot())
        .collect();
    registries.push(fleet_tel.snapshot());
    let rollup = fleet.metrics_rollup();
    let mut samples_checked = 0usize;
    let mut exact = true;
    for (name, labels, value) in rollup.iter() {
        if name.starts_with("perseus_fleet_") {
            continue; // synthesized by the rollup itself
        }
        if name.ends_with("_p50") || name.ends_with("_p90") || name.ends_with("_p99") {
            continue; // derived quantiles are not summable
        }
        let labels: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let sum: f64 = registries
            .iter()
            .filter_map(|s| s.value_of(name, &labels))
            .sum();
        if (value - sum).abs() > 1e-9 {
            eprintln!("rollup mismatch: {name}{labels:?} rollup={value} sum={sum}");
            exact = false;
        }
        samples_checked += 1;
    }
    claim(
        "[3] sharded rollup equals per-registry sums exactly",
        exact
            && samples_checked > 0
            && rollup.value_of("perseus_fleet_admitted_total", &[]) == Some(4.0),
        &mut failed,
    );

    // [4] Pipeline inertness: table 3 and figure 9 rendered with live
    // telemetry and a live obs pipeline must match the golden fixtures
    // byte for byte. The pipeline here is additionally fed a full
    // emulator run first, so "enabled" means genuinely active.
    let obs = Arc::new(ObsPipeline::default());
    let active_tel = Telemetry::enabled();
    let emu = Emulator::with_telemetry(cluster_config(), active_tel.clone()).expect("emulator");
    let run_cfg = RunConfig {
        iterations: 16,
        reaction_delay_iters: 1,
    };
    let plain = simulate_run(&emu, Policy::Perseus, &[], &run_cfg).expect("plain run");
    let observed =
        simulate_run_observed(&emu, Policy::Perseus, &[], &run_cfg, &obs).expect("observed run");
    let runs_identical = plain.total_energy_j.to_bits() == observed.total_energy_j.to_bits()
        && plain.total_time_s.to_bits() == observed.total_time_s.to_bits();

    let mut table3_out = Vec::new();
    perseus_bench::table3_report_with(&mut table3_out, &active_tel).expect("table3");
    let mut fig9_out = Vec::new();
    perseus_bench::fig9_report_with(&mut fig9_out, false, &active_tel).expect("fig9");
    let table3_golden = std::fs::read(TABLE3_GOLDEN).expect("read table3 golden");
    let fig9_golden = std::fs::read(FIG9_GOLDEN).expect("read fig9 golden");
    claim(
        "[4] enabled pipeline leaves table3/fig9 byte-identical to the goldens",
        runs_identical && table3_out == table3_golden && fig9_out == fig9_golden,
        &mut failed,
    );

    println!(
        "alerts: drifted fired={} cleared={}; detection latency {} iters; \
         rollup samples checked {samples_checked}",
        drifted.alerts_fired,
        drifted.alerts_cleared,
        detection_latency.map_or(-1_i64, |l| l as i64),
    );

    if let Some(path) = bench_json {
        let entry = perseus_bench::BenchEntry {
            name: "obs_suite/drift_rollup_inertness".to_string(),
            wall_time_s: started.elapsed().as_secs_f64(),
            total_energy_j: drifted.total_energy_j,
            useful_j: 0.0,
            intrinsic_j: 0.0,
            extrinsic_j: 0.0,
            extras: Vec::new(),
        }
        .with_extra(
            "detection_latency_iters",
            detection_latency.map_or(-1.0, |l| l as f64),
        )
        .with_extra("alerts_fired", drifted.alerts_fired as f64)
        .with_extra("alerts_cleared", drifted.alerts_cleared as f64)
        .with_extra("false_positives_seed0", quiet.alerts.len() as f64)
        .with_extra("rollup_samples_checked", samples_checked as f64)
        .with_extra("obs_ingested", obs.ingested() as f64);
        perseus_bench::write_bench_json(path.as_ref(), &[entry]).expect("write bench json");
    }

    // The served pipeline is the one the inertness run filled: /alerts
    // and /slo reflect a real observed run, /metrics the suite's own
    // registry.
    suite.attach_pipeline(obs);
    if failed {
        suite.finish();
        std::process::exit(1);
    }
    suite.finish();
}
