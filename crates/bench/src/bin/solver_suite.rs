//! Solver suite: the claim gate for the incremental warm-started max-flow
//! solver and the parallel frontier path.
//!
//! Characterizes a deep pipeline — GPT-3 6.7B split across **32 stages**
//! (one per decoder layer), 32 microbatches, A40 — twice with fresh
//! solvers: once cold (`warm_start: false`, every Phillips–Dessouky cut
//! solved from scratch) and once warm (`warm_start: true`, each cut
//! re-augments the previous iteration's flow after capacity retuning).
//! The process exits nonzero unless
//!
//!   1. the cold run searched **at least 3x** as many augmenting paths as
//!      the warm run (the headline claim of the incremental solver),
//!   2. the warm and cold frontiers are **bit-identical**, field by field
//!      (`f64::to_bits` on every time, energy, and duration; exact
//!      equality on every assigned frequency), and
//!   3. `FrontierSolver::characterize_all` (the parallel fan-out used by
//!      the cluster emulator and the planning server's worker pool)
//!      produces frontiers bit-identical to fresh sequential solves over
//!      a mixed bag of pipeline shapes.
//!
//! Stdout is deterministic: path counts, hit counts, and gate verdicts
//! only. Wall-clock timings go to **stderr** and, with
//! `--bench-json <path>`, into the machine-readable artifact alongside
//! the counter extras. With `--metrics`, the telemetry snapshot is
//! printed to stderr; stdout stays byte-identical to the metrics-free
//! run.
//!
//! Run: `cargo run --release -p perseus-bench --bin solver_suite -- \
//!        [--tau-ms 1.0] [--microbatches 32] [--metrics] \
//!        [--bench-json BENCH_solver.json]`

use std::time::Instant;

use perseus_bench::SuiteTelemetry;
use perseus_core::{FrontierOptions, FrontierSolver, ParetoFrontier, PlanContext, SolverStats};
use perseus_gpu::GpuSpec;
use perseus_models::{min_imbalance_partition, zoo};
use perseus_pipeline::{PipelineBuilder, PipelineDag, ScheduleKind};

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_f64(args: &[String], flag: &str) -> Option<f64> {
    arg_str(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} wants a number, got {v:?}"))
    })
}

/// Field-by-field bitwise comparison of two frontiers; returns a
/// description of the first divergence, if any.
fn frontier_divergence(a: &ParetoFrontier, b: &ParetoFrontier) -> Option<String> {
    if a.points().len() != b.points().len() {
        return Some(format!(
            "point counts differ: {} vs {}",
            a.points().len(),
            b.points().len()
        ));
    }
    for (i, (pa, pb)) in a.points().iter().zip(b.points().iter()).enumerate() {
        if pa.planned_time_s.to_bits() != pb.planned_time_s.to_bits()
            || pa.planned_energy_j.to_bits() != pb.planned_energy_j.to_bits()
        {
            return Some(format!("point {i}: planned time/energy bits differ"));
        }
        let (sa, sb) = (&pa.schedule, &pb.schedule);
        if sa.time_s.to_bits() != sb.time_s.to_bits()
            || sa.compute_j.to_bits() != sb.compute_j.to_bits()
            || sa.freqs != sb.freqs
        {
            return Some(format!("point {i}: schedule time/energy/freqs differ"));
        }
        let same = |x: &[f64], y: &[f64]| {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|(u, v)| u.to_bits() == v.to_bits())
        };
        if !same(&sa.planned, &sb.planned)
            || !same(&sa.realized_dur, &sb.realized_dur)
            || !same(&sa.realized_energy, &sb.realized_energy)
        {
            return Some(format!("point {i}: per-node schedule vectors differ"));
        }
    }
    None
}

/// Builds the pipeline + stage workloads for a model shape.
struct Workbench {
    pipe: PipelineDag,
    stages: Vec<perseus_models::StageWorkloads>,
    gpu: GpuSpec,
}

impl Workbench {
    fn build(
        model: &perseus_models::ModelSpec,
        gpu: &GpuSpec,
        n_stages: usize,
        n_microbatches: usize,
    ) -> Workbench {
        let weights = model.fwd_latency_weights(gpu);
        let partition = min_imbalance_partition(&weights, n_stages).expect("partition");
        let stages = model.stage_workloads(&partition, gpu).expect("stages");
        let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, n_stages, n_microbatches)
            .build()
            .expect("pipe");
        Workbench {
            pipe,
            stages,
            gpu: gpu.clone(),
        }
    }

    fn ctx(&self) -> PlanContext<'_> {
        PlanContext::from_model_profiles(&self.pipe, &self.gpu, &self.stages).expect("ctx")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite = SuiteTelemetry::from_args(&args);
    let bench_json = arg_str(&args, "--bench-json");
    // Unit time in milliseconds; defaults to the paper's 1 ms testbed
    // setting. Fine steps are exactly the regime the incremental solver
    // targets: consecutive cuts then differ by tiny duration drifts, so
    // the critical topology is stable and the previous flow re-augments
    // in a couple of paths. (Coarser τ churns the critical DAG more and
    // the advantage shrinks — measurable via this flag.)
    let tau_s = Some(arg_f64(&args, "--tau-ms").map_or(1e-3, |ms| ms * 1e-3));
    let n_microbatches = arg_f64(&args, "--microbatches").map_or(32, |m| m as usize);
    let tel = suite.telemetry().clone();

    // The headline workload: GPT-3 6.7B has exactly 32 decoder layers, so
    // a 32-stage split puts one layer per stage — the deepest pipeline the
    // model supports and the regime where repeated min cuts dominate.
    let model = zoo::gpt3_6_7b(4);
    let gpu = GpuSpec::a40();
    let deep = Workbench::build(&model, &gpu, 32, n_microbatches);
    let ctx = deep.ctx();

    let run = |warm_start: bool| -> (ParetoFrontier, SolverStats, f64) {
        let solver = FrontierSolver::with_telemetry(&deep.pipe, tel.clone());
        let opts = FrontierOptions {
            warm_start,
            tau_s,
            ..FrontierOptions::default()
        };
        let t0 = Instant::now();
        let frontier = solver.characterize(&ctx, &opts).expect("characterize");
        (frontier, solver.stats(), t0.elapsed().as_secs_f64())
    };
    let (cold_frontier, cold, cold_s) = run(false);
    let (warm_frontier, warm, warm_s) = run(true);

    println!("== Solver suite: GPT-3 6.7B, 32 stages x 32 microbatches, A40 ==");
    println!(
        "frontier points              {:>12}",
        warm_frontier.points().len()
    );
    println!("cold augmenting paths        {:>12}", cold.augmenting_paths);
    println!("warm augmenting paths        {:>12}", warm.augmenting_paths);
    println!("warm-start hits              {:>12}", warm.warm_start_hits);
    println!(
        "augmenting paths saved       {:>12}",
        warm.augmenting_paths_saved
    );
    let ratio = cold.augmenting_paths as f64 / warm.augmenting_paths.max(1) as f64;
    println!("cold/warm path ratio         {:>12.2}x", ratio);
    eprintln!("cold characterize: {cold_s:.3} s, warm characterize: {warm_s:.3} s");

    let mut failed = false;

    // Gate 1: the incremental solver saves >= 3x the path searches.
    if cold.augmenting_paths < 3 * warm.augmenting_paths {
        println!("GATE warm>=3x: FAIL ({ratio:.2}x < 3x)");
        failed = true;
    } else {
        println!("GATE warm>=3x: PASS");
    }
    if warm.warm_start_hits == 0 {
        println!("GATE warm-hits: FAIL (no solve reused the previous flow)");
        failed = true;
    } else {
        println!("GATE warm-hits: PASS");
    }

    // Gate 2: warm starts are an optimization, never a behavior change.
    match frontier_divergence(&cold_frontier, &warm_frontier) {
        None => println!("GATE bit-identical: PASS"),
        Some(d) => {
            println!("GATE bit-identical: FAIL ({d})");
            failed = true;
        }
    }

    // Gate 3: the parallel fan-out matches fresh sequential solves across
    // a mixed bag of shallower shapes (kept small so the suite stays
    // fast; the deep shape above already covered the 32-stage regime).
    let shapes = [(4usize, 8usize), (8, 8), (16, 8)];
    let benches: Vec<Workbench> = shapes
        .iter()
        .map(|&(s, m)| Workbench::build(&model, &gpu, s, m))
        .collect();
    let ctxs: Vec<PlanContext<'_>> = benches.iter().map(Workbench::ctx).collect();
    let solvers: Vec<FrontierSolver> = benches
        .iter()
        .map(|b| FrontierSolver::with_telemetry(&b.pipe, tel.clone()))
        .collect();
    let opts = FrontierOptions::default();
    let jobs: Vec<(&FrontierSolver, &PlanContext<'_>, &FrontierOptions)> = solvers
        .iter()
        .zip(ctxs.iter())
        .map(|(s, c)| (s, c, &opts))
        .collect();
    let t0 = Instant::now();
    let parallel: Vec<ParetoFrontier> = FrontierSolver::characterize_all(&jobs)
        .into_iter()
        .map(|r| r.expect("parallel characterize"))
        .collect();
    let par_s = t0.elapsed().as_secs_f64();
    let sequential: Vec<ParetoFrontier> = benches
        .iter()
        .zip(ctxs.iter())
        .map(|(b, c)| {
            FrontierSolver::with_telemetry(&b.pipe, tel.clone())
                .characterize(c, &opts)
                .expect("sequential characterize")
        })
        .collect();
    eprintln!(
        "parallel fan-out over {} shapes: {par_s:.3} s",
        shapes.len()
    );
    let mut parallel_ok = true;
    for (((s, m), p), q) in shapes.iter().zip(parallel.iter()).zip(sequential.iter()) {
        if let Some(d) = frontier_divergence(p, q) {
            println!("GATE parallel==sequential: FAIL ({s} stages, {m} microbatches: {d})");
            parallel_ok = false;
            failed = true;
        }
    }
    if parallel_ok {
        println!("GATE parallel==sequential: PASS");
    }

    if let Some(path) = bench_json {
        let report = warm_frontier.fastest().schedule.energy_report(&ctx, None);
        let entry = perseus_bench::BenchEntry {
            name: "solver_suite/gpt3_6_7b_32stage".into(),
            wall_time_s: cold_s + warm_s + par_s,
            total_energy_j: report.total_j(),
            useful_j: report.compute_j + report.fixed_j,
            intrinsic_j: report.blocking_j,
            extrinsic_j: 0.0,
            extras: Vec::new(),
        }
        .with_extra("cold_augmenting_paths", cold.augmenting_paths as f64)
        .with_extra("warm_augmenting_paths", warm.augmenting_paths as f64)
        .with_extra("warm_start_hits", warm.warm_start_hits as f64)
        .with_extra("augmenting_paths_saved", warm.augmenting_paths_saved as f64)
        .with_extra("cold_warm_path_ratio", ratio)
        .with_extra("frontier_points", warm_frontier.points().len() as f64);
        perseus_bench::write_bench_json(path.as_ref(), &[entry]).expect("write bench json");
    }
    if failed {
        suite.finish();
        std::process::exit(1);
    }
    suite.finish();
}
