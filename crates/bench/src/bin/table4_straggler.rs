//! Table 4: energy savings of a non-straggler pipeline under varying
//! straggler slowdown `T'/T ∈ {1.05, 1.1, 1.2, 1.3, 1.4, 1.5}` — Perseus
//! (frontier lookup, intrinsic + extrinsic) vs EnvPipe (intrinsic only).
//!
//! Run: `cargo run --release -p perseus-bench --bin table4_straggler`

use perseus_bench::{a100_workloads, a40_workloads, testbed_emulator};
use perseus_cluster::Policy;
use perseus_gpu::GpuSpec;

const DEGREES: [f64; 6] = [1.05, 1.1, 1.2, 1.3, 1.4, 1.5];

fn main() {
    for (gpu, stages, workloads, label) in [
        (
            GpuSpec::a100_pcie(),
            4usize,
            a100_workloads(),
            "(a) Four-stage pipeline on A100",
        ),
        (
            GpuSpec::a40(),
            8,
            a40_workloads(),
            "(b) Eight-stage pipeline on A40",
        ),
    ] {
        println!("== Table 4 {label} ==");
        print!("{:<18} {:<8}", "Model", "Method");
        for d in DEGREES {
            print!(" {d:>6.2}");
        }
        println!("   (T*/T)");
        for w in workloads {
            let emu = match testbed_emulator(&w, gpu.clone(), stages) {
                Ok(e) => e,
                Err(e) => {
                    println!("{:<18} failed: {e}", w.name);
                    continue;
                }
            };
            let t_star_over_t = emu.frontier().t_star() / emu.frontier().t_min();
            for (policy, tag) in [(Policy::Perseus, "Perseus"), (Policy::EnvPipe, "EnvPipe")] {
                print!("{:<18} {:<8}", w.name, tag);
                for d in DEGREES {
                    let s = emu.savings(policy, Some(d)).expect("savings");
                    print!(" {:>6.1}", s.savings_pct);
                }
                if tag == "Perseus" {
                    println!("   {t_star_over_t:.2}");
                } else {
                    println!();
                }
            }
        }
        println!();
    }
    println!("Paper shape: Perseus savings rise toward T*/T then wane; EnvPipe is flat-to-");
    println!("declining because it cannot exploit straggler slack (no frontier).");
}
