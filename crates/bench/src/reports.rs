//! Writer-based report generators behind the experiment binaries.
//!
//! Each `*_report` function renders one table/figure of the paper into any
//! [`Write`] sink. The binaries stream them to stdout; the golden-trace
//! regression tests render them into buffers and compare byte-for-byte
//! against committed fixtures — so a bin run and a test run are the same
//! code path by construction.

use std::collections::HashMap;
use std::io::{self, Write};

use perseus_baselines::{AllMaxFreq, ZeusGlobal, ZeusPerStage};
use perseus_cluster::{strong_scaling_table5, ClusterConfig, Emulator, Policy};
use perseus_core::{FrontierOptions, Planner};
use perseus_gpu::GpuSpec;
use perseus_models::{zoo, ModelSpec};
use perseus_pipeline::ScheduleKind;
use perseus_telemetry::Telemetry;

use crate::{a100_workloads, a40_workloads, testbed_emulator_with};

/// Table 3: intrinsic energy-bloat reduction (no stragglers) and iteration
/// slowdown — Perseus vs EnvPipe on the §6.2 testbeds.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn table3_report(out: &mut impl Write) -> io::Result<()> {
    table3_report_with(out, &Telemetry::disabled())
}

/// [`table3_report`] recording characterization counters into `telemetry`.
/// The rendered table is byte-identical whether telemetry is enabled or
/// disabled — the golden-trace tests pin that down.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn table3_report_with(out: &mut impl Write, telemetry: &Telemetry) -> io::Result<()> {
    for (gpu, stages, workloads, label) in [
        (
            GpuSpec::a100_pcie(),
            4usize,
            a100_workloads(),
            "(a) Four-stage pipeline on A100",
        ),
        (
            GpuSpec::a40(),
            8,
            a40_workloads(),
            "(b) Eight-stage pipeline on A40",
        ),
    ] {
        writeln!(out, "== Table 3 {label} ==")?;
        writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>14} {:>14}",
            "Model", "Perseus sav%", "EnvPipe sav%", "Perseus slow%", "EnvPipe slow%"
        )?;
        for w in workloads {
            let emu = match testbed_emulator_with(&w, gpu.clone(), stages, telemetry.clone()) {
                Ok(e) => e,
                Err(e) => {
                    writeln!(out, "{:<18} failed: {e}", w.name)?;
                    continue;
                }
            };
            let p = emu.savings(Policy::Perseus, None).expect("perseus savings");
            let e = emu.savings(Policy::EnvPipe, None).expect("envpipe savings");
            writeln!(
                out,
                "{:<18} {:>14.1} {:>14.1} {:>14.2} {:>14.2}",
                w.name, p.savings_pct, e.savings_pct, p.slowdown_pct, e.slowdown_pct
            )?;
        }
        writeln!(out)?;
    }
    writeln!(
        out,
        "Paper reference (Table 3a, A100): Perseus 13.2/12.9/10.6/11.7/3.2 %,"
    )?;
    writeln!(
        out,
        "EnvPipe 8.8/8.0/7.4/8.9/3.7 %; (Table 3b, A40): Perseus 21.1/15.7/28.5/22.4/20.4 %."
    )?;
    Ok(())
}

struct Fig9Config {
    label: &'static str,
    model: fn(usize) -> ModelSpec,
    microbatch: usize,
    n_microbatches: usize,
    gpu: GpuSpec,
    n_stages: usize,
    tensor_parallel: usize,
}

fn frontier_csv(out: &mut impl Write, cfg: &Fig9Config, telemetry: &Telemetry) -> io::Result<()> {
    let emu = Emulator::with_telemetry(
        ClusterConfig {
            model: (cfg.model)(cfg.microbatch),
            gpu: cfg.gpu.clone(),
            n_stages: cfg.n_stages,
            n_microbatches: cfg.n_microbatches,
            n_pipelines: 1,
            tensor_parallel: cfg.tensor_parallel,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        },
        telemetry.clone(),
    )
    .expect("emulator builds");
    let ctx = emu.ctx();
    let tp = cfg.tensor_parallel as f64;

    writeln!(
        out,
        "# {} on {} ({} stages, TP {})",
        cfg.label, cfg.gpu.name, cfg.n_stages, cfg.tensor_parallel
    )?;
    writeln!(out, "policy,time_s,energy_j")?;
    let base = AllMaxFreq
        .plan(&ctx)
        .expect("all-max")
        .select(None)
        .energy_report(&ctx, None);
    writeln!(
        out,
        "all-max,{:.4},{:.1}",
        base.iter_time_s,
        base.total_j() * tp
    )?;

    // Perseus: thin the frontier to ~64 evenly spaced points for plotting.
    let points = emu.frontier().points();
    let stride = (points.len() / 64).max(1);
    for p in points.iter().step_by(stride) {
        let r = p.schedule.energy_report(&ctx, None);
        writeln!(out, "perseus,{:.4},{:.1}", r.iter_time_s, r.total_j() * tp)?;
    }
    let zeus_global = ZeusGlobal
        .plan(&ctx)
        .expect("zeus global")
        .into_sweep()
        .expect("sweep planner");
    for s in zeus_global.iter().step_by(4) {
        let r = s.energy_report(&ctx, None);
        writeln!(
            out,
            "zeus-global,{:.4},{:.1}",
            r.iter_time_s,
            r.total_j() * tp
        )?;
    }
    for s in ZeusPerStage
        .plan(&ctx)
        .expect("zeus per-stage")
        .into_sweep()
        .expect("sweep planner")
    {
        let r = s.energy_report(&ctx, None);
        writeln!(
            out,
            "zeus-per-stage,{:.4},{:.1}",
            r.iter_time_s,
            r.total_j() * tp
        )?;
    }

    // Dominance summary: at a mid-frontier time budget, compare energies.
    let mid_t = (emu.frontier().t_min() + emu.frontier().t_star()) * 0.5;
    let perseus_mid = emu
        .frontier()
        .lookup(mid_t)
        .schedule
        .energy_report(&ctx, None)
        .total_j();
    let zeus_mid = zeus_global
        .iter()
        .filter(|s| s.time_s <= mid_t)
        .map(|s| s.energy_report(&ctx, None).total_j())
        .fold(f64::INFINITY, f64::min);
    writeln!(
        out,
        "# at T={mid_t:.3}s: perseus {perseus_mid:.0} J vs best zeus-global {zeus_mid:.0} J ({})",
        if perseus_mid <= zeus_mid {
            "perseus dominates"
        } else {
            "DOMINANCE VIOLATED"
        }
    )?;
    writeln!(out)?;
    Ok(())
}

/// Figure 9 (and Appendix G Figures 11/12 with `appendix`): iteration
/// time–energy frontiers of Perseus versus the Zeus-derived baselines, as
/// CSV series.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig9_report(out: &mut impl Write, appendix: bool) -> io::Result<()> {
    fig9_report_with(out, appendix, &Telemetry::disabled())
}

/// [`fig9_report`] recording characterization counters into `telemetry`;
/// the CSV output is byte-identical either way.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig9_report_with(
    out: &mut impl Write,
    appendix: bool,
    telemetry: &Telemetry,
) -> io::Result<()> {
    let mut configs = vec![
        Fig9Config {
            label: "GPT-3 1.3B",
            model: zoo::gpt3_xl,
            microbatch: 4,
            n_microbatches: 128,
            gpu: GpuSpec::a100_pcie(),
            n_stages: 4,
            tensor_parallel: 1,
        },
        Fig9Config {
            label: "GPT-3 2.7B",
            model: zoo::gpt3_2_7b,
            microbatch: 4,
            n_microbatches: 256,
            gpu: GpuSpec::a40(),
            n_stages: 8,
            tensor_parallel: 1,
        },
        Fig9Config {
            label: "GPT-3 6.7B (3D: DP2 TP2 PP4)",
            model: zoo::gpt3_6_7b,
            microbatch: 4,
            n_microbatches: 128,
            gpu: GpuSpec::a40(),
            n_stages: 4,
            tensor_parallel: 2,
        },
    ];
    if appendix {
        for (label, model, mb, m) in [
            (
                "BERT 1.3B",
                zoo::bert_huge as fn(usize) -> ModelSpec,
                8usize,
                32usize,
            ),
            ("T5 3B", zoo::t5_3b, 4, 32),
            ("Bloom 3B", zoo::bloom_3b, 4, 128),
            ("Wide-ResNet 1.5B", zoo::wide_resnet101_8, 32, 48),
        ] {
            configs.push(Fig9Config {
                label,
                model,
                microbatch: mb,
                n_microbatches: m,
                gpu: GpuSpec::a40(),
                n_stages: 8,
                tensor_parallel: 1,
            });
            configs.push(Fig9Config {
                label,
                model,
                microbatch: mb,
                n_microbatches: m,
                gpu: GpuSpec::a100_pcie(),
                n_stages: 4,
                tensor_parallel: 1,
            });
        }
    }
    for cfg in &configs {
        frontier_csv(out, cfg, telemetry)?;
    }
    Ok(())
}

type ModelEntry = (&'static str, fn(usize) -> ModelSpec);
const SUITE_MODELS: [ModelEntry; 2] = [
    ("GPT-3 175B", zoo::gpt3_175b),
    ("Bloom 176B", zoo::bloom_176b),
];

fn suite_emulator(
    model: fn(usize) -> ModelSpec,
    gpu: GpuSpec,
    cfg: &perseus_cluster::ScalingConfig,
    telemetry: &Telemetry,
) -> Emulator {
    Emulator::with_telemetry(
        ClusterConfig {
            model: model(1),
            gpu,
            n_stages: cfg.n_stages,
            n_microbatches: cfg.n_microbatches,
            n_pipelines: cfg.n_pipelines,
            tensor_parallel: cfg.tensor_parallel,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        },
        telemetry.clone(),
    )
    .expect("emulator builds")
}

/// The §6.3 large-scale emulation suite: Table 6, Figure 7, and Figure 8.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn emulation_suite_report(out: &mut impl Write) -> io::Result<()> {
    emulation_suite_report_with(out, &Telemetry::disabled())
}

/// [`emulation_suite_report`] recording characterization counters into
/// `telemetry`; the report is byte-identical either way.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn emulation_suite_report_with(out: &mut impl Write, telemetry: &Telemetry) -> io::Result<()> {
    let scaling = strong_scaling_table5();

    // ---- Table 6: intrinsic savings vs #microbatches ----
    writeln!(
        out,
        "== Table 6: intrinsic bloat reduction (no stragglers), strong scaling =="
    )?;
    writeln!(
        out,
        "{:<12} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "Model", "GPU", "M=12", "M=24", "M=48", "M=96"
    )?;
    // cache: (model index, gpu index, microbatches) -> emulator
    let mut emus: HashMap<(usize, usize, usize), Emulator> = HashMap::new();
    for (mi, (name, ctor)) in SUITE_MODELS.iter().enumerate() {
        for (gi, gpu) in [GpuSpec::a100_sxm(), GpuSpec::a40()].iter().enumerate() {
            write!(
                out,
                "{:<12} {:<10}",
                name,
                if gi == 0 { "A100" } else { "A40" }
            )?;
            for cfg in scaling.iter().rev() {
                // rev(): ascending microbatch count 12, 24, 48, 96
                let emu = emus
                    .entry((mi, gi, cfg.n_microbatches))
                    .or_insert_with(|| suite_emulator(*ctor, gpu.clone(), cfg, telemetry));
                let s = emu.savings(Policy::Perseus, None).expect("savings");
                write!(out, " {:>8.2}", s.savings_pct)?;
            }
            writeln!(out)?;
        }
    }
    writeln!(
        out,
        "Paper: GPT-3 175B A100 15.20/14.19/13.62/13.32; Bloom 176B A100 10.47/7.06/5.23/4.28."
    )?;
    writeln!(
        out,
        "Shape to hold: savings decrease as microbatches increase; GPT-3 > Bloom at A100.\n"
    )?;

    // ---- Figure 7: savings breakdown, slowdown 1.2, 1,024 GPUs ----
    writeln!(
        out,
        "== Figure 7: savings breakdown, straggler slowdown 1.2, 1024 GPUs (16 pipelines, M=96) =="
    )?;
    writeln!(
        out,
        "{:<12} {:>16} {:>22} {:>18}",
        "Model", "intrinsic only", "intrinsic+extrinsic", "EnvPipe (intr.)"
    )?;
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        let emu = &emus[&(mi, 0usize, 96usize)]; // A100, M=96 config
        let intr = emu
            .savings(Policy::Perseus, None)
            .expect("savings")
            .savings_pct;
        let both = emu
            .savings(Policy::Perseus, Some(1.2))
            .expect("savings")
            .savings_pct;
        let ep = emu
            .savings(Policy::EnvPipe, Some(1.2))
            .expect("savings")
            .savings_pct;
        writeln!(
            out,
            "{:<12} {:>15.1}% {:>21.1}% {:>17.1}%",
            name, intr, both, ep
        )?;
    }
    writeln!(
        out,
        "Paper: Perseus up to ~30% total; EnvPipe limited to (suboptimal) intrinsic only.\n"
    )?;

    // ---- Figure 8: savings vs straggler slowdown across scaling configs ----
    writeln!(
        out,
        "== Figure 8: intrinsic+extrinsic savings vs straggler slowdown (A100) =="
    )?;
    let degrees = [1.05, 1.1, 1.2, 1.3, 1.4, 1.5];
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        writeln!(out, "--- {name} ---")?;
        write!(out, "{:<26}", "config")?;
        for d in degrees {
            write!(out, " {d:>6.2}")?;
        }
        writeln!(out, "   T*/T")?;
        for cfg in &scaling {
            let emu = &emus[&(mi, 0usize, cfg.n_microbatches)];
            write!(
                out,
                "{:>5} GPUs x{:>3} pipes M{:<3}",
                cfg.n_gpus, cfg.n_pipelines, cfg.n_microbatches
            )?;
            for d in degrees {
                let s = emu.savings(Policy::Perseus, Some(d)).expect("savings");
                write!(out, " {:>6.1}", s.savings_pct)?;
            }
            writeln!(
                out,
                "   {:.2}",
                emu.frontier().t_star() / emu.frontier().t_min()
            )?;
        }
    }
    writeln!(
        out,
        "\nShape to hold: savings rise until T'/T reaches T*/T (the star in the paper's"
    )?;
    writeln!(
        out,
        "figure), then wane; fewer microbatches (more pipelines) => higher savings %."
    )?;
    Ok(())
}
