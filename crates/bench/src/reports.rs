//! Writer-based report generators behind the experiment binaries.
//!
//! Each `*_report` function renders one table/figure of the paper into any
//! [`Write`] sink. The binaries stream them to stdout; the golden-trace
//! regression tests render them into buffers and compare byte-for-byte
//! against committed fixtures — so a bin run and a test run are the same
//! code path by construction.

use std::collections::HashMap;
use std::io::{self, Write};
use std::time::Instant;

use perseus_baselines::{AllMaxFreq, ZeusGlobal, ZeusPerStage};
use perseus_cluster::{
    strong_scaling_table5, ClusterAttribution, ClusterConfig, Emulator, Policy, StragglerCause,
};
use perseus_core::{EnergyBreakdown, EnergyKind, FrontierOptions, Planner};
use perseus_gpu::GpuSpec;
use perseus_models::{zoo, ModelSpec};
use perseus_pipeline::ScheduleKind;
use perseus_telemetry::Telemetry;

use crate::bench_json::BenchEntry;
use crate::{a100_workloads, a40_workloads, testbed_emulator_with};

/// Table 3: intrinsic energy-bloat reduction (no stragglers) and iteration
/// slowdown — Perseus vs EnvPipe on the §6.2 testbeds.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn table3_report(out: &mut impl Write) -> io::Result<()> {
    table3_report_with(out, &Telemetry::disabled())
}

/// [`table3_report`] recording characterization counters into `telemetry`.
/// The rendered table is byte-identical whether telemetry is enabled or
/// disabled — the golden-trace tests pin that down.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn table3_report_with(out: &mut impl Write, telemetry: &Telemetry) -> io::Result<()> {
    for (gpu, stages, workloads, label) in [
        (
            GpuSpec::a100_pcie(),
            4usize,
            a100_workloads(),
            "(a) Four-stage pipeline on A100",
        ),
        (
            GpuSpec::a40(),
            8,
            a40_workloads(),
            "(b) Eight-stage pipeline on A40",
        ),
    ] {
        writeln!(out, "== Table 3 {label} ==")?;
        writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>14} {:>14}",
            "Model", "Perseus sav%", "EnvPipe sav%", "Perseus slow%", "EnvPipe slow%"
        )?;
        for w in workloads {
            let emu = match testbed_emulator_with(&w, gpu.clone(), stages, telemetry.clone()) {
                Ok(e) => e,
                Err(e) => {
                    writeln!(out, "{:<18} failed: {e}", w.name)?;
                    continue;
                }
            };
            let p = emu.savings(Policy::Perseus, None).expect("perseus savings");
            let e = emu.savings(Policy::EnvPipe, None).expect("envpipe savings");
            writeln!(
                out,
                "{:<18} {:>14.1} {:>14.1} {:>14.2} {:>14.2}",
                w.name, p.savings_pct, e.savings_pct, p.slowdown_pct, e.slowdown_pct
            )?;
        }
        writeln!(out)?;
    }
    writeln!(
        out,
        "Paper reference (Table 3a, A100): Perseus 13.2/12.9/10.6/11.7/3.2 %,"
    )?;
    writeln!(
        out,
        "EnvPipe 8.8/8.0/7.4/8.9/3.7 %; (Table 3b, A40): Perseus 21.1/15.7/28.5/22.4/20.4 %."
    )?;
    Ok(())
}

struct Fig9Config {
    label: &'static str,
    model: fn(usize) -> ModelSpec,
    microbatch: usize,
    n_microbatches: usize,
    gpu: GpuSpec,
    n_stages: usize,
    tensor_parallel: usize,
}

fn frontier_csv(out: &mut impl Write, cfg: &Fig9Config, telemetry: &Telemetry) -> io::Result<()> {
    let emu = Emulator::with_telemetry(
        ClusterConfig {
            model: (cfg.model)(cfg.microbatch),
            gpu: cfg.gpu.clone(),
            n_stages: cfg.n_stages,
            n_microbatches: cfg.n_microbatches,
            n_pipelines: 1,
            tensor_parallel: cfg.tensor_parallel,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        },
        telemetry.clone(),
    )
    .expect("emulator builds");
    let ctx = emu.ctx();
    let tp = cfg.tensor_parallel as f64;

    writeln!(
        out,
        "# {} on {} ({} stages, TP {})",
        cfg.label, cfg.gpu.name, cfg.n_stages, cfg.tensor_parallel
    )?;
    writeln!(out, "policy,time_s,energy_j")?;
    let base = AllMaxFreq
        .plan(&ctx)
        .expect("all-max")
        .select(None)
        .energy_report(&ctx, None);
    writeln!(
        out,
        "all-max,{:.4},{:.1}",
        base.iter_time_s,
        base.total_j() * tp
    )?;

    // Perseus: thin the frontier to ~64 evenly spaced points for plotting.
    let points = emu.frontier().points();
    let stride = (points.len() / 64).max(1);
    for p in points.iter().step_by(stride) {
        let r = p.schedule.energy_report(&ctx, None);
        writeln!(out, "perseus,{:.4},{:.1}", r.iter_time_s, r.total_j() * tp)?;
    }
    let zeus_global = ZeusGlobal
        .plan(&ctx)
        .expect("zeus global")
        .into_sweep()
        .expect("sweep planner");
    for s in zeus_global.iter().step_by(4) {
        let r = s.energy_report(&ctx, None);
        writeln!(
            out,
            "zeus-global,{:.4},{:.1}",
            r.iter_time_s,
            r.total_j() * tp
        )?;
    }
    for s in ZeusPerStage
        .plan(&ctx)
        .expect("zeus per-stage")
        .into_sweep()
        .expect("sweep planner")
    {
        let r = s.energy_report(&ctx, None);
        writeln!(
            out,
            "zeus-per-stage,{:.4},{:.1}",
            r.iter_time_s,
            r.total_j() * tp
        )?;
    }

    // Dominance summary: at a mid-frontier time budget, compare energies.
    let mid_t = (emu.frontier().t_min() + emu.frontier().t_star()) * 0.5;
    let perseus_mid = emu
        .frontier()
        .lookup(mid_t)
        .schedule
        .energy_report(&ctx, None)
        .total_j();
    let zeus_mid = zeus_global
        .iter()
        .filter(|s| s.time_s <= mid_t)
        .map(|s| s.energy_report(&ctx, None).total_j())
        .fold(f64::INFINITY, f64::min);
    writeln!(
        out,
        "# at T={mid_t:.3}s: perseus {perseus_mid:.0} J vs best zeus-global {zeus_mid:.0} J ({})",
        if perseus_mid <= zeus_mid {
            "perseus dominates"
        } else {
            "DOMINANCE VIOLATED"
        }
    )?;
    writeln!(out)?;
    Ok(())
}

/// Figure 9 (and Appendix G Figures 11/12 with `appendix`): iteration
/// time–energy frontiers of Perseus versus the Zeus-derived baselines, as
/// CSV series.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig9_report(out: &mut impl Write, appendix: bool) -> io::Result<()> {
    fig9_report_with(out, appendix, &Telemetry::disabled())
}

/// [`fig9_report`] recording characterization counters into `telemetry`;
/// the CSV output is byte-identical either way.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig9_report_with(
    out: &mut impl Write,
    appendix: bool,
    telemetry: &Telemetry,
) -> io::Result<()> {
    let mut configs = vec![
        Fig9Config {
            label: "GPT-3 1.3B",
            model: zoo::gpt3_xl,
            microbatch: 4,
            n_microbatches: 128,
            gpu: GpuSpec::a100_pcie(),
            n_stages: 4,
            tensor_parallel: 1,
        },
        Fig9Config {
            label: "GPT-3 2.7B",
            model: zoo::gpt3_2_7b,
            microbatch: 4,
            n_microbatches: 256,
            gpu: GpuSpec::a40(),
            n_stages: 8,
            tensor_parallel: 1,
        },
        Fig9Config {
            label: "GPT-3 6.7B (3D: DP2 TP2 PP4)",
            model: zoo::gpt3_6_7b,
            microbatch: 4,
            n_microbatches: 128,
            gpu: GpuSpec::a40(),
            n_stages: 4,
            tensor_parallel: 2,
        },
    ];
    if appendix {
        for (label, model, mb, m) in [
            (
                "BERT 1.3B",
                zoo::bert_huge as fn(usize) -> ModelSpec,
                8usize,
                32usize,
            ),
            ("T5 3B", zoo::t5_3b, 4, 32),
            ("Bloom 3B", zoo::bloom_3b, 4, 128),
            ("Wide-ResNet 1.5B", zoo::wide_resnet101_8, 32, 48),
        ] {
            configs.push(Fig9Config {
                label,
                model,
                microbatch: mb,
                n_microbatches: m,
                gpu: GpuSpec::a40(),
                n_stages: 8,
                tensor_parallel: 1,
            });
            configs.push(Fig9Config {
                label,
                model,
                microbatch: mb,
                n_microbatches: m,
                gpu: GpuSpec::a100_pcie(),
                n_stages: 4,
                tensor_parallel: 1,
            });
        }
    }
    for cfg in &configs {
        frontier_csv(out, cfg, telemetry)?;
    }
    Ok(())
}

type ModelEntry = (&'static str, fn(usize) -> ModelSpec);
const SUITE_MODELS: [ModelEntry; 2] = [
    ("GPT-3 175B", zoo::gpt3_175b),
    ("Bloom 176B", zoo::bloom_176b),
];

fn suite_emulator(
    model: fn(usize) -> ModelSpec,
    gpu: GpuSpec,
    cfg: &perseus_cluster::ScalingConfig,
    telemetry: &Telemetry,
) -> Emulator {
    Emulator::with_telemetry(
        ClusterConfig {
            model: model(1),
            gpu,
            n_stages: cfg.n_stages,
            n_microbatches: cfg.n_microbatches,
            n_pipelines: cfg.n_pipelines,
            tensor_parallel: cfg.tensor_parallel,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        },
        telemetry.clone(),
    )
    .expect("emulator builds")
}

/// The §6.3 large-scale emulation suite: Table 6, Figure 7, and Figure 8.
/// Returns the machine-readable [`BenchEntry`] rows the `--bench-json`
/// flag serializes (one aggregate plus one per model).
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn emulation_suite_report(out: &mut impl Write) -> io::Result<Vec<BenchEntry>> {
    emulation_suite_report_with(out, &Telemetry::disabled())
}

/// [`emulation_suite_report`] recording characterization counters into
/// `telemetry`; the report is byte-identical either way.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn emulation_suite_report_with(
    out: &mut impl Write,
    telemetry: &Telemetry,
) -> io::Result<Vec<BenchEntry>> {
    let suite_start = Instant::now();
    let mut char_time = [0.0f64; SUITE_MODELS.len()];
    let scaling = strong_scaling_table5();

    // ---- Table 6: intrinsic savings vs #microbatches ----
    writeln!(
        out,
        "== Table 6: intrinsic bloat reduction (no stragglers), strong scaling =="
    )?;
    writeln!(
        out,
        "{:<12} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "Model", "GPU", "M=12", "M=24", "M=48", "M=96"
    )?;
    // cache: (model index, gpu index, microbatches) -> emulator
    let mut emus: HashMap<(usize, usize, usize), Emulator> = HashMap::new();
    for (mi, (name, ctor)) in SUITE_MODELS.iter().enumerate() {
        for (gi, gpu) in [GpuSpec::a100_sxm(), GpuSpec::a40()].iter().enumerate() {
            write!(
                out,
                "{:<12} {:<10}",
                name,
                if gi == 0 { "A100" } else { "A40" }
            )?;
            for cfg in scaling.iter().rev() {
                // rev(): ascending microbatch count 12, 24, 48, 96
                let t0 = Instant::now();
                let emu = emus
                    .entry((mi, gi, cfg.n_microbatches))
                    .or_insert_with(|| suite_emulator(*ctor, gpu.clone(), cfg, telemetry));
                char_time[mi] += t0.elapsed().as_secs_f64();
                let s = emu.savings(Policy::Perseus, None).expect("savings");
                write!(out, " {:>8.2}", s.savings_pct)?;
            }
            writeln!(out)?;
        }
    }
    writeln!(
        out,
        "Paper: GPT-3 175B A100 15.20/14.19/13.62/13.32; Bloom 176B A100 10.47/7.06/5.23/4.28."
    )?;
    writeln!(
        out,
        "Shape to hold: savings decrease as microbatches increase; GPT-3 > Bloom at A100.\n"
    )?;

    // ---- Figure 7: savings breakdown, slowdown 1.2, 1,024 GPUs ----
    writeln!(
        out,
        "== Figure 7: savings breakdown, straggler slowdown 1.2, 1024 GPUs (16 pipelines, M=96) =="
    )?;
    writeln!(
        out,
        "{:<12} {:>16} {:>22} {:>18}",
        "Model", "intrinsic only", "intrinsic+extrinsic", "EnvPipe (intr.)"
    )?;
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        let emu = &emus[&(mi, 0usize, 96usize)]; // A100, M=96 config
        let intr = emu
            .savings(Policy::Perseus, None)
            .expect("savings")
            .savings_pct;
        let both = emu
            .savings(Policy::Perseus, Some(1.2))
            .expect("savings")
            .savings_pct;
        let ep = emu
            .savings(Policy::EnvPipe, Some(1.2))
            .expect("savings")
            .savings_pct;
        writeln!(
            out,
            "{:<12} {:>15.1}% {:>21.1}% {:>17.1}%",
            name, intr, both, ep
        )?;
    }
    writeln!(
        out,
        "Paper: Perseus up to ~30% total; EnvPipe limited to (suboptimal) intrinsic only.\n"
    )?;

    // ---- Figure 8: savings vs straggler slowdown across scaling configs ----
    writeln!(
        out,
        "== Figure 8: intrinsic+extrinsic savings vs straggler slowdown (A100) =="
    )?;
    let degrees = [1.05, 1.1, 1.2, 1.3, 1.4, 1.5];
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        writeln!(out, "--- {name} ---")?;
        write!(out, "{:<26}", "config")?;
        for d in degrees {
            write!(out, " {d:>6.2}")?;
        }
        writeln!(out, "   T*/T")?;
        for cfg in &scaling {
            let emu = &emus[&(mi, 0usize, cfg.n_microbatches)];
            write!(
                out,
                "{:>5} GPUs x{:>3} pipes M{:<3}",
                cfg.n_gpus, cfg.n_pipelines, cfg.n_microbatches
            )?;
            for d in degrees {
                let s = emu.savings(Policy::Perseus, Some(d)).expect("savings");
                write!(out, " {:>6.1}", s.savings_pct)?;
            }
            writeln!(
                out,
                "   {:.2}",
                emu.frontier().t_star() / emu.frontier().t_min()
            )?;
        }
    }
    writeln!(
        out,
        "\nShape to hold: savings rise until T'/T reaches T*/T (the star in the paper's"
    )?;
    writeln!(
        out,
        "figure), then wane; fewer microbatches (more pipelines) => higher savings %."
    )?;

    // ---- Machine-readable entries (never written to `out`: the stdout
    // report stays byte-identical with or without --bench-json) ----
    let mut entries = Vec::new();
    let mut aggregate = EnergyBreakdown::default();
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        let attr = emus[&(mi, 0usize, 96usize)]
            .attribute(
                Policy::Perseus,
                Some(StragglerCause::Slowdown { degree: 1.2 }),
            )
            .expect("attribution")
            .total();
        aggregate.accumulate(attr);
        entries.push(BenchEntry::from_breakdown(
            format!("emulation_suite/{name}"),
            char_time[mi],
            &attr,
        ));
    }
    entries.insert(
        0,
        BenchEntry::from_breakdown(
            "emulation_suite",
            suite_start.elapsed().as_secs_f64(),
            &aggregate,
        ),
    );
    Ok(entries)
}

/// Cache of the A100 suite emulators the breakdown reports share, keyed
/// by (model index, microbatch count). Figure 7 needs the M=96 pair;
/// Figure 8 needs all four Table 5 scaling rows — a superset, so one
/// cache serves both without re-characterizing.
type BreakdownCache = HashMap<(usize, usize), Emulator>;

fn breakdown_emulator<'a>(
    cache: &'a mut BreakdownCache,
    mi: usize,
    cfg: &perseus_cluster::ScalingConfig,
    telemetry: &Telemetry,
) -> &'a Emulator {
    cache
        .entry((mi, cfg.n_microbatches))
        .or_insert_with(|| suite_emulator(SUITE_MODELS[mi].1, GpuSpec::a100_sxm(), cfg, telemetry))
}

/// One attributed bar of the Figure 7 breakdown: a (model, policy) pair
/// with its cluster-level energy split.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Workload name.
    pub model: &'static str,
    /// Frequency policy the attribution was taken under.
    pub policy: &'static str,
    /// Cluster joules per iteration, split useful/intrinsic/extrinsic.
    pub breakdown: EnergyBreakdown,
}

fn fig7_breakdown_impl(
    out: &mut impl Write,
    cache: &mut BreakdownCache,
    telemetry: &Telemetry,
) -> io::Result<Vec<BreakdownRow>> {
    let scaling = strong_scaling_table5();
    let fig7_cfg = &scaling[0]; // 1024 GPUs, 16 pipelines, M=96
    let cause = Some(StragglerCause::Slowdown { degree: 1.2 });
    let mut rows = Vec::new();
    let mut claim_holds = true;

    writeln!(
        out,
        "== Figure 7 breakdown: energy attribution at straggler slowdown 1.20 =="
    )?;
    writeln!(
        out,
        "(A100, {} GPUs, {} pipelines, M={}; cluster joules per iteration, Eq. 3)",
        fig7_cfg.n_gpus, fig7_cfg.n_pipelines, fig7_cfg.n_microbatches
    )?;
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        let emu = breakdown_emulator(cache, mi, fig7_cfg, telemetry);
        writeln!(out, "\n--- {name} ---")?;
        writeln!(
            out,
            "{:<10} {:>16} {:>14} {:>14} {:>14} {:>8} {:>12}",
            "policy", "total J", "useful J", "intrinsic J", "extrinsic J", "bloat%", "extr/bloat%"
        )?;
        let mut attrs: Vec<(&'static str, ClusterAttribution)> = Vec::new();
        for (label, policy) in [("all-max", Policy::AllMax), ("perseus", Policy::Perseus)] {
            let attr = emu.attribute(policy, cause).expect("attribution");
            let b = attr.total();
            writeln!(
                out,
                "{:<10} {:>16.1} {:>14.1} {:>14.1} {:>14.1} {:>8.2} {:>12.2}",
                label,
                b.total_j(),
                b.useful_j,
                b.intrinsic_j,
                b.extrinsic_j,
                b.bloat_share() * 100.0,
                b.extrinsic_share_of_bloat() * 100.0,
            )?;
            rows.push(BreakdownRow {
                model: name,
                policy: label,
                breakdown: b,
            });
            attrs.push((label, attr));
        }

        // Where the all-max bloat sits: per-instruction-kind split of one
        // non-straggler pipeline (the 15 that wait, not the one that lags).
        let all_max = &attrs[0].1.non_straggler;
        writeln!(out, "per-kind, one non-straggler pipeline (all-max):")?;
        for kind in EnergyKind::ALL {
            let k = all_max.kind(kind);
            if k.total_j() == 0.0 {
                continue;
            }
            writeln!(
                out,
                "  {:<10} {:>14.1} {:>14.1} {:>14.1}",
                kind.label(),
                k.useful_j,
                k.intrinsic_j,
                k.extrinsic_j
            )?;
        }
        let (min_s, max_s) = all_max.per_stage.iter().enumerate().fold(
            ((0usize, f64::INFINITY), (0usize, f64::NEG_INFINITY)),
            |(lo, hi), (s, b)| {
                let t = b.intrinsic_j;
                (
                    if t < lo.1 { (s, t) } else { lo },
                    if t > hi.1 { (s, t) } else { hi },
                )
            },
        );
        writeln!(
            out,
            "per-stage intrinsic spread (all-max): min stage {} {:.1} J, max stage {} {:.1} J",
            min_s.0, min_s.1, max_s.0, max_s.1
        )?;

        let b = &rows[rows.len() - 2].breakdown; // the all-max cluster split
        claim_holds &= b.intrinsic_j > 0.0 && b.extrinsic_j > 0.0;
    }
    writeln!(
        out,
        "\nclaim (fig7): intrinsic and extrinsic bloat both nonzero at slowdown 1.2: {}",
        if claim_holds { "HOLDS" } else { "VIOLATED" }
    )?;
    Ok(rows)
}

fn fig8_scaling_impl(
    out: &mut impl Write,
    cache: &mut BreakdownCache,
    telemetry: &Telemetry,
) -> io::Result<()> {
    let scaling = strong_scaling_table5();
    let degrees = [1.05, 1.1, 1.2, 1.3, 1.4, 1.5];
    writeln!(
        out,
        "== Figure 8 scaling: extrinsic share of bloat vs straggler slowdown =="
    )?;
    writeln!(
        out,
        "(A100, all-max attribution; % of total bloat that is straggler wait)"
    )?;
    let mut claim_holds = true;
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        writeln!(out, "--- {name} ---")?;
        write!(out, "{:<26}", "config")?;
        for d in degrees {
            write!(out, " {d:>6.2}")?;
        }
        writeln!(out)?;
        for cfg in &scaling {
            let emu = breakdown_emulator(cache, mi, cfg, telemetry);
            write!(
                out,
                "{:>5} GPUs x{:>3} pipes M{:<3}",
                cfg.n_gpus, cfg.n_pipelines, cfg.n_microbatches
            )?;
            let mut prev = f64::NEG_INFINITY;
            for d in degrees {
                let b = emu
                    .attribute(Policy::AllMax, Some(StragglerCause::Slowdown { degree: d }))
                    .expect("attribution")
                    .total();
                let share = b.extrinsic_share_of_bloat() * 100.0;
                claim_holds &= share >= prev - 1e-9;
                prev = share;
                write!(out, " {share:>6.1}")?;
            }
            writeln!(out)?;
        }
    }
    writeln!(
        out,
        "\nclaim (fig8): extrinsic share of bloat grows with straggler slowdown in every config: {}",
        if claim_holds { "HOLDS" } else { "VIOLATED" }
    )?;
    Ok(())
}

/// The Figure 7 attribution breakdown: cluster energy of the §6.3 M=96
/// A100 workloads split into useful / intrinsic / extrinsic joules under
/// all-max and Perseus at straggler slowdown 1.2. Returns the rows for
/// SVG rendering.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig7_breakdown_report(out: &mut impl Write) -> io::Result<Vec<BreakdownRow>> {
    fig7_breakdown_report_with(out, &Telemetry::disabled())
}

/// [`fig7_breakdown_report`] recording characterization counters into
/// `telemetry`; the report is byte-identical either way.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig7_breakdown_report_with(
    out: &mut impl Write,
    telemetry: &Telemetry,
) -> io::Result<Vec<BreakdownRow>> {
    fig7_breakdown_impl(out, &mut BreakdownCache::new(), telemetry)
}

/// The Figure 8 attribution scaling sweep: extrinsic share of total
/// bloat versus straggler slowdown across the Table 5 strong-scaling
/// configurations, under all-max attribution.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig8_scaling_report(out: &mut impl Write) -> io::Result<()> {
    fig8_scaling_report_with(out, &Telemetry::disabled())
}

/// [`fig8_scaling_report`] recording characterization counters into
/// `telemetry`; the report is byte-identical either way.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn fig8_scaling_report_with(out: &mut impl Write, telemetry: &Telemetry) -> io::Result<()> {
    fig8_scaling_impl(out, &mut BreakdownCache::new(), telemetry)
}

/// Renders both breakdown reports from one shared emulator cache
/// (Figure 7's two M=96 emulators are a subset of Figure 8's eight) —
/// the golden-trace tests use this to avoid characterizing twice.
///
/// # Errors
///
/// Propagates write failures from either writer.
pub fn breakdown_reports_with(
    fig7_out: &mut impl Write,
    fig8_out: &mut impl Write,
    telemetry: &Telemetry,
) -> io::Result<Vec<BreakdownRow>> {
    let mut cache = BreakdownCache::new();
    let rows = fig7_breakdown_impl(fig7_out, &mut cache, telemetry)?;
    fig8_scaling_impl(fig8_out, &mut cache, telemetry)?;
    Ok(rows)
}

/// The Kareus suite: joint dynamic + static planning versus
/// frequency-only Perseus across the Figure 8 strong-scaling sweep.
///
/// Both policies ride the *same* Pareto frontier (Kareus starts from the
/// Perseus characterization and only fills bubbles with sleep), so every
/// cell compares identical iteration times; the delta is purely the
/// static energy reclaimed from `P_blocking`. Two machine-checked claim
/// lines gate CI:
///
/// 1. Kareus cluster joules never exceed Perseus at any (config,
///    slowdown) cell, and
/// 2. Kareus is *strictly* cheaper on every no-straggler cell whose
///    pipeline has bubbles long enough to amortize a sleep state's
///    entry + exit latency.
///
/// Returns the machine-readable entries `--bench-json` serializes.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn kareus_report(out: &mut impl Write) -> io::Result<Vec<BenchEntry>> {
    kareus_report_with(out, &Telemetry::disabled())
}

/// Cluster-scaled joules of one attribution kind: non-straggler pipelines
/// replicated, the straggler added, multiplied by the tensor-parallel
/// degree — the same arithmetic as [`ClusterAttribution::total`].
fn cluster_kind_j(a: &ClusterAttribution, kind: EnergyKind) -> f64 {
    let stragglers = usize::from(a.straggler.is_some());
    let non = a.non_straggler.kind(kind).total_j() * (a.n_pipelines - stragglers) as f64;
    let s = a.straggler.as_ref().map_or(0.0, |s| s.kind(kind).total_j());
    (non + s) * a.tensor_parallel as f64
}

/// [`kareus_report`] recording characterization counters into
/// `telemetry`; the report is byte-identical either way.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn kareus_report_with(
    out: &mut impl Write,
    telemetry: &Telemetry,
) -> io::Result<Vec<BenchEntry>> {
    let suite_start = Instant::now();
    let mut cache = BreakdownCache::new();
    let scaling = strong_scaling_table5();
    let degrees = [1.05, 1.1, 1.2, 1.3, 1.4, 1.5];
    let mut dominance_holds = true;
    let mut strict_holds = true;
    let mut entries = Vec::new();

    writeln!(
        out,
        "== Kareus: joint frequency + sleep planning vs frequency-only Perseus =="
    )?;
    writeln!(
        out,
        "(A100, Figure 8 strong-scaling sweep; % of Perseus cluster joules reclaimed"
    )?;
    writeln!(
        out,
        " by sleeping through pipeline bubbles; identical iteration times by design)"
    )?;
    for (mi, (name, _)) in SUITE_MODELS.iter().enumerate() {
        writeln!(out, "--- {name} ---")?;
        write!(out, "{:<26}   none", "config")?;
        for d in degrees {
            write!(out, " {d:>6.2}")?;
        }
        writeln!(out, "   windows")?;
        for cfg in &scaling {
            let emu = breakdown_emulator(&mut cache, mi, cfg, telemetry);
            write!(
                out,
                "{:>5} GPUs x{:>3} pipes M{:<3}",
                cfg.n_gpus, cfg.n_pipelines, cfg.n_microbatches
            )?;
            let causes = std::iter::once(None).chain(
                degrees
                    .iter()
                    .map(|&d| Some(StragglerCause::Slowdown { degree: d })),
            );
            let mut no_straggler_saved = 0.0;
            for (ci, cause) in causes.enumerate() {
                let perseus = emu
                    .report(Policy::Perseus, cause)
                    .expect("report")
                    .total_j();
                let kareus = emu.report(Policy::Kareus, cause).expect("report").total_j();
                dominance_holds &= kareus <= perseus + 1e-9;
                if ci == 0 {
                    no_straggler_saved = perseus - kareus;
                }
                write!(out, " {:>6.2}", (perseus - kareus) / perseus * 100.0)?;
            }
            // Bubbles long enough to amortize a sleep state exist exactly
            // when the no-straggler plan carries windows; there, the win
            // must be strict.
            let plan = emu.plan_of(Policy::Kareus).expect("kareus plan");
            let windows = plan
                .sleep_plan(None)
                .map_or(0, perseus_core::SleepPlan::window_count);
            if windows > 0 {
                strict_holds &= no_straggler_saved > 0.0;
            }
            writeln!(out, " {windows:>9}")?;

            let attribution = emu
                .attribute(
                    Policy::Kareus,
                    Some(StragglerCause::Slowdown { degree: 1.2 }),
                )
                .expect("attribution");
            let attr = attribution.total();
            let sleep_j = cluster_kind_j(&attribution, EnergyKind::StaticSleep);
            let perseus_ref = emu
                .report(
                    Policy::Perseus,
                    Some(StragglerCause::Slowdown { degree: 1.2 }),
                )
                .expect("report")
                .total_j();
            entries.push(
                BenchEntry::from_breakdown(
                    format!(
                        "kareus_suite/{name}/{}gpus_m{}",
                        cfg.n_gpus, cfg.n_microbatches
                    ),
                    0.0,
                    &attr,
                )
                .with_extra("perseus_total_j", perseus_ref)
                .with_extra("saved_vs_perseus_j", perseus_ref - attr.total_j())
                .with_extra("static_sleep_j", sleep_j)
                .with_extra("sleep_windows", windows as f64),
            );
        }
    }
    writeln!(
        out,
        "\nclaim (kareus/1): kareus cluster joules <= perseus at every cell: {}",
        if dominance_holds { "HOLDS" } else { "VIOLATED" }
    )?;
    writeln!(
        out,
        "claim (kareus/2): strictly cheaper wherever bubbles amortize sleep latency: {}",
        if strict_holds { "HOLDS" } else { "VIOLATED" }
    )?;
    if !(dominance_holds && strict_holds) {
        return Err(io::Error::other("kareus claim gate violated"));
    }
    entries.insert(
        0,
        BenchEntry {
            name: "kareus_suite".into(),
            wall_time_s: suite_start.elapsed().as_secs_f64(),
            total_energy_j: entries.iter().map(|e| e.total_energy_j).sum(),
            useful_j: entries.iter().map(|e| e.useful_j).sum(),
            intrinsic_j: entries.iter().map(|e| e.intrinsic_j).sum(),
            extrinsic_j: entries.iter().map(|e| e.extrinsic_j).sum(),
            extras: Vec::new(),
        },
    );
    Ok(entries)
}
