//! Perseus experiment harness.
//!
//! One binary per table/figure of the paper's evaluation (§6); see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! paper-vs-measured record. Shared plumbing lives here: the workload
//! matrix of Appendix B Tables 8–10 and small formatting helpers.

mod bench_json;
mod reports;
mod suite;

pub use bench_json::{render_bench_json, write_bench_json, BenchEntry};
pub use reports::{
    breakdown_reports_with, emulation_suite_report, emulation_suite_report_with,
    fig7_breakdown_report, fig7_breakdown_report_with, fig8_scaling_report,
    fig8_scaling_report_with, fig9_report, fig9_report_with, kareus_report, kareus_report_with,
    table3_report, table3_report_with, BreakdownRow,
};
pub use suite::SuiteTelemetry;

use perseus_cluster::{ClusterConfig, Emulator, EmulatorError, Policy};
use perseus_core::FrontierOptions;
use perseus_gpu::GpuSpec;
use perseus_models::{zoo, ModelSpec};
use perseus_pipeline::ScheduleKind;
use perseus_telemetry::Telemetry;

/// One experiment workload: a model with the batch parameters of Appendix
/// B (Tables 9/10) for a given testbed.
#[derive(Clone)]
pub struct Workload {
    /// Display name used in the paper's tables.
    pub name: &'static str,
    /// Model constructor applied to the microbatch size.
    pub model: fn(usize) -> ModelSpec,
    /// Per-pipeline microbatch size.
    pub microbatch: usize,
    /// Microbatches per iteration.
    pub n_microbatches: usize,
}

/// The five A100 workloads of Table 10 (four-stage pipeline parallelism).
pub fn a100_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "GPT-3 1.3B",
            model: zoo::gpt3_xl,
            microbatch: 4,
            n_microbatches: 128,
        },
        Workload {
            name: "BERT 1.3B",
            model: zoo::bert_huge,
            microbatch: 8,
            n_microbatches: 32,
        },
        Workload {
            name: "T5 3B",
            model: zoo::t5_3b,
            microbatch: 4,
            n_microbatches: 32,
        },
        Workload {
            name: "Bloom 3B",
            model: zoo::bloom_3b,
            microbatch: 4,
            n_microbatches: 128,
        },
        Workload {
            name: "Wide-ResNet 1.5B",
            model: zoo::wide_resnet101_8,
            microbatch: 64,
            n_microbatches: 24,
        },
    ]
}

/// The five A40 workloads of Table 9 (eight-stage pipeline parallelism).
pub fn a40_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "GPT-3 2.7B",
            model: zoo::gpt3_2_7b,
            microbatch: 4,
            n_microbatches: 256,
        },
        Workload {
            name: "BERT 1.3B",
            model: zoo::bert_huge,
            microbatch: 8,
            n_microbatches: 32,
        },
        Workload {
            name: "T5 3B",
            model: zoo::t5_3b,
            microbatch: 4,
            n_microbatches: 32,
        },
        Workload {
            name: "Bloom 3B",
            model: zoo::bloom_3b,
            microbatch: 4,
            n_microbatches: 128,
        },
        Workload {
            name: "Wide-ResNet 1.5B",
            model: zoo::wide_resnet101_8,
            microbatch: 32,
            n_microbatches: 48,
        },
    ]
}

/// Builds the single-pipeline emulator for a workload on `gpu` with
/// `n_stages` stages (the §6.2 testbed setting).
///
/// # Errors
///
/// Propagates emulator construction failures.
pub fn testbed_emulator(
    w: &Workload,
    gpu: GpuSpec,
    n_stages: usize,
) -> Result<Emulator, EmulatorError> {
    testbed_emulator_with(w, gpu, n_stages, Telemetry::disabled())
}

/// [`testbed_emulator`] recording characterization counters into
/// `telemetry`.
///
/// # Errors
///
/// Propagates emulator construction failures.
pub fn testbed_emulator_with(
    w: &Workload,
    gpu: GpuSpec,
    n_stages: usize,
    telemetry: Telemetry,
) -> Result<Emulator, EmulatorError> {
    Emulator::with_telemetry(
        ClusterConfig {
            model: (w.model)(w.microbatch),
            gpu,
            n_stages,
            n_microbatches: w.n_microbatches,
            n_pipelines: 1,
            tensor_parallel: 1,
            schedule: ScheduleKind::OneFOneB,
            frontier: FrontierOptions::default(),
        },
        telemetry,
    )
}

/// Formats a savings/slowdown pair the way the paper's tables do.
pub fn fmt_pct(x: f64) -> String {
    format!("{x:5.1}")
}

/// Convenience: intrinsic savings (no straggler) of a policy.
///
/// # Errors
///
/// Propagates emulation failures.
pub fn intrinsic_savings(
    emu: &Emulator,
    policy: Policy,
) -> Result<perseus_cluster::Savings, EmulatorError> {
    emu.savings(policy, None)
}
