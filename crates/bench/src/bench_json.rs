//! Machine-readable benchmark results: `BENCH_perseus.json`.
//!
//! The suite binaries (`emulation_suite`, `chaos_suite`) accept
//! `--bench-json <path>` and write one entry per suite — wall time,
//! total energy, and the useful / intrinsic / extrinsic bloat split —
//! so CI can archive a structured artifact next to the human-readable
//! stdout reports. The JSON is hand-rolled (the workspace is offline);
//! keys are emitted in entry order, values with fixed three-decimal
//! precision.

use std::io;
use std::path::Path;

use perseus_core::EnergyBreakdown;

/// One benchmark suite result.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Suite name (e.g. `emulation_suite`, `chaos_suite/seed1337`).
    pub name: String,
    /// Wall-clock time spent producing the suite, seconds.
    pub wall_time_s: f64,
    /// Total energy the suite accounted, joules.
    pub total_energy_j: f64,
    /// Useful joules of the total (slack-filling alternative).
    pub useful_j: f64,
    /// Intrinsic-bloat joules (imbalance inside a pipeline).
    pub intrinsic_j: f64,
    /// Extrinsic-bloat joules (gradient-sync straggler wait).
    pub extrinsic_j: f64,
    /// Suite-specific scalar metrics, rendered (in order) after the
    /// energy columns — e.g. the solver suite's augmenting-path counts.
    pub extras: Vec<(String, f64)>,
}

impl BenchEntry {
    /// An entry whose energy columns come from an attribution breakdown.
    pub fn from_breakdown(
        name: impl Into<String>,
        wall_time_s: f64,
        b: &EnergyBreakdown,
    ) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            wall_time_s,
            total_energy_j: b.total_j(),
            useful_j: b.useful_j,
            intrinsic_j: b.intrinsic_j,
            extrinsic_j: b.extrinsic_j,
            extras: Vec::new(),
        }
    }

    /// Appends a suite-specific metric column, builder-style.
    #[must_use]
    pub fn with_extra(mut self, key: impl Into<String>, value: f64) -> BenchEntry {
        self.extras.push((key.into(), value));
        self
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.000".into()
    }
}

/// Renders the entries as the `BENCH_perseus.json` document:
/// `{"suites": {name: {wall_time_s, total_energy_j, useful_j,
/// intrinsic_j, extrinsic_j}}}`.
pub fn render_bench_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n  \"suites\": {");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    \"{}\": {{\"wall_time_s\": {}, \"total_energy_j\": {}, \"useful_j\": {}, \
             \"intrinsic_j\": {}, \"extrinsic_j\": {}",
            json_escape(&e.name),
            num(e.wall_time_s),
            num(e.total_energy_j),
            num(e.useful_j),
            num(e.intrinsic_j),
            num(e.extrinsic_j),
        ));
        for (key, value) in &e.extras {
            out.push_str(&format!(", \"{}\": {}", json_escape(key), num(*value)));
        }
        out.push('}');
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Writes [`render_bench_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(path: &Path, entries: &[BenchEntry]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_bench_json(entries))
}
