//! Shared observability plumbing for the suite binaries.
//!
//! Every suite understands the same two flags:
//!
//! * `--metrics` — record telemetry during the run and print the metrics
//!   snapshot to **stderr** when the suite finishes. Stdout stays
//!   byte-identical to the flag-free run (the golden-trace CI gates rely
//!   on this).
//! * `--serve <addr>` — additionally keep the process alive after the
//!   run, serving `/metrics`, `/alerts`, `/slo`, and `/health` over HTTP
//!   at `addr` (e.g. `127.0.0.1:9184`; port 0 picks an ephemeral port).
//!   The bound URL is announced on stderr.
//!
//! [`SuiteTelemetry`] centralizes the parsing, the enabled/disabled
//! telemetry handle, and the end-of-run behavior, so every binary treats
//! the flags identically.

use std::sync::Arc;

use perseus_telemetry::{Endpoints, ObsPipeline, Telemetry, TelemetryServer};

/// The per-binary observability harness: parse once at startup, call
/// [`SuiteTelemetry::finish`] after the suite's stdout is complete.
pub struct SuiteTelemetry {
    telemetry: Telemetry,
    metrics: bool,
    serve: Option<String>,
    pipeline: Option<Arc<ObsPipeline>>,
}

impl SuiteTelemetry {
    /// Parses `--metrics` and `--serve <addr>` out of `args` (the
    /// program's arguments, program name already skipped). Telemetry is
    /// enabled iff either flag is present.
    pub fn from_args(args: &[String]) -> SuiteTelemetry {
        let metrics = args.iter().any(|a| a == "--metrics");
        let serve = args
            .iter()
            .position(|a| a == "--serve")
            .and_then(|i| args.get(i + 1))
            .cloned();
        let telemetry = if metrics || serve.is_some() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        SuiteTelemetry {
            telemetry,
            metrics,
            serve,
            pipeline: None,
        }
    }

    /// The telemetry handle the suite should instrument with (disabled
    /// unless `--metrics` or `--serve` was passed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whether any observability flag was passed.
    pub fn is_enabled(&self) -> bool {
        self.metrics || self.serve.is_some()
    }

    /// Attaches a streaming pipeline so a served `/alerts` and `/slo`
    /// carry the suite's detector and SLO state instead of empty arrays.
    pub fn attach_pipeline(&mut self, pipeline: Arc<ObsPipeline>) {
        self.pipeline = Some(pipeline);
    }

    /// End-of-run behavior: under `--metrics`, prints the snapshot render
    /// to stderr (exactly `eprint!("{}", snapshot.render())`, as the
    /// suites always did); under `--serve`, binds the HTTP endpoint and
    /// parks the process so the suite's results stay scrapeable.
    pub fn finish(self) {
        if self.metrics {
            eprint!("{}", self.telemetry.snapshot().render());
        }
        if let Some(addr) = self.serve {
            let mut endpoints = Endpoints::from_telemetry(self.telemetry.clone());
            if let Some(pipeline) = self.pipeline {
                endpoints = endpoints.with_pipeline(pipeline);
            }
            match TelemetryServer::bind(addr.as_str(), endpoints) {
                Ok(server) => {
                    eprintln!(
                        "serving telemetry on {} (ctrl-c to stop)",
                        server.base_url()
                    );
                    loop {
                        std::thread::park();
                    }
                }
                Err(e) => {
                    eprintln!("failed to bind telemetry server on {addr}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
}
