//! Criterion bench: the straggler reaction path — `T' -> schedule` lookup
//! must be effectively free (§3.2 "quickly reacts ... by looking up").
//!
//! Besides the characterized-frontier benchmark, this harness builds large
//! synthetic frontiers and *asserts* that lookup scales like a binary
//! search: going from 2^10 to 2^20 points (a 1024x size increase) must not
//! slow a lookup down anywhere near linearly.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use perseus_core::{
    characterize, EnergySchedule, FrontierOptions, FrontierPoint, ParetoFrontier, PlanContext,
};
use perseus_gpu::{GpuSpec, Workload};
use perseus_models::StageWorkloads;
use perseus_pipeline::{PipelineBuilder, ScheduleKind};

/// A frontier of `n` synthetic points with strictly ascending times and
/// descending energies; schedules are empty shells (lookup never reads
/// them).
fn synthetic_frontier(n: usize) -> ParetoFrontier {
    let points = (0..n)
        .map(|i| FrontierPoint {
            planned_time_s: 1.0 + i as f64 * 1e-4,
            planned_energy_j: (2 * n - i) as f64,
            schedule: EnergySchedule {
                planned: Vec::new(),
                freqs: Vec::new(),
                realized_dur: Vec::new(),
                realized_energy: Vec::new(),
                time_s: 1.0 + i as f64 * 1e-4,
                compute_j: (2 * n - i) as f64,
            },
        })
        .collect();
    ParetoFrontier::from_points(points)
}

/// Mean seconds per lookup over `iters` spread-out probe times.
fn time_lookups(frontier: &ParetoFrontier, iters: u64) -> f64 {
    let t_min = frontier.t_min();
    let span = frontier.t_star() - t_min;
    let start = Instant::now();
    for i in 0..iters {
        let t_prime = t_min + span * ((i % 997) as f64 / 997.0);
        black_box(frontier.lookup(black_box(t_prime)).planned_time_s);
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn bench_lookup(c: &mut Criterion) {
    let gpu = GpuSpec::a100_pcie();
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 16)
        .build()
        .expect("pipe");
    let stages: Vec<StageWorkloads> = (0..4)
        .map(|s| {
            let k = 1.0 + 0.05 * (s % 3) as f64;
            StageWorkloads {
                fwd: Workload::new(40.0 * k, 0.004, 0.85),
                bwd: Workload::new(80.0 * k, 0.008, 0.92),
            }
        })
        .collect();
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).expect("ctx");
    let frontier = characterize(&ctx, &FrontierOptions::default()).expect("frontier");
    let t_min = frontier.t_min();

    let mut i = 0u64;
    c.bench_function("frontier_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let t_prime = t_min * (1.0 + (i % 64) as f64 * 0.01);
            frontier.lookup(t_prime).planned_time_s
        })
    });

    let mut group = c.benchmark_group("synthetic_lookup");
    for exp in [10u32, 14, 20] {
        let f = synthetic_frontier(1 << exp);
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("points", 1u64 << exp), &f, |b, f| {
            let t_min = f.t_min();
            let span = f.t_star() - t_min;
            b.iter(|| {
                i = i.wrapping_add(1);
                let t_prime = t_min + span * ((i % 997) as f64 / 997.0);
                f.lookup(t_prime).planned_time_s
            })
        });
    }
    group.finish();
}

/// Asserts the O(log n) scaling claim: a 1024x larger frontier may cost at
/// most ~2x per lookup if lookup is a binary search (10 -> 20 probe
/// levels); a linear scan would cost ~1024x. The 32x ceiling leaves wide
/// headroom for cache effects and timer noise while still failing hard on
/// any accidental return to linear scanning.
fn assert_logarithmic_scaling() {
    const ITERS: u64 = 200_000;
    let small = synthetic_frontier(1 << 10);
    let large = synthetic_frontier(1 << 20);
    // Interleave and take per-size minima across rounds to shed scheduler
    // noise on shared runners.
    let mut t_small = f64::INFINITY;
    let mut t_large = f64::INFINITY;
    for _ in 0..3 {
        t_small = t_small.min(time_lookups(&small, ITERS));
        t_large = t_large.min(time_lookups(&large, ITERS));
    }
    let ratio = t_large / t_small;
    println!(
        "lookup scaling: 2^10 pts {:.1} ns, 2^20 pts {:.1} ns, ratio {ratio:.2} (linear would be ~1024)",
        t_small * 1e9,
        t_large * 1e9,
    );
    assert!(
        ratio < 32.0,
        "lookup no longer scales logarithmically: 1024x points cost {ratio:.1}x per lookup"
    );
}

fn bench_scaling(c: &mut Criterion) {
    // Run the assertion once as part of the harness so `cargo bench`
    // fails loudly if lookup regresses to a linear scan.
    assert_logarithmic_scaling();
    let _ = c;
}

criterion_group!(benches, bench_lookup, bench_scaling);
criterion_main!(benches);
