//! Criterion bench: the straggler reaction path — `T' -> schedule` lookup
//! must be effectively free (§3.2 "quickly reacts ... by looking up").

use criterion::{criterion_group, criterion_main, Criterion};
use perseus_core::{characterize, FrontierOptions, PlanContext};
use perseus_gpu::{GpuSpec, Workload};
use perseus_models::StageWorkloads;
use perseus_pipeline::{PipelineBuilder, ScheduleKind};

fn bench_lookup(c: &mut Criterion) {
    let gpu = GpuSpec::a100_pcie();
    let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, 4, 16).build().expect("pipe");
    let stages: Vec<StageWorkloads> = (0..4)
        .map(|s| {
            let k = 1.0 + 0.05 * (s % 3) as f64;
            StageWorkloads {
                fwd: Workload::new(40.0 * k, 0.004, 0.85),
                bwd: Workload::new(80.0 * k, 0.008, 0.92),
            }
        })
        .collect();
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages).expect("ctx");
    let frontier = characterize(&ctx, &FrontierOptions::default()).expect("frontier");
    let t_min = frontier.t_min();

    let mut i = 0u64;
    c.bench_function("frontier_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let t_prime = t_min * (1.0 + (i % 64) as f64 * 0.01);
            frontier.lookup(t_prime).planned_time_s
        })
    });
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
