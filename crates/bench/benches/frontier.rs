//! Criterion bench: end-to-end frontier characterization versus stage and
//! microbatch counts — the §6.5 "algorithm runtime" claim (polynomial in
//! N and M, Appendix E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perseus_core::{characterize, FrontierOptions, PlanContext};
use perseus_gpu::{GpuSpec, Workload};
use perseus_models::StageWorkloads;
use perseus_pipeline::{PipelineBuilder, ScheduleKind};

fn stages_for(n: usize) -> Vec<StageWorkloads> {
    (0..n)
        .map(|s| {
            let k = 1.0 + 0.05 * (s % 3) as f64;
            StageWorkloads {
                fwd: Workload::new(40.0 * k, 0.004, 0.85),
                bwd: Workload::new(80.0 * k, 0.008, 0.92),
            }
        })
        .collect()
}

fn bench_frontier(c: &mut Criterion) {
    let gpu = GpuSpec::a100_pcie();
    let mut group = c.benchmark_group("frontier");
    group.sample_size(10);
    for (n, m) in [(4usize, 8usize), (4, 32), (8, 32), (8, 96)] {
        let pipe = PipelineBuilder::new(ScheduleKind::OneFOneB, n, m)
            .build()
            .expect("pipe");
        let stages = stages_for(n);
        group.bench_with_input(
            BenchmarkId::new("characterize", format!("N{n}M{m}")),
            &pipe,
            |b, pipe| {
                b.iter(|| {
                    let ctx = PlanContext::from_model_profiles(pipe, &gpu, &stages).expect("ctx");
                    characterize(&ctx, &FrontierOptions::default()).expect("frontier")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);
