//! Criterion bench: minimum-imbalance partitioning (Appendix B) on the
//! zoo's largest models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perseus_gpu::GpuSpec;
use perseus_models::{min_imbalance_partition, zoo};

fn bench_partition(c: &mut Criterion) {
    let gpu = GpuSpec::a100_pcie();
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for (model, name) in [
        (zoo::gpt3_xl(4), "gpt3-xl(25)"),
        (zoo::gpt3_175b(1), "gpt3-175b(97)"),
        (zoo::bloom_176b(1), "bloom-176b(71)"),
        (zoo::wide_resnet101_8(32), "wrn101(35)"),
    ] {
        let weights = model.fwd_latency_weights(&gpu);
        for stages in [4usize, 8] {
            group.bench_with_input(BenchmarkId::new(name, stages), &weights, |b, w| {
                b.iter(|| min_imbalance_partition(w, stages).expect("partition"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
