//! Criterion bench: pipeline DAG construction for the supported schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perseus_pipeline::{PipelineBuilder, ScheduleKind};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_build");
    for kind in [
        ScheduleKind::OneFOneB,
        ScheduleKind::GPipe,
        ScheduleKind::EarlyRecompute1F1B,
    ] {
        for (n, m) in [(4usize, 32usize), (8, 128), (8, 256)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}"), format!("N{n}M{m}")),
                &(n, m),
                |b, &(n, m)| b.iter(|| PipelineBuilder::new(kind, n, m).build().expect("pipe")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
