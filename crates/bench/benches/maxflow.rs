//! Criterion bench: the max-flow substrate on pipeline-shaped layered
//! networks (the §4.3 inner loop). Checks that Dinic stays fast as the
//! DAG grows with stages × microbatches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perseus_flow::{BoundedFlowProblem, FlowGraph};

/// A layered network shaped like a pipeline critical DAG: `layers` ranks of
/// `width` nodes with staggered forward edges.
fn layered(layers: usize, width: usize) -> (usize, usize, Vec<(usize, usize, f64)>) {
    let n = layers * width + 2;
    let (s, t) = (0, n - 1);
    let id = |l: usize, w: usize| 1 + l * width + w;
    let mut edges = Vec::new();
    for w in 0..width {
        edges.push((s, id(0, w), 1.0 + w as f64));
        edges.push((id(layers - 1, w), t, 1.5 + w as f64));
    }
    for l in 0..layers - 1 {
        for w in 0..width {
            edges.push((id(l, w), id(l + 1, w), 0.5 + ((l + w) % 7) as f64));
            edges.push((
                id(l, w),
                id(l + 1, (w + 1) % width),
                0.25 + ((l * w) % 5) as f64,
            ));
        }
    }
    (n, t, edges)
}

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow");
    for (layers, width) in [(16, 4), (64, 8), (256, 8), (256, 16)] {
        let (n, t, edges) = layered(layers, width);
        group.bench_with_input(
            BenchmarkId::new("dinic", format!("{layers}x{width}")),
            &edges,
            |b, edges| {
                b.iter(|| {
                    let mut g = FlowGraph::new(n);
                    for &(u, v, cap) in edges {
                        g.add_edge(u, v, cap);
                    }
                    g.max_flow(0, t)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bounded", format!("{layers}x{width}")),
            &edges,
            |b, edges| {
                b.iter(|| {
                    let mut p = BoundedFlowProblem::new(n);
                    for &(u, v, cap) in edges {
                        // Small forced flows out of the source keep the
                        // lower-bound phase exercised yet always feasible.
                        let lower = if u == 0 { cap * 0.05 } else { 0.0 };
                        p.add_edge(u, v, lower, cap);
                    }
                    p.solve(0, t).expect("feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maxflow);
criterion_main!(benches);
