use std::sync::Arc;

use parking_lot::Mutex;

use perseus_core::FrontierOptions;
use perseus_gpu::{FreqMHz, GpuSpec, SimGpu, Workload};
use perseus_models::StageWorkloads;
use perseus_pipeline::{CompKind, OpKey, PipelineBuilder, PipelineDag, ScheduleKind};
use perseus_profiler::{OnlineProfiler, OpProfile, ProfileDb};

use crate::client::{AsyncFrequencyController, ClientSession};
use crate::server::{JobSpec, PerseusServer, ServerError};

/// A unique scratch directory per call: tag + pid + a process-wide
/// counter, so concurrently running tests never share (or clobber) a
/// directory. Callers clean up with `remove_dir_all` at the end; a
/// leaked directory from an aborted test never collides with a rerun.
fn unique_test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("perseus-server-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn stages() -> Vec<StageWorkloads> {
    [1.0, 1.15, 0.9]
        .iter()
        .map(|&k| StageWorkloads {
            fwd: Workload::new(40.0 * k, 0.004, 0.85),
            bwd: Workload::new(80.0 * k, 0.008, 0.92),
        })
        .collect()
}

fn pipe() -> PipelineDag {
    PipelineBuilder::new(ScheduleKind::OneFOneB, 3, 4)
        .build()
        .unwrap()
}

fn model_profiles(gpu: &GpuSpec) -> ProfileDb<OpKey> {
    let mut db = ProfileDb::new();
    for (s, sw) in stages().iter().enumerate() {
        db.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Forward,
            },
            OpProfile::from_model(gpu, &sw.fwd),
        );
        db.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Backward,
            },
            OpProfile::from_model(gpu, &sw.bwd),
        );
        db.insert(
            OpKey {
                stage: s,
                chunk: 0,
                kind: CompKind::Recompute,
            },
            OpProfile::from_model(gpu, &sw.fwd),
        );
    }
    db
}

fn server_with_job() -> (PerseusServer, &'static str) {
    let server = PerseusServer::new();
    server
        .register_job(JobSpec {
            name: "gpt".into(),
            pipe: pipe(),
            gpu: GpuSpec::a100_pcie(),
            power_states: None,
        })
        .unwrap();
    (server, "gpt")
}

#[test]
fn register_and_duplicate() {
    let (server, _) = server_with_job();
    let err = server
        .register_job(JobSpec {
            name: "gpt".into(),
            pipe: pipe(),
            gpu: GpuSpec::a100_pcie(),
            power_states: None,
        })
        .unwrap_err();
    assert!(matches!(err, ServerError::DuplicateJob(_)));
    assert_eq!(server.job_names(), vec!["gpt"]);
}

#[test]
fn characterize_deploys_fastest_schedule() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    let d = server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(d.version, 1);
    let frontier = server.frontier(job).unwrap();
    assert_eq!(d.planned_time_s, frontier.t_min());
    // Workflow step ③: the deployment is cached as current.
    let status = server.job_status(job).unwrap();
    assert_eq!(status.deployment.unwrap().version, 1);
    assert_eq!(status.epoch, 1);
}

#[test]
fn batch_submission_characterizes_all_jobs_in_parallel() {
    let gpu = GpuSpec::a100_pcie();
    let server = PerseusServer::new();
    let names = ["gpt-a", "gpt-b", "gpt-c"];
    for name in names {
        server
            .register_job(JobSpec {
                name: (*name).into(),
                pipe: pipe(),
                gpu: gpu.clone(),
                power_states: None,
            })
            .unwrap();
    }
    let batch = names
        .iter()
        .map(|n| {
            (
                (*n).to_string(),
                model_profiles(&gpu),
                FrontierOptions::default(),
            )
        })
        .collect();
    let tickets = server.submit_profiles_batch(batch).unwrap();
    assert_eq!(tickets.len(), names.len());
    for (ticket, name) in tickets.into_iter().zip(names) {
        assert_eq!(ticket.job(), name);
        let d = ticket.wait().unwrap();
        assert_eq!(d.version, 1);
        assert_eq!(d.planned_time_s, server.frontier(name).unwrap().t_min());
    }
    // Identical pipelines + profiles characterize to identical frontiers
    // regardless of which pool worker ran them.
    let (fa, fb) = (
        server.frontier("gpt-a").unwrap(),
        server.frontier("gpt-b").unwrap(),
    );
    assert_eq!(fa.points().len(), fb.points().len());
    for (pa, pb) in fa.points().iter().zip(fb.points().iter()) {
        assert_eq!(pa.planned_time_s.to_bits(), pb.planned_time_s.to_bits());
        assert_eq!(pa.planned_energy_j.to_bits(), pb.planned_energy_j.to_bits());
    }
}

#[test]
fn batch_submission_is_all_or_nothing() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    let batch = vec![
        (
            job.to_string(),
            model_profiles(&gpu),
            FrontierOptions::default(),
        ),
        (
            "no-such-job".to_string(),
            model_profiles(&gpu),
            FrontierOptions::default(),
        ),
    ];
    let err = server.submit_profiles_batch(batch).unwrap_err();
    assert!(matches!(err, ServerError::UnknownJob(_)));
    // The valid entry was not scheduled either: the job is untouched.
    assert_eq!(server.job_status(job).unwrap().epoch, 0);
}

#[test]
fn straggler_lookup_is_instant_and_correct() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let (t_min, _) = {
        let f = server.frontier(job).unwrap();
        (f.t_min(), f.t_star())
    };
    // Immediate straggler with 1.2x slowdown.
    let d = server.set_straggler(job, 0, 0.0, 1.2).unwrap().unwrap();
    assert_eq!(d.version, 2);
    assert!((d.t_prime - t_min * 1.2).abs() < 1e-9);
    assert!(d.planned_time_s <= d.t_prime + 1e-9);
    assert!(d.planned_time_s > t_min);
    // Return to normal: deployment goes back to the fastest point.
    let d = server.set_straggler(job, 0, 0.0, 1.0).unwrap().unwrap();
    assert_eq!(d.planned_time_s, t_min);
}

#[test]
fn extreme_straggler_clamps_to_t_star() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let d = server.set_straggler(job, 0, 0.0, 100.0).unwrap().unwrap();
    let frontier = server.frontier(job).unwrap();
    assert_eq!(d.planned_time_s, frontier.t_star());
}

#[test]
fn worst_straggler_wins() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    server.set_straggler(job, 0, 0.0, 1.1).unwrap();
    let d = server.set_straggler(job, 1, 0.0, 1.3).unwrap().unwrap();
    let t_min = server.frontier(job).unwrap().t_min();
    assert!((d.t_prime - t_min * 1.3).abs() < 1e-9);
    // GPU 1 recovers: GPU 0's 1.1x remains the binding straggler.
    let d = server.set_straggler(job, 1, 0.0, 1.0).unwrap().unwrap();
    assert!((d.t_prime - t_min * 1.1).abs() < 1e-9);
}

#[test]
fn delayed_straggler_fires_on_time_advance() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    // Announce a straggler 30 s ahead (e.g. the rack manager anticipating
    // thermal throttling).
    assert!(server.set_straggler(job, 2, 30.0, 1.25).unwrap().is_none());
    // Nothing yet at t = 10 s.
    assert!(server.advance_time(job, 10.0).unwrap().is_empty());
    // Fires between 10 s and 40 s.
    let deployments = server.advance_time(job, 30.0).unwrap();
    assert_eq!(deployments.len(), 1);
    let t_min = server.frontier(job).unwrap().t_min();
    assert!((deployments[0].t_prime - t_min * 1.25).abs() < 1e-9);
}

#[test]
fn errors_are_reported() {
    let (server, job) = server_with_job();
    // Registered but never characterized: a valid status, nothing deployed.
    let status = server.job_status(job).unwrap();
    assert!(status.deployment.is_none());
    assert_eq!(status.epoch, 0);
    assert!(matches!(
        server.job_status("nope"),
        Err(ServerError::UnknownJob(_))
    ));
    assert!(matches!(
        server.set_straggler(job, 0, 0.0, 1.2),
        Err(ServerError::NotCharacterized(_))
    ));
    assert!(matches!(
        server.advance_time("nope", 1.0),
        Err(ServerError::UnknownJob(_))
    ));
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(
        server.set_straggler(job, 0, 0.0, 0.5),
        Err(ServerError::InvalidDegree(_))
    ));
}

#[test]
fn async_controller_applies_frequencies() {
    let gpu = Arc::new(Mutex::new(SimGpu::new(GpuSpec::a100_pcie())));
    let ctl = AsyncFrequencyController::spawn(Arc::clone(&gpu));
    ctl.set_speed(FreqMHz(900));
    ctl.set_speed(FreqMHz(705));
    ctl.flush();
    assert_eq!(gpu.lock().locked_freq(), FreqMHz(705));
    assert_eq!(gpu.lock().freq_set_count(), 2);
}

#[test]
fn async_controller_is_nonblocking_for_redundant_sets() {
    let gpu = Arc::new(Mutex::new(SimGpu::new(GpuSpec::a100_pcie())));
    let ctl = AsyncFrequencyController::spawn(Arc::clone(&gpu));
    for _ in 0..100 {
        ctl.set_speed(FreqMHz(900));
    }
    ctl.flush();
    // Redundant sets are free on the device (§5's controller relies on it).
    assert_eq!(gpu.lock().freq_set_count(), 1);
}

#[test]
fn client_profile_begin_end_measures_work() {
    let mut client = ClientSession::new(0, SimGpu::new(GpuSpec::a100_pcie()));
    let w = Workload::new(40.0, 0.004, 0.85);
    client.begin_profile(CompKind::Forward);
    {
        let gpu = client.gpu();
        let mut g = gpu.lock();
        g.run(&w);
    }
    let (t, e) = client.end_profile(CompKind::Forward);
    assert!(t > 0.0 && e > 0.0);
}

#[test]
fn client_sweep_produces_profile() {
    let mut client = ClientSession::new(1, SimGpu::new(GpuSpec::a100_pcie()));
    let w = Workload::new(40.0, 0.004, 0.85);
    let profile = client.profile_sweep(&w, &OnlineProfiler::default());
    assert!(profile.pareto().len() > 3);
}

#[test]
fn client_realizes_deployed_schedule_in_program_order() {
    let (server, job) = server_with_job();
    let gpu_spec = GpuSpec::a100_pcie();
    let d = server
        .submit_profiles(job, model_profiles(&gpu_spec), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let p = pipe();
    let mut client = ClientSession::new(1, SimGpu::new(gpu_spec.clone()));
    client.load_schedule(&p, &d.schedule);
    // Drive one iteration: stage 1's program is F F (warmup) F B F B B B...
    // just follow the recorded plan kinds.
    let program: Vec<CompKind> = p
        .computations()
        .filter(|(_, c)| c.stage == 1)
        .map(|(_, c)| c.kind)
        .collect();
    for &k in &program {
        client.set_speed(k);
    }
    client.sync();
    // The device ends locked at the last computation's planned frequency.
    let last_freq = {
        let (id, _) = p
            .computations()
            .filter(|(_, c)| c.stage == 1)
            .last()
            .unwrap();
        d.schedule.freq_of(id).unwrap()
    };
    assert_eq!(client.gpu().lock().locked_freq(), last_freq);
}

#[test]
#[should_panic(expected = "set_speed out of program order")]
fn client_detects_out_of_order_calls() {
    let (server, job) = server_with_job();
    let gpu_spec = GpuSpec::a100_pcie();
    let d = server
        .submit_profiles(job, model_profiles(&gpu_spec), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let p = pipe();
    let mut client = ClientSession::new(0, SimGpu::new(gpu_spec));
    client.load_schedule(&p, &d.schedule);
    // Stage 0 of a 3-stage 1F1B starts with forwards; a backward is wrong.
    client.set_speed(CompKind::Backward);
}

#[test]
fn multiple_pending_stragglers_fire_in_order() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    server.set_straggler(job, 0, 10.0, 1.4).unwrap();
    server.set_straggler(job, 0, 20.0, 1.0).unwrap(); // later recovery
    let deployments = server.advance_time(job, 25.0).unwrap();
    assert_eq!(deployments.len(), 2);
    assert!(
        deployments[0].t_prime > deployments[1].t_prime,
        "slowdown then recovery"
    );
    let t_min = server.frontier(job).unwrap().t_min();
    assert!((deployments[1].t_prime - t_min).abs() < 1e-9);
}

#[test]
fn reannouncing_same_gpu_overrides_degree() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    server.set_straggler(job, 3, 0.0, 1.4).unwrap();
    let d = server.set_straggler(job, 3, 0.0, 1.1).unwrap().unwrap();
    let t_min = server.frontier(job).unwrap().t_min();
    assert!(
        (d.t_prime - t_min * 1.1).abs() < 1e-9,
        "new degree replaces the old"
    );
}

#[test]
fn versions_are_strictly_monotonic() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    let d0 = server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let d1 = server.set_straggler(job, 0, 0.0, 1.2).unwrap().unwrap();
    let d2 = server.set_straggler(job, 0, 0.0, 1.3).unwrap().unwrap();
    assert!(d0.version < d1.version && d1.version < d2.version);
}

#[test]
fn resubmitting_profiles_reuses_solver_artifacts() {
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    let solver_of = |job: &str| server.job_status(job).unwrap().solver;
    assert_eq!(
        (solver_of(job).runs, solver_of(job).artifact_reuses),
        (0, 0)
    );
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        (solver_of(job).runs, solver_of(job).artifact_reuses),
        (1, 0)
    );
    // Re-characterization (fresh profiles mid-training) reuses the job's
    // cached edge-centric DAG / topological order.
    let d = server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        (solver_of(job).runs, solver_of(job).artifact_reuses),
        (2, 1)
    );
    assert_eq!(d.version, 2);
}

#[test]
fn straggler_lookup_does_not_wait_for_inflight_characterization() {
    // While a (slow) re-characterization is in flight, set_straggler and
    // current_deployment answer from the previous frontier.
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let v1 = server.job_status(job).unwrap().deployment.unwrap().version;

    // A deliberately fine-grained re-characterization to keep workers busy.
    let slow = FrontierOptions {
        tau_s: Some(1e-5),
        ..Default::default()
    };
    let ticket = server
        .submit_profiles(job, model_profiles(&gpu), &slow)
        .unwrap();

    // Immediately visible reaction from the cached frontier.
    let d = server.set_straggler(job, 0, 0.0, 1.2).unwrap().unwrap();
    assert!(d.version > v1);
    let cached = server.job_status(job).unwrap().deployment.unwrap();
    assert!(cached.version >= d.version);

    // The characterization still lands and re-deploys with the straggler
    // state applied.
    let after = ticket.wait().unwrap();
    assert!(after.version > d.version);
    let t_min = server.frontier(job).unwrap().t_min();
    assert!((after.t_prime - t_min * 1.2).abs() < 1e-9);
}

#[test]
fn concurrent_jobs_from_many_threads() {
    // Satellite smoke test: N threads × (register, submit, straggle, read).
    // Per-job versions must be monotonic and every observed frontier
    // complete (lookup(t_min) == fastest point).
    let server = Arc::new(PerseusServer::with_workers(2));
    let n_threads = 4;
    let iters = 3;
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let gpu = GpuSpec::a100_pcie();
                let name = format!("job-{t}");
                server
                    .register_job(JobSpec {
                        name: name.clone(),
                        pipe: pipe(),
                        gpu: gpu.clone(),
                        power_states: None,
                    })
                    .unwrap();
                let mut last_version = 0;
                for i in 0..iters {
                    let d = server
                        .submit_profiles(&name, model_profiles(&gpu), &FrontierOptions::default())
                        .unwrap()
                        .wait();
                    // A later submission may supersede this one under
                    // contention; both outcomes are legal.
                    if let Ok(d) = d {
                        assert!(d.version > last_version, "deploy versions monotonic");
                        last_version = d.version;
                    }
                    let degree = 1.0 + 0.1 * (i as f64 + 1.0);
                    let d = server
                        .set_straggler(&name, 0, 0.0, degree)
                        .unwrap()
                        .unwrap();
                    assert!(d.version > last_version, "straggler versions monotonic");
                    last_version = d.version;

                    // No half-built frontier: lookup works across the range.
                    let f = server.frontier(&name).unwrap();
                    assert!(f.lookup(f.t_min()).planned_time_s <= f.t_min() + 1e-9);
                    assert_eq!(f.lookup(f.t_star() * 2.0).planned_time_s, f.t_star());
                    let cur = server.job_status(&name).unwrap().deployment.unwrap();
                    assert!(cur.version >= last_version);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.job_names().len(), n_threads);
    for t in 0..n_threads {
        let solver = server.job_status(&format!("job-{t}")).unwrap().solver;
        assert_eq!(solver.runs, iters);
        assert_eq!(solver.artifact_reuses, iters - 1);
    }
}

#[test]
fn faults_degrade_gracefully_and_are_counted() {
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::Duration;

    use crate::{ClientConfig, FaultInjector, JobClient, SubmissionFault};

    struct Script(Mutex<VecDeque<SubmissionFault>>);
    impl FaultInjector for Script {
        fn submission_fault(&self, _job: &str, _epoch: u64) -> SubmissionFault {
            self.0.lock().pop_front().unwrap_or(SubmissionFault::None)
        }
    }

    let server = Arc::new(PerseusServer::new());
    server
        .register_job(JobSpec {
            name: "gpt".into(),
            pipe: pipe(),
            gpu: GpuSpec::a100_pcie(),
            power_states: None,
        })
        .unwrap();
    let script = Arc::new(Script(Mutex::new(VecDeque::new())));
    server.set_fault_injector(Some(Arc::clone(&script) as Arc<dyn FaultInjector>));
    let gpu = GpuSpec::a100_pcie();
    let profiles = model_profiles(&gpu);
    let opts = FrontierOptions::default();

    // Healthy first characterization.
    server
        .submit_profiles("gpt", profiles.clone(), &opts)
        .unwrap()
        .wait()
        .unwrap();
    assert!(!server.job_status("gpt").unwrap().degraded);

    // A lost re-submission degrades the job; the old frontier keeps
    // serving and every lookup while degraded is counted.
    script.0.lock().push_back(SubmissionFault::Drop);
    let err = server
        .submit_profiles("gpt", profiles.clone(), &opts)
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServerError::SubmissionLost(_)));
    assert!(server.job_status("gpt").unwrap().degraded);
    let d = server.set_straggler("gpt", 0, 0.0, 1.2).unwrap().unwrap();
    assert!(d.t_prime > 0.0, "stale frontier still answers lookups");
    let stats = server.job_status("gpt").unwrap().chaos;
    assert_eq!(stats.degraded_lookups, 1);
    assert_eq!(stats.faults_injected, 1);

    // A panicked worker is contained (the pool survives) and counted too.
    script.0.lock().push_back(SubmissionFault::Panic);
    let err = server
        .submit_profiles("gpt", profiles.clone(), &opts)
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServerError::CharacterizationPanicked(_)));
    assert!(server.job_status("gpt").unwrap().degraded);
    assert_eq!(server.job_status("gpt").unwrap().chaos.faults_injected, 2);

    // The retrying client rides out a drop + panic in a row and clears
    // the degraded flag with a fresh deployment.
    script.0.lock().push_back(SubmissionFault::Drop);
    script.0.lock().push_back(SubmissionFault::Panic);
    let client = JobClient::new(Arc::clone(&server), "gpt");
    let d = client.submit_profiles_with_retry(&profiles, &opts).unwrap();
    assert!(d.version > 0);
    assert!(!server.job_status("gpt").unwrap().degraded);
    assert_eq!(client.retries(), 2);
    assert_eq!(server.job_status("gpt").unwrap().chaos.faults_injected, 4);

    // Delayed characterization: slower than the client's timeout, so the
    // client resubmits; supersession resolves the race either way.
    script
        .0
        .lock()
        .push_back(SubmissionFault::Delay(Duration::from_millis(300)));
    let fast = ClientConfig::default().timeout(Duration::from_millis(100));
    let client = JobClient::with_config(Arc::clone(&server), "gpt", fast);
    client.submit_profiles_with_retry(&profiles, &opts).unwrap();
    assert!(!server.job_status("gpt").unwrap().degraded);

    // Clock skew: backwards skew floors at zero and never un-fires
    // pending stragglers; forward skew fires them like advance_time.
    server.set_straggler("gpt", 1, 10.0, 1.3).unwrap();
    assert!(server.skew_clock("gpt", -1e9).unwrap().is_empty());
    let fired = server.skew_clock("gpt", 15.0).unwrap();
    assert_eq!(fired.len(), 1);

    // Frequency cap: the frontier is re-clamped, not invalidated.
    let t_star_before = server.frontier("gpt").unwrap().t_star();
    let cap = FreqMHz((gpu.min_freq_mhz + gpu.max_freq_mhz) / 2);
    let d = server.apply_freq_cap("gpt", cap).unwrap();
    assert!(d
        .schedule
        .freqs
        .iter()
        .flatten()
        .all(|f| *f <= gpu.clamp_freq(cap)));
    assert!(server.frontier("gpt").unwrap().t_star() >= t_star_before - 1e-9);

    // Uninstalling the injector restores the fault-free path.
    server.set_fault_injector(None);
    server
        .submit_profiles("gpt", profiles, &opts)
        .unwrap()
        .wait()
        .unwrap();
}

#[test]
fn server_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PerseusServer>();
    assert_send_sync::<crate::server::Deployment>();
}

#[test]
fn job_status_is_the_single_status_surface() {
    // job_status answers everything the retired piecemeal getters
    // (current_deployment / solver_stats / chaos_stats / is_degraded)
    // used to, in one consistent read.
    let (server, job) = server_with_job();
    let gpu = GpuSpec::a100_pcie();
    let before = server.job_status(job).unwrap();
    assert!(before.deployment.is_none());
    assert_eq!(before.epoch, 0);
    server
        .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let status = server.job_status(job).unwrap();
    let deployment = status.deployment.as_ref().unwrap();
    assert!(deployment.version >= 1);
    assert_eq!(status.solver.runs, 1);
    assert_eq!(status.chaos.faults_injected, 0);
    assert!(!status.degraded);
    assert!(status.epoch >= 1);
}

#[test]
fn client_status_surfaces_job_status() {
    use std::sync::Arc;

    use crate::{ClientConfig, JobClient};

    let server = Arc::new(PerseusServer::with_workers(1));
    server
        .register_job(JobSpec {
            name: "gpt".into(),
            pipe: pipe(),
            gpu: GpuSpec::a100_pcie(),
            power_states: None,
        })
        .unwrap();
    let config = ClientConfig::default().retries(3);
    assert_eq!(config.max_attempts(), 3);
    let client = JobClient::with_config(Arc::clone(&server), "gpt", config);
    let status = client.status().unwrap();
    assert!(status.deployment.is_none());
    assert_eq!(status.epoch, 0);

    let gpu = GpuSpec::a100_pcie();
    server
        .submit_profiles("gpt", model_profiles(&gpu), &FrontierOptions::default())
        .unwrap()
        .wait()
        .unwrap();
    let status = client.status().unwrap();
    assert!(status.deployment.is_some());
    assert_eq!(status.epoch, 1);
    assert!(!status.degraded);
}

mod durability {
    use perseus_core::FrontierOptions;
    use perseus_gpu::{FreqMHz, GpuSpec};
    use perseus_store::Journal;

    use super::{model_profiles, pipe, unique_test_dir};
    use crate::server::{JobSpec, PerseusServer, ServerError};

    /// SplitMix64: a tiny deterministic generator for the randomized
    /// replay-idempotence test, so the test needs no RNG dependency.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn register(server: &PerseusServer) {
        server
            .register_job(JobSpec {
                name: "gpt".into(),
                pipe: pipe(),
                gpu: GpuSpec::a100_pcie(),
                power_states: None,
            })
            .unwrap();
    }

    /// Drives a durable server through one scripted history covering every
    /// journaled event kind, capturing the state fingerprint after each
    /// mutation. Returns the per-step fingerprints, in order; step `i`
    /// completes journal sequence `i + 1`.
    fn scripted_history(server: &PerseusServer) -> Vec<Vec<u8>> {
        let gpu = GpuSpec::a100_pcie();
        let mut fps = Vec::new();
        register(server);
        fps.push(server.state_fingerprint());
        server
            .submit_profiles("gpt", model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        fps.push(server.state_fingerprint());
        server.set_straggler("gpt", 0, 0.0, 1.2).unwrap();
        fps.push(server.state_fingerprint());
        server.set_straggler("gpt", 2, 30.0, 1.4).unwrap();
        fps.push(server.state_fingerprint());
        server.advance_time("gpt", 10.0).unwrap();
        fps.push(server.state_fingerprint());
        server.skew_clock("gpt", 25.0).unwrap();
        fps.push(server.state_fingerprint());
        let cap = FreqMHz((gpu.min_freq_mhz + gpu.max_freq_mhz) / 2);
        server.apply_freq_cap("gpt", cap).unwrap();
        fps.push(server.state_fingerprint());
        fps
    }

    /// Reads the raw journal bytes and the byte offset at which each
    /// record ends (the crash points at clean record boundaries).
    fn record_boundaries(journal: &std::path::Path) -> (Vec<u8>, Vec<usize>) {
        let bytes = std::fs::read(journal).unwrap();
        let mut ends = Vec::new();
        let mut pos = 8usize; // header: magic + version
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let end = pos + 8 + len;
            if end > bytes.len() {
                break;
            }
            ends.push(end);
            pos = end;
        }
        (bytes, ends)
    }

    /// Writes `bytes[..cut]` as the journal of a fresh directory and
    /// recovers a server from it.
    fn recover_from_prefix(
        bytes: &[u8],
        cut: usize,
        tag: &str,
    ) -> (PerseusServer, std::path::PathBuf) {
        let dir = unique_test_dir(tag);
        std::fs::write(dir.join("server.journal"), &bytes[..cut]).unwrap();
        let server =
            PerseusServer::open_with(&dir, 1, perseus_telemetry::Telemetry::disabled()).unwrap();
        (server, dir)
    }

    #[test]
    fn reopen_restores_bit_identical_state() {
        let dir = unique_test_dir("reopen");
        let server = PerseusServer::open(&dir).unwrap();
        assert!(server.is_durable());
        let fps = scripted_history(&server);
        let before = server.state_fingerprint();
        assert_eq!(&before, fps.last().unwrap());
        // Freeze the state into a snapshot so recovery restores the
        // solved frontier instead of re-deriving it from the journal.
        server.snapshot_now().unwrap();
        drop(server);

        let recovered = PerseusServer::recover(&dir).unwrap();
        assert_eq!(recovered.state_fingerprint(), before);
        let stats = recovered.durability();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.truncated_records, 0);
        // The snapshot carried the solved frontier: recovery paid zero
        // re-characterization work.
        assert_eq!(stats.recharacterizations_avoided, 1);
        assert_eq!(stats.recharacterizations_replayed, 0);

        // The recovered server is live, not a museum piece: the pending
        // straggler timers and deployment pipeline still work.
        let d = recovered
            .set_straggler("gpt", 1, 0.0, 1.3)
            .unwrap()
            .unwrap();
        assert!(d.version > 0);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance gate: kill the server at *every byte offset* of the
    /// write-ahead journal and recover. A cut at a record boundary must
    /// reconstruct exactly the state after that many events; a cut inside
    /// a record is a torn write — recovery truncates to the last complete
    /// record and reconstructs that state, without panicking.
    #[test]
    fn crash_at_every_journal_offset_recovers_a_prefix_state() {
        let dir = unique_test_dir("crashpoint");
        let server =
            PerseusServer::open_with(&dir, 1, perseus_telemetry::Telemetry::disabled()).unwrap();
        // Keep the whole history in the journal: no snapshot compaction.
        server.set_snapshot_every(u64::MAX);
        let fps = scripted_history(&server);
        let journal = server.journal_path().unwrap();
        drop(server);

        let (bytes, ends) = record_boundaries(&journal);
        assert_eq!(ends.len(), fps.len(), "one journal record per mutation");
        let empty_fp = PerseusServer::new().state_fingerprint();

        // Interior offsets are sampled (~16 per record) plus every
        // boundary±1; boundaries themselves are all checked exactly.
        let mut cuts: Vec<usize> = Vec::new();
        let mut start = 8usize;
        for &end in &ends {
            let span = end - start;
            let stride = (span / 16).max(1);
            cuts.extend((start..end).step_by(stride));
            cuts.extend([start + 1, end - 1, end]);
            start = end;
        }
        cuts.sort_unstable();
        cuts.dedup();

        for cut in cuts {
            let (recovered, rdir) = recover_from_prefix(&bytes, cut, "cut");
            // State equals the last fully journaled mutation before the cut.
            let n_complete = ends.iter().filter(|&&e| e <= cut).count();
            let expect = if n_complete == 0 {
                &empty_fp
            } else {
                &fps[n_complete - 1]
            };
            assert_eq!(
                &recovered.state_fingerprint(),
                expect,
                "cut at byte {cut}: recovered state must equal the \
                 {n_complete}-event prefix"
            );
            let stats = recovered.durability();
            let torn = ends.binary_search(&cut).is_err();
            assert_eq!(
                stats.truncated_records,
                u64::from(torn && cut > 8),
                "cut at byte {cut}: torn tails are truncated, clean cuts are not"
            );
            drop(recovered);
            let _ = std::fs::remove_dir_all(&rdir);
        }
        let _ = std::fs::remove_dir_all(journal.parent().unwrap());
    }

    /// A scribbled journal tail (bit rot, torn multi-block write) makes
    /// every later append unreachable: recovery truncates to the last
    /// valid record, reports the loss, and a second recovery is clean —
    /// the poison does not survive compaction.
    #[test]
    fn corrupted_tail_recovers_by_truncation() {
        let dir = unique_test_dir("scribble");
        let server =
            PerseusServer::open_with(&dir, 1, perseus_telemetry::Telemetry::disabled()).unwrap();
        server.set_snapshot_every(u64::MAX);
        let gpu = GpuSpec::a100_pcie();
        register(&server);
        server
            .submit_profiles("gpt", model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        let at_scribble = server.state_fingerprint();
        assert!(server.corrupt_journal_tail(&[0xFF; 32]));
        // Mutations after the scribble journal fine in this process but
        // are unreachable behind the garbage at the next open.
        server.set_straggler("gpt", 0, 0.0, 1.5).unwrap();
        assert_ne!(server.state_fingerprint(), at_scribble);
        drop(server);

        let recovered = PerseusServer::recover(&dir).unwrap();
        assert_eq!(recovered.state_fingerprint(), at_scribble);
        let stats = recovered.durability();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.truncated_records, 1);
        assert!(stats.truncated_bytes >= 32);
        drop(recovered);

        // Recovery folded the surviving tail into a snapshot, so the
        // second open sees a clean store.
        let again = PerseusServer::recover(&dir).unwrap();
        assert_eq!(again.state_fingerprint(), at_scribble);
        assert_eq!(again.durability().truncated_records, 0);
        drop(again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An all-garbage prefix (the header itself is destroyed) is refused
    /// loudly rather than silently truncated to an empty journal: the
    /// operator pointed the server at something that is not a journal.
    #[test]
    fn destroyed_header_is_an_error_not_data_loss() {
        let dir = unique_test_dir("badheader");
        std::fs::write(dir.join("server.journal"), b"not a journal at all").unwrap();
        let Err(err) = PerseusServer::open(&dir) else {
            panic!("opening a non-journal file must fail")
        };
        assert!(matches!(err, ServerError::Store(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Randomized replay idempotence: recovering from a snapshot at step
    /// `j` plus a journal tail that *overlaps* the snapshot (records
    /// `j - d ..= k`, re-appended with their original sequence numbers)
    /// must converge to exactly the step-`k` state. Overlapping records
    /// are skipped by the sequence watermark and duplicate
    /// characterizations by the epoch check — nothing is applied twice,
    /// so no deployment version is ever double-bumped.
    #[test]
    fn replay_is_idempotent_under_snapshot_journal_overlap() {
        let dir = unique_test_dir("idem");
        let server =
            PerseusServer::open_with(&dir, 1, perseus_telemetry::Telemetry::disabled()).unwrap();
        server.set_snapshot_every(u64::MAX);
        let fps = scripted_history(&server);
        let journal = server.journal_path().unwrap();
        drop(server);
        let (bytes, ends) = record_boundaries(&journal);
        let n = ends.len() as u64;

        let mut rng = SplitMix64(0xC0FF_EE00_5EED);
        for round in 0..8 {
            // Snapshot point j, replay target k >= j, overlap depth d <= j.
            let j = rng.below(n + 1); // 0..=n events snapshotted
            let k = j + rng.below(n - j + 1); // j..=n
            let d = rng.below(j + 1); // re-append d already-snapshotted records

            // Recover a server from the j-event journal prefix; its
            // post-recovery snapshot now covers sequences 1..=j.
            let cut = if j == 0 { 8 } else { ends[j as usize - 1] };
            let (snapped, sdir) = recover_from_prefix(&bytes, cut, "idem-snap");
            drop(snapped);

            // Splice records (j - d, k] into its (compacted) journal with
            // their original sequence numbers.
            let (mut tail_journal, left) = Journal::open(sdir.join("server.journal")).unwrap();
            assert!(left.is_empty(), "recovery compacted the journal");
            let (full_journal, records) = Journal::open(&journal).unwrap();
            drop(full_journal);
            for rec in &records {
                if rec.seq > j - d && rec.seq <= k {
                    tail_journal.append_with_seq(rec.seq, &rec.payload).unwrap();
                }
            }
            drop(tail_journal);

            let recovered = PerseusServer::recover(&sdir).unwrap();
            let expect = if k == 0 {
                PerseusServer::new().state_fingerprint()
            } else {
                fps[k as usize - 1].clone()
            };
            assert_eq!(
                recovered.state_fingerprint(),
                expect,
                "round {round}: snapshot at {j} + records ({}, {k}] must \
                 converge to the {k}-event state",
                j - d
            );
            // The overlapped characterization (if any) was deduplicated,
            // not re-solved: replayed + avoided never exceeds one for the
            // single characterization in the script.
            let stats = recovered.durability();
            assert!(
                stats.recharacterizations_replayed + stats.recharacterizations_avoided <= 1,
                "round {round}: characterization applied at most once"
            );
            drop(recovered);
            let _ = std::fs::remove_dir_all(&sdir);
        }
        let _ = std::fs::remove_dir_all(journal.parent().unwrap());
    }

    /// Snapshot cadence: with `snapshot_every(1)` every mutation folds
    /// into the snapshot and the journal stays compact; recovery then
    /// replays nothing and still lands on the identical state.
    #[test]
    fn aggressive_snapshot_cadence_keeps_journal_compact_and_state_exact() {
        let dir = unique_test_dir("cadence");
        let server =
            PerseusServer::open_with(&dir, 1, perseus_telemetry::Telemetry::disabled()).unwrap();
        server.set_snapshot_every(1);
        let fps = scripted_history(&server);
        let stats = server.durability();
        // Every synchronous mutator folds a snapshot; the asynchronous
        // characterization append is folded by the next mutator.
        assert!(stats.snapshots_written >= fps.len() as u64 - 1);
        let journal = server.journal_path().unwrap();
        drop(server);

        let (_, ends) = record_boundaries(&journal);
        assert!(
            ends.len() <= 1,
            "per-mutation snapshots keep at most the in-flight record journaled"
        );
        let recovered = PerseusServer::recover(&dir).unwrap();
        assert_eq!(&recovered.state_fingerprint(), fps.last().unwrap());
        assert_eq!(recovered.durability().replayed_events, 0);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

mod flight {
    use std::collections::VecDeque;
    use std::sync::Arc;

    use parking_lot::Mutex;
    use perseus_core::FrontierOptions;
    use perseus_gpu::GpuSpec;
    use perseus_telemetry::IterationSample;

    use super::{model_profiles, pipe, unique_test_dir};
    use crate::server::{JobSpec, PerseusServer, ServerError};
    use crate::{FaultInjector, SubmissionFault};

    struct Script(Mutex<VecDeque<SubmissionFault>>);
    impl FaultInjector for Script {
        fn submission_fault(&self, _job: &str, _epoch: u64) -> SubmissionFault {
            self.0.lock().pop_front().unwrap_or(SubmissionFault::None)
        }
    }

    fn sample(iteration: u64) -> IterationSample {
        IterationSample {
            iteration,
            sync_time_s: 0.42,
            useful_j: 900.0,
            intrinsic_j: 40.0,
            extrinsic_j: 10.0,
            freq_min_mhz: 1100,
            freq_max_mhz: 1410,
            degraded: false,
            degraded_lookups: 0,
            faults: 0,
        }
    }

    #[test]
    fn flight_record_snapshots_and_appears_in_job_status() {
        let gpu = GpuSpec::a100_pcie();
        let server = PerseusServer::with_workers(1);
        server
            .register_job(JobSpec {
                name: "job".into(),
                pipe: pipe(),
                gpu: gpu.clone(),
                power_states: None,
            })
            .unwrap();
        for i in 0..5 {
            server.flight_recorder().record(sample(i));
        }
        let snap = server.flight_record();
        assert_eq!(snap.samples.len(), 5);
        assert_eq!(snap.samples[4].iteration, 4);
        let status = server.job_status("job").unwrap();
        assert_eq!(status.flight.samples, 5);
        assert_eq!(status.flight.last_iteration, Some(4));
    }

    #[test]
    fn containment_auto_dumps_the_flight_record() {
        let gpu = GpuSpec::a100_pcie();
        let server = PerseusServer::with_workers(1);
        server
            .register_job(JobSpec {
                name: "job".into(),
                pipe: pipe(),
                gpu: gpu.clone(),
                power_states: None,
            })
            .unwrap();
        let script = Arc::new(Script(Mutex::new(VecDeque::from([
            SubmissionFault::None,
            SubmissionFault::Panic,
        ]))));
        server.set_fault_injector(Some(script as Arc<dyn FaultInjector>));
        let dir = unique_test_dir("flight");
        let dump = dir.join("postmortem.json");
        server.arm_flight_dump(Some(dump.clone()));

        let opts = FrontierOptions::default();
        // Healthy submission: no dump.
        server
            .submit_profiles("job", model_profiles(&gpu), &opts)
            .unwrap()
            .wait()
            .unwrap();
        server.flight_recorder().record(sample(0));
        assert!(!dump.exists(), "healthy path must not dump");

        // Contained panic: the post-mortem lands at the armed path.
        let result = server
            .submit_profiles("job", model_profiles(&gpu), &opts)
            .unwrap()
            .wait();
        assert!(matches!(
            result,
            Err(ServerError::CharacterizationPanicked(_))
        ));
        let text = std::fs::read_to_string(&dump).expect("containment wrote the post-mortem");
        assert!(text.contains("\"samples\": ["));
        assert!(text.contains("\"iteration\": 0"));
        assert_eq!(server.flight_recorder().dumps(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

mod fleet {
    use super::*;
    use std::time::Duration;

    use perseus_store::Persist;

    use crate::client::{ClientConfig, DecorrelatedJitter, JobClient};
    use crate::fleet::{FleetConfig, FleetServer, TenantId};
    use crate::server::{FaultInjector, SubmissionFault};

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.into(),
            pipe: pipe(),
            gpu: GpuSpec::a100_pcie(),
            power_states: None,
        }
    }

    fn opts() -> FrontierOptions {
        FrontierOptions {
            tau_s: Some(5e-3),
            max_iters: 50_000,
            ..FrontierOptions::default()
        }
    }

    #[test]
    fn decorrelated_jitter_is_seed_deterministic_and_bounded() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(10);
        let mut a = DecorrelatedJitter::new(base, cap, 42);
        let mut b = DecorrelatedJitter::new(base, cap, 42);
        let mut c = DecorrelatedJitter::new(base, cap, 43);
        let mut diverged = false;
        let mut prev = base;
        for _ in 0..200 {
            let da = a.next_delay();
            // Same seed ⇒ the exact same delay sequence.
            assert_eq!(da, b.next_delay());
            diverged |= da != c.next_delay();
            // Every draw honors the decorrelated-jitter envelope:
            // uniform in [base, min(cap, 3 × previous draw)].
            assert!(da >= base && da <= cap, "delay {da:?} out of [base, cap]");
            assert!(
                da <= (prev * 3).min(cap),
                "delay {da:?} exceeds 3x previous {prev:?}"
            );
            prev = da;
        }
        assert!(diverged, "different seeds never diverged in 200 draws");

        a.reset();
        assert!(a.next_delay() <= (base * 3).min(cap));
    }

    #[test]
    fn job_client_backoff_is_reproducible_and_legacy_ladder_is_exact() {
        let (server, job) = server_with_job();
        let server = std::sync::Arc::new(server);
        let cfg = ClientConfig::default()
            .backoff(Duration::from_micros(100))
            .max_backoff(Duration::from_millis(5))
            .jitter_seed(7);
        let c1 = JobClient::with_config(std::sync::Arc::clone(&server), job, cfg);
        let c2 = JobClient::with_config(std::sync::Arc::clone(&server), job, cfg);
        for attempt in 0..32 {
            assert_eq!(
                c1.next_backoff_delay(attempt),
                c2.next_backoff_delay(attempt),
                "same seed must replay the same delays"
            );
        }

        // Jitter off: the delay ladder is the exact legacy exponential.
        let plain = JobClient::with_config(
            std::sync::Arc::clone(&server),
            job,
            ClientConfig::default()
                .backoff(Duration::from_millis(2))
                .max_backoff(Duration::from_millis(512))
                .no_jitter(),
        );
        for attempt in 0..12 {
            let expect = Duration::from_millis(2)
                .saturating_mul(1 << attempt.min(8))
                .min(Duration::from_millis(512));
            assert_eq!(plain.next_backoff_delay(attempt), expect);
        }

        // Auto mode seeds from the job name: deterministic per job, and
        // two *different* jobs draw different sequences.
        let auto1 = JobClient::new(std::sync::Arc::clone(&server), job);
        let auto2 = JobClient::new(std::sync::Arc::clone(&server), job);
        let other = JobClient::new(std::sync::Arc::clone(&server), "other-job");
        let mut job_diverged = false;
        for attempt in 0..32 {
            let d = auto1.next_backoff_delay(attempt);
            assert_eq!(d, auto2.next_backoff_delay(attempt));
            job_diverged |= d != other.next_backoff_delay(attempt);
        }
        assert!(job_diverged, "distinct jobs should be decorrelated");
    }

    /// Holds the single admission slot with a real (delayed) task, then
    /// verifies `Overloaded` both surfaces as a typed rejection and is
    /// ridden out transparently by the retrying client.
    #[test]
    fn admission_control_rejects_then_client_retries_through() {
        struct DelayFirst;
        impl FaultInjector for DelayFirst {
            fn submission_fault(&self, _job: &str, epoch: u64) -> SubmissionFault {
                if epoch == 1 {
                    SubmissionFault::Delay(Duration::from_millis(250))
                } else {
                    SubmissionFault::None
                }
            }
        }

        let (server, job) = server_with_job();
        let server = std::sync::Arc::new(server);
        server.set_max_inflight(1);
        assert_eq!(server.max_inflight(), 1);
        server.set_fault_injector(Some(std::sync::Arc::new(DelayFirst)));
        let gpu = GpuSpec::a100_pcie();

        // Claims the only slot and stalls in the worker for 250 ms.
        let _slow = server
            .submit_profiles(job, model_profiles(&gpu), &opts())
            .unwrap();
        // A bare resubmission is refused with the typed error...
        match server.submit_profiles(job, model_profiles(&gpu), &opts()) {
            Err(ServerError::Overloaded {
                inflight, limit, ..
            }) => {
                assert_eq!((inflight, limit), (1, 1));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // ...while the retrying client backs off until the slot frees.
        let client = JobClient::with_config(
            std::sync::Arc::clone(&server),
            job,
            ClientConfig::default()
                .retries(40)
                .backoff(Duration::from_millis(10))
                .max_backoff(Duration::from_millis(50))
                .timeout(Duration::from_millis(500)),
        );
        let deployment = client
            .submit_profiles_with_retry(&model_profiles(&gpu), &opts())
            .expect("client must ride out Overloaded");
        assert!(deployment.schedule.time_s > 0.0);
        assert!(client.retries() > 0, "the client should have backed off");
        assert!(server.peak_inflight_characterizations() <= 1);
        assert_eq!(server.inflight_characterizations(), 0);
    }

    #[test]
    fn fleet_shares_one_plan_cache_across_shards_and_jobs() {
        let fleet = FleetServer::new(FleetConfig::default().shards(4).workers_per_shard(1));
        let tenant = TenantId::from("ml-platform");
        let gpu = GpuSpec::a100_pcie();
        let names: Vec<String> = (0..12).map(|i| format!("fleet-job-{i}")).collect();
        for n in &names {
            fleet.register_job(spec(n)).unwrap();
        }
        // Jobs actually spread across shards.
        let mut shards_used: Vec<usize> = names.iter().map(|n| fleet.shard_of(n)).collect();
        shards_used.sort_unstable();
        shards_used.dedup();
        assert!(shards_used.len() > 1, "12 jobs all hashed to one shard");

        // First job solves and fills the cache...
        fleet
            .submit_profiles(&tenant, &names[0], model_profiles(&gpu), &opts())
            .unwrap()
            .wait()
            .unwrap();
        // ...every structurally identical job after it hits, regardless
        // of shard.
        for n in &names[1..] {
            fleet
                .submit_profiles(&tenant, n, model_profiles(&gpu), &opts())
                .unwrap()
                .wait()
                .unwrap();
        }
        let stats = fleet.stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.admitted, 12);
        assert_eq!(stats.cache.inserts, 1, "one structure, one solve");
        assert_eq!(stats.cache.hits, 11, "all later jobs reuse the plan");
        // The deployed schedules are identical across jobs: selection on
        // a shared plan.
        let d0 = fleet
            .job_status(&tenant, &names[0])
            .unwrap()
            .deployment
            .unwrap();
        for n in &names[1..] {
            let d = fleet.job_status(&tenant, n).unwrap().deployment.unwrap();
            assert_eq!(
                d.schedule.to_bytes(),
                d0.schedule.to_bytes(),
                "{n}: cached deployment differs from the solved one"
            );
        }
        // Straggler notifications route through the fleet too.
        assert!(fleet
            .set_straggler(&names[3], 0, 0.0, 1.3)
            .unwrap()
            .is_some());
    }

    #[test]
    fn tenant_quota_rejects_when_dry_and_refills_with_the_clock() {
        let fleet = FleetServer::new(
            FleetConfig::default().shards(2).tenant_quota(2.0, 1.0), // burst 2, +1 token per second
        );
        let tenant = TenantId::from("greedy");
        let gpu = GpuSpec::a100_pcie();
        for i in 0..3 {
            fleet.register_job(spec(&format!("quota-{i}"))).unwrap();
        }
        fleet
            .submit_profiles(&tenant, "quota-0", model_profiles(&gpu), &opts())
            .unwrap()
            .wait()
            .unwrap();
        fleet
            .submit_profiles(&tenant, "quota-1", model_profiles(&gpu), &opts())
            .unwrap()
            .wait()
            .unwrap();
        match fleet.submit_profiles(&tenant, "quota-2", model_profiles(&gpu), &opts()) {
            Err(ServerError::QuotaExhausted { tenant: t }) => assert_eq!(t, "greedy"),
            other => panic!("expected QuotaExhausted, got {other:?}"),
        }
        assert_eq!(fleet.tenant_tokens(&tenant), Some(0.0));

        // One fleet-clock second refills one token.
        fleet.advance_clock(1.0);
        assert_eq!(fleet.tenant_tokens(&tenant), Some(1.0));
        fleet
            .submit_profiles(&tenant, "quota-2", model_profiles(&gpu), &opts())
            .unwrap()
            .wait()
            .unwrap();

        let stats = fleet.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.rejected_quota, 1);
        // An unquota'd tenant is never charged.
        assert_eq!(fleet.tenant_tokens(&TenantId::from("idle")), None);
    }

    /// The tentpole stress test: many threads, many tenants, bounded
    /// shards, finite quotas — and at the end, exact accounting plus
    /// per-shard state equal to a sequential replay of the admitted work.
    #[test]
    fn concurrent_fleet_accounting_is_exact_and_replayable() {
        const TENANTS: usize = 4;
        const PER_TENANT: usize = 30;
        const BURST: f64 = 20.0;

        let cfg = FleetConfig::default()
            .shards(3)
            .workers_per_shard(1)
            .max_inflight_per_shard(2)
            .virtual_nodes(16)
            .tenant_quota(BURST, 0.0);
        let fleet = FleetServer::new(cfg);
        let gpu = GpuSpec::a100_pcie();

        let mut names = Vec::new();
        for t in 0..TENANTS {
            for i in 0..PER_TENANT {
                let name = format!("stress-t{t}-job{i}");
                fleet.register_job(spec(&name)).unwrap();
                names.push(name);
            }
        }

        // Each tenant submits from its own thread; outcomes are recorded
        // locally so totals can be cross-checked against FleetStats.
        let admitted: parking_lot::Mutex<Vec<String>> = parking_lot::Mutex::new(Vec::new());
        let counts: parking_lot::Mutex<(u64, u64, u64)> = parking_lot::Mutex::new((0, 0, 0));
        std::thread::scope(|s| {
            for t in 0..TENANTS {
                let fleet = &fleet;
                let gpu = &gpu;
                let admitted = &admitted;
                let counts = &counts;
                s.spawn(move || {
                    let tenant = TenantId(format!("tenant-{t}"));
                    let mut tickets = Vec::new();
                    let (mut ok, mut quota, mut over) = (0u64, 0u64, 0u64);
                    for i in 0..PER_TENANT {
                        let name = format!("stress-t{t}-job{i}");
                        match fleet.submit_profiles(&tenant, &name, model_profiles(gpu), &opts()) {
                            Ok(ticket) => {
                                ok += 1;
                                admitted.lock().push(name);
                                tickets.push(ticket);
                            }
                            Err(ServerError::QuotaExhausted { .. }) => quota += 1,
                            Err(ServerError::Overloaded { .. }) => over += 1,
                            Err(e) => panic!("unexpected error: {e:?}"),
                        }
                    }
                    for ticket in tickets {
                        ticket.wait().unwrap();
                    }
                    let mut c = counts.lock();
                    c.0 += ok;
                    c.1 += quota;
                    c.2 += over;
                });
            }
        });

        let (ok, quota, over) = *counts.lock();
        let stats = fleet.stats();
        // Exact accounting: every submission landed in exactly one bucket,
        // and the fleet's counters agree with the per-thread tallies.
        assert_eq!(stats.submitted, (TENANTS * PER_TENANT) as u64);
        assert_eq!(
            stats.submitted,
            stats.admitted
                + stats.rejected_quota
                + stats.rejected_overloaded
                + stats.rejected_other
        );
        assert_eq!(stats.admitted, ok);
        assert_eq!(stats.rejected_quota, quota);
        assert_eq!(stats.rejected_overloaded, over);
        assert_eq!(stats.rejected_other, 0);
        // Quota math is deterministic per tenant (one thread each, zero
        // refill): exactly burst-many submissions pass the bucket.
        assert_eq!(
            stats.rejected_quota,
            (TENANTS * PER_TENANT) as u64 - TENANTS as u64 * BURST as u64
        );
        // No shard ever exceeded its in-flight bound.
        for (i, shard) in fleet.shards().iter().enumerate() {
            assert!(
                shard.peak_inflight_characterizations() <= 2,
                "shard {i} exceeded its admission bound: {}",
                shard.peak_inflight_characterizations()
            );
            assert_eq!(shard.inflight_characterizations(), 0);
        }

        // Replay: a fresh single server per shard, fed the same
        // registrations and only the admitted submissions, sequentially.
        // Its state fingerprint must equal the concurrent shard's — the
        // shared cache and the thread interleaving are both invisible in
        // final state.
        let admitted = admitted.lock();
        for (i, shard) in fleet.shards().iter().enumerate() {
            let replay = PerseusServer::with_workers(1);
            for name in &names {
                if fleet.shard_of(name) == i {
                    replay.register_job(spec(name)).unwrap();
                }
            }
            for name in admitted.iter() {
                if fleet.shard_of(name) == i {
                    replay
                        .submit_profiles(name, model_profiles(&gpu), &opts())
                        .unwrap()
                        .wait()
                        .unwrap();
                }
            }
            assert_eq!(
                shard.state_fingerprint(),
                replay.state_fingerprint(),
                "shard {i} diverged from its sequential replay"
            );
        }
    }

    /// Crash mid-fill, reopen, and the fleet cache keeps serving: replayed
    /// characterizations hit recovered entries instead of re-solving.
    #[test]
    fn durable_fleet_cache_survives_crash_and_skips_resolves() {
        let root = unique_test_dir("fleet-durable");
        let cfg = FleetConfig::default().shards(2).workers_per_shard(1);
        let gpu = GpuSpec::a100_pcie();

        let (pre_frontier, pre_fps) = {
            let fleet = FleetServer::open(&root, cfg.clone()).unwrap();
            for n in ["crash-a", "crash-b"] {
                fleet.register_job(spec(n)).unwrap();
            }
            let tenant = TenantId::from("acme");
            fleet
                .submit_profiles(&tenant, "crash-a", model_profiles(&gpu), &opts())
                .unwrap()
                .wait()
                .unwrap();
            fleet
                .submit_profiles(&tenant, "crash-b", model_profiles(&gpu), &opts())
                .unwrap()
                .wait()
                .unwrap();
            let stats = fleet.stats();
            assert!(fleet.plan_cache().is_durable());
            assert_eq!(stats.cache.inserts, 1);
            assert_eq!(stats.cache.hits, 1);
            let frontier = fleet
                .shard(fleet.shard_of("crash-a"))
                .frontier("crash-a")
                .unwrap()
                .to_bytes();
            (frontier, fleet.plan_cache().fingerprints())
            // Dropped here without any graceful shutdown: the crash.
        };

        let fleet = FleetServer::open(&root, cfg).unwrap();
        // The cache came back from its own WAL...
        let stats = fleet.plan_cache().stats();
        assert_eq!(stats.recovered_entries, 1, "cache entry lost in crash");
        assert_eq!(fleet.plan_cache().fingerprints(), pre_fps);
        // ...and journal replay answered re-characterizations from it:
        // at least one replayed Characterized event became a lookup.
        let avoided: u64 = fleet
            .shards()
            .iter()
            .map(|s| s.durability().recharacterizations_avoided)
            .sum();
        assert!(avoided >= 1, "recovery re-solved despite a warm cache");
        // Recovered state is bit-identical to the pre-crash state.
        let post_frontier = fleet
            .shard(fleet.shard_of("crash-a"))
            .frontier("crash-a")
            .unwrap()
            .to_bytes();
        assert_eq!(post_frontier, pre_frontier);
        // New structurally identical work still hits without solving.
        fleet.register_job(spec("crash-c")).unwrap();
        fleet
            .submit_profiles(
                &TenantId::from("acme"),
                "crash-c",
                model_profiles(&gpu),
                &opts(),
            )
            .unwrap()
            .wait()
            .unwrap();
        let after = fleet.plan_cache().stats();
        assert_eq!(
            after.inserts, 0,
            "a recovered entry should satisfy new jobs"
        );
        assert!(after.hits >= 1);
        std::fs::remove_dir_all(&root).ok();
    }
}

mod kareus {
    use perseus_gpu::PowerStateModel;

    use super::*;

    #[test]
    fn kareus_client_config_preset_widens_timeouts() {
        use std::time::Duration;

        use crate::ClientConfig;

        let cfg = ClientConfig::kareus();
        let default = ClientConfig::default();
        assert_eq!(cfg.call_timeout(), Duration::from_secs(1));
        assert_eq!(cfg.backoff_cap(), Duration::from_millis(1024));
        assert_eq!(cfg.max_attempts(), default.max_attempts());
        assert_eq!(cfg.base_backoff(), default.base_backoff());
        assert!(cfg.jitter_enabled());
    }

    fn kareus_server() -> (PerseusServer, &'static str) {
        let gpu = GpuSpec::a100_pcie();
        let server = PerseusServer::new();
        server
            .register_job(JobSpec {
                name: "gpt-kareus".into(),
                pipe: pipe(),
                gpu: gpu.clone(),
                power_states: Some(PowerStateModel::default_for(&gpu)),
            })
            .unwrap();
        (server, "gpt-kareus")
    }

    #[test]
    fn kareus_jobs_deploy_sleep_plans_and_perseus_jobs_do_not() {
        let gpu = GpuSpec::a100_pcie();
        let (server, job) = kareus_server();
        let deployment = server
            .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        let sleep = deployment.sleep.as_ref().expect("kareus job carries sleep");
        // Every window fits inside the deployed point's iteration.
        for stage in 0..3 {
            for w in sleep.stage_windows(stage) {
                assert!(w.start_s >= -1e-9);
                assert!(w.end_s <= deployment.planned_time_s + 1e-9);
            }
        }

        // A straggler lookup re-indexes the per-point sleep plans.
        let slow = server
            .set_straggler(job, 1, 0.0, 1.4)
            .unwrap()
            .expect("immediate deployment");
        assert!(slow.sleep.is_some());

        // A frequency-only job keeps the classic Perseus surface.
        let (server, job) = server_with_job();
        let deployment = server
            .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert!(deployment.sleep.is_none());
    }

    #[test]
    fn invalid_power_states_are_rejected_at_registration() {
        let gpu = GpuSpec::a100_pcie();
        let hot = PowerStateModel {
            states: vec![perseus_gpu::PowerState {
                name: "hot",
                power_w: gpu.blocking_w * 2.0,
                entry_s: 0.001,
                exit_s: 0.001,
            }],
        };
        let server = PerseusServer::new();
        let err = server
            .register_job(JobSpec {
                name: "bad".into(),
                pipe: pipe(),
                gpu,
                power_states: Some(hot),
            })
            .unwrap_err();
        assert!(matches!(err, ServerError::Core(_)), "got {err:?}");
        // The rejected job was never registered.
        assert!(server.job_names().is_empty());
    }

    #[test]
    fn freq_cap_recomputes_sleep_against_the_capped_timeline() {
        let gpu = GpuSpec::a100_pcie();
        let (server, job) = kareus_server();
        server
            .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        let capped = server.apply_freq_cap(job, FreqMHz(800)).unwrap();
        let sleep = capped.sleep.as_ref().expect("sleep survives the cap");
        for stage in 0..3 {
            for w in sleep.stage_windows(stage) {
                assert!(w.end_s <= capped.planned_time_s + 1e-9);
            }
        }
    }

    #[test]
    fn kareus_state_survives_crash_recovery() {
        let gpu = GpuSpec::a100_pcie();
        let dir = unique_test_dir("kareus");
        let fingerprint = {
            let server = PerseusServer::open(&dir).unwrap();
            server
                .register_job(JobSpec {
                    name: "gpt-kareus".into(),
                    pipe: pipe(),
                    gpu: gpu.clone(),
                    power_states: Some(PowerStateModel::default_for(&gpu)),
                })
                .unwrap();
            server
                .submit_profiles(
                    "gpt-kareus",
                    model_profiles(&gpu),
                    &FrontierOptions::default(),
                )
                .unwrap()
                .wait()
                .unwrap();
            server.state_fingerprint()
        };
        let recovered = PerseusServer::recover(&dir).unwrap();
        assert_eq!(recovered.state_fingerprint(), fingerprint);
        let status = recovered.job_status("gpt-kareus").unwrap();
        assert!(status.deployment.unwrap().sleep.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Streaming-observability integration: the server-side pipeline, the
/// fleet rollup, and the fleet HTTP endpoint.
mod obs {
    use super::*;

    use std::io::{Read as _, Write as _};

    use perseus_telemetry::{IterationSample, Telemetry};

    use crate::fleet::{FleetConfig, FleetServer, TenantId};
    use crate::server::JobSpec;

    fn sample(iteration: u64, sync_time_s: f64) -> IterationSample {
        IterationSample {
            iteration,
            sync_time_s,
            useful_j: 900.0,
            intrinsic_j: 60.0,
            extrinsic_j: 40.0,
            freq_min_mhz: 900,
            freq_max_mhz: 1400,
            degraded: false,
            degraded_lookups: 0,
            faults: 0,
        }
    }

    fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn observe_iteration_populates_job_status_slo() {
        let gpu = GpuSpec::a100_pcie();
        let server = PerseusServer::with_telemetry(1, Telemetry::enabled());
        server
            .register_job(JobSpec {
                name: "gpt".into(),
                pipe: pipe(),
                gpu: gpu.clone(),
                power_states: None,
            })
            .unwrap();
        server
            .submit_profiles("gpt", model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        for i in 0..64 {
            let alerts = server.observe_iteration("gpt", sample(i, 1.0));
            assert!(alerts.is_empty(), "steady state must not alert: {alerts:?}");
        }
        let status = server.job_status("gpt").unwrap();
        assert!(!status.slo.is_empty(), "JobStatus must surface SLO state");
        assert!(
            status.slo.iter().all(|s| s.healthy),
            "steady state must be healthy: {:?}",
            status.slo
        );
        // The pipeline saw every sample and the flight recorder too.
        assert_eq!(server.obs().ingested(), 64);
        assert_eq!(server.flight_recorder().summary().samples, 64);
    }

    #[test]
    fn server_observe_flags_drift_burst() {
        let server = PerseusServer::new();
        let mut firing = Vec::new();
        for i in 0..200 {
            // Straggler onset at iteration 100: sync time jumps 40%.
            let t = if i < 100 { 1.0 } else { 1.4 };
            firing.extend(server.observe_iteration("gpt", sample(i, t)));
        }
        assert!(
            firing
                .iter()
                .any(|a| a.iteration >= 100 && a.iteration <= 110),
            "drift must be caught within 10 iterations of onset: {firing:?}"
        );
    }

    #[test]
    fn fleet_rollup_dedups_shared_registry() {
        let tel = Telemetry::enabled();
        let fleet = FleetServer::with_telemetry(
            FleetConfig::default().shards(4).workers_per_shard(1),
            tel.clone(),
        );
        let tenant = TenantId::from("search");
        let gpu = GpuSpec::a100_pcie();
        for name in ["a", "b", "c"] {
            fleet
                .register_job(JobSpec {
                    name: name.into(),
                    pipe: pipe(),
                    gpu: gpu.clone(),
                    power_states: None,
                })
                .unwrap();
            fleet
                .submit_profiles(
                    &tenant,
                    name,
                    model_profiles(&gpu),
                    &FrontierOptions::default(),
                )
                .unwrap()
                .wait()
                .unwrap();
        }
        let rollup = fleet.metrics_rollup();
        // All shards share one registry: shard-emitted counters appear
        // exactly once, not once per shard.
        let shared = tel.snapshot();
        for (name, labels, value) in shared.iter() {
            let labels: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            assert_eq!(
                rollup.value_of(name, &labels),
                Some(value),
                "{name} must not be double-counted"
            );
        }
        // Fleet-level counters ride along.
        assert_eq!(
            rollup.value_of("perseus_fleet_submitted_total", &[]),
            Some(3.0)
        );
        assert_eq!(
            rollup.value_of("perseus_fleet_admitted_total", &[]),
            Some(3.0)
        );
        assert_eq!(
            rollup.value_of(
                "perseus_fleet_tenant_submitted_total",
                &[("tenant", "search")]
            ),
            Some(3.0)
        );
    }

    #[test]
    fn fleet_rollup_is_exact_sum_under_sharded_telemetry() {
        let fleet_tel = Telemetry::enabled();
        let fleet = FleetServer::with_telemetry(
            FleetConfig::default()
                .shards(3)
                .workers_per_shard(1)
                .sharded_telemetry(true),
            fleet_tel.clone(),
        );
        let tenant = TenantId::from("ads");
        let gpu = GpuSpec::a100_pcie();
        for name in ["a", "b", "c", "d", "e", "f"] {
            fleet
                .register_job(JobSpec {
                    name: name.into(),
                    pipe: pipe(),
                    gpu: gpu.clone(),
                    power_states: None,
                })
                .unwrap();
            fleet
                .submit_profiles(
                    &tenant,
                    name,
                    model_profiles(&gpu),
                    &FrontierOptions::default(),
                )
                .unwrap()
                .wait()
                .unwrap();
        }
        // Registries are disjoint, so every rolled-up sample equals the
        // sum of that sample across the shard snapshots plus the fleet's
        // own registry (the shared plan cache emits there).
        let mut shard_snaps: Vec<_> = fleet
            .shards()
            .iter()
            .map(|s| s.telemetry().snapshot())
            .collect();
        shard_snaps.push(fleet_tel.snapshot());
        let rollup = fleet.metrics_rollup();
        let mut checked = 0;
        for (name, labels, value) in rollup.iter() {
            if name.starts_with("perseus_fleet_") {
                continue;
            }
            if name.ends_with("_p50") || name.ends_with("_p90") || name.ends_with("_p99") {
                continue; // quantiles are derived, not summable
            }
            let labels: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let sum: f64 = shard_snaps
                .iter()
                .filter_map(|s| s.value_of(name, &labels))
                .sum();
            assert!(
                (value - sum).abs() < 1e-9,
                "{name}{labels:?}: rollup {value} != shard sum {sum}"
            );
            checked += 1;
        }
        assert!(checked > 0, "rollup had nothing to check");
    }

    #[test]
    fn fleet_serves_rollup_over_http() {
        let fleet = Arc::new(FleetServer::with_telemetry(
            FleetConfig::default().shards(2).workers_per_shard(1),
            Telemetry::enabled(),
        ));
        let tenant = TenantId::from("search");
        let gpu = GpuSpec::a100_pcie();
        fleet
            .register_job(JobSpec {
                name: "gpt".into(),
                pipe: pipe(),
                gpu: gpu.clone(),
                power_states: None,
            })
            .unwrap();
        fleet
            .submit_profiles(
                &tenant,
                "gpt",
                model_profiles(&gpu),
                &FrontierOptions::default(),
            )
            .unwrap()
            .wait()
            .unwrap();
        for i in 0..32 {
            fleet
                .shard(fleet.shard_of("gpt"))
                .observe_iteration("gpt", sample(i, 1.0));
        }
        let http = fleet.serve_telemetry("127.0.0.1:0").unwrap();
        let addr = http.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, fleet.metrics_rollup().render());
        assert!(body.contains("perseus_fleet_submitted_total 1"));
        assert!(body.contains("perseus_fleet_tenant_submitted_total{tenant=\"search\"} 1"));

        let (head, body) = http_get(addr, "/slo");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        assert!(body.contains("lookup_latency_p99"), "{body}");

        let (head, body) = http_get(addr, "/alerts");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "[]", "steady state serves an empty alert list");

        let (head, _) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        http.shutdown();
    }

    #[test]
    fn tenant_stats_are_sorted_and_exact() {
        let fleet = FleetServer::new(FleetConfig::default().shards(2));
        let gpu = GpuSpec::a100_pcie();
        fleet
            .register_job(JobSpec {
                name: "gpt".into(),
                pipe: pipe(),
                gpu: gpu.clone(),
                power_states: None,
            })
            .unwrap();
        for tenant in ["zeta", "alpha"] {
            let tenant = TenantId::from(tenant);
            fleet
                .submit_profiles(
                    &tenant,
                    "gpt",
                    model_profiles(&gpu),
                    &FrontierOptions::default(),
                )
                .unwrap()
                .wait()
                .unwrap();
            fleet.job_status(&tenant, "gpt").unwrap();
            // Unknown job: rejected, still charged to the tenant.
            let _ = fleet.submit_profiles(
                &tenant,
                "nope",
                model_profiles(&gpu),
                &FrontierOptions::default(),
            );
        }
        let stats = fleet.tenant_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0.as_str(), "alpha");
        assert_eq!(stats[1].0.as_str(), "zeta");
        for (_, s) in &stats {
            assert_eq!(s.submitted, 2);
            assert_eq!(s.admitted, 1);
            assert_eq!(s.rejected, 1);
            assert_eq!(s.lookups, 1);
            assert_eq!(s.lookups_rejected, 0);
        }
    }
}

mod replication {
    use std::sync::Arc;

    use perseus_core::FrontierOptions;
    use perseus_gpu::{FreqMHz, GpuSpec};
    use perseus_pipeline::{CompKind, OpKey};
    use perseus_profiler::ProfileDelta;
    use perseus_telemetry::Telemetry;

    use super::{model_profiles, pipe, unique_test_dir};
    use crate::replica::{FollowerServer, Replicator};
    use crate::server::{JobSpec, PerseusServer, Role, ServerError};
    use crate::JobClient;

    fn register(server: &PerseusServer) {
        server
            .register_job(JobSpec {
                name: "gpt".into(),
                pipe: pipe(),
                gpu: GpuSpec::a100_pcie(),
                power_states: None,
            })
            .unwrap();
    }

    /// Drives a durable leader through a short journaled history (one
    /// record per mutation) ending in a solved, deployed frontier.
    fn drive_leader(server: &PerseusServer) {
        let gpu = GpuSpec::a100_pcie();
        register(server);
        server
            .submit_profiles("gpt", model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        server.set_straggler("gpt", 0, 0.0, 1.2).unwrap();
        server.set_straggler("gpt", 2, 30.0, 1.4).unwrap();
        server.advance_time("gpt", 10.0).unwrap();
        let cap = FreqMHz((gpu.min_freq_mhz + gpu.max_freq_mhz) / 2);
        server.apply_freq_cap("gpt", cap).unwrap();
    }

    #[test]
    fn follower_rejects_mutations_with_not_leader() {
        let (server, job) = super::server_with_job();
        let gpu = GpuSpec::a100_pcie();
        server
            .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();

        server.set_role(Role::Follower);
        server.set_leader_hint("leader-1".into());
        assert_eq!(server.role(), Role::Follower);

        // Every public mutator bounces with the configured hint.
        let err = server
            .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
            .unwrap_err();
        assert!(matches!(&err, ServerError::NotLeader { hint } if hint == "leader-1"));
        let err = server.set_straggler(job, 0, 0.0, 1.2).unwrap_err();
        assert!(matches!(&err, ServerError::NotLeader { hint } if hint == "leader-1"));
        let err = server
            .register_job(JobSpec {
                name: "other".into(),
                pipe: pipe(),
                gpu: GpuSpec::a100_pcie(),
                power_states: None,
            })
            .unwrap_err();
        assert!(matches!(err, ServerError::NotLeader { .. }));
        let err = server
            .ingest_drift(
                job,
                &[ProfileDelta {
                    key: OpKey {
                        stage: 0,
                        chunk: 0,
                        kind: CompKind::Forward,
                    },
                    time_factor: 1.5,
                    energy_factor: 1.5,
                }],
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::NotLeader { .. }));

        // Reads still serve: a follower answers status (reporting its
        // role) and frontier lookups from replicated state.
        let status = server.job_status(job).unwrap();
        assert_eq!(status.role, Role::Follower);
        assert!(server.frontier(job).is_some());

        // Promotion flips the same switch back.
        server.set_role(Role::Leader);
        assert!(server.set_straggler(job, 0, 0.0, 1.2).is_ok());
    }

    #[test]
    fn client_fails_over_to_resolved_leader() {
        let gpu = GpuSpec::a100_pcie();
        let leader = Arc::new(PerseusServer::new());
        register(&leader);

        // A follower with the same job replicated; the client starts here.
        let follower = Arc::new(PerseusServer::new());
        register(&follower);
        follower.set_role(Role::Follower);
        follower.set_leader_hint("leader-1".into());

        let client = JobClient::new(Arc::clone(&follower), "gpt");
        let resolved_leader = Arc::clone(&leader);
        client.set_resolver(move |hint| {
            assert_eq!(hint, "leader-1");
            Some(Arc::clone(&resolved_leader))
        });

        // NotLeader is retryable: the client re-resolves mid-call and the
        // submission lands on the leader without surfacing an error.
        let d = client
            .submit_profiles_with_retry(&model_profiles(&gpu), &FrontierOptions::default())
            .unwrap();
        assert!(d.version > 0);
        assert_eq!(client.failovers(), 1);
        assert!(Arc::ptr_eq(&client.server(), &leader));
        assert_eq!(leader.job_status("gpt").unwrap().role, Role::Leader);
        assert!(follower.job_status("gpt").unwrap().deployment.is_none());

        // Without a resolver the error surfaces instead of burning the
        // retry budget against a server whose role won't change.
        let stuck = JobClient::new(Arc::clone(&follower), "gpt");
        let err = stuck.notify_straggler_with_retry(0, 0.0, 1.2).unwrap_err();
        assert!(matches!(&err, ServerError::NotLeader { hint } if hint == "leader-1"));
    }

    #[test]
    fn replication_round_trip_promotes_bit_identical() {
        let leader_dir = unique_test_dir("repl-leader");
        let follower_dir = unique_test_dir("repl-follower");
        let leader = PerseusServer::open_with(&leader_dir, 1, Telemetry::disabled()).unwrap();
        drive_leader(&leader);
        let want = leader.state_fingerprint();
        let watermark = leader.replication_watermark().unwrap();

        let leader = Arc::new(leader);
        let mut follower = FollowerServer::open(&follower_dir).unwrap();
        follower.set_max_lag(2);
        let replicator = Replicator::new(Arc::clone(&leader));
        let shipped = replicator.sync(&mut follower).unwrap();
        assert_eq!(shipped, watermark);
        let lag = follower.stats();
        assert_eq!(lag.shipped, watermark);
        assert!(lag.lag_records <= 2, "lag bounded by max_lag");
        assert!(lag.lag_bytes > 0);

        // Promotion replays only the bounded unapplied tail — never the
        // journal from genesis — and lands bit-identical to the leader.
        let (promoted, report) = follower.promote().unwrap();
        assert!(report.replayed_records <= 2);
        assert!(
            report.replayed_records < watermark,
            "promotion must not replay from genesis"
        );
        assert_eq!(promoted.state_fingerprint(), want);
        assert_eq!(promoted.role(), Role::Leader);
        // The promoted server is live: it accepts mutations and journals
        // them into its own (now-leading) durable lineage.
        promoted.set_straggler("gpt", 1, 0.0, 1.3).unwrap();
        assert!(promoted.replication_watermark().unwrap() > watermark);

        drop(promoted);
        drop(leader);
        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn follower_truncates_torn_tail_and_resyncs() {
        let leader_dir = unique_test_dir("torn-leader");
        let follower_dir = unique_test_dir("torn-follower");
        let leader = PerseusServer::open_with(&leader_dir, 1, Telemetry::disabled()).unwrap();
        drive_leader(&leader);
        let leader = Arc::new(leader);
        let replicator = Replicator::new(Arc::clone(&leader));

        let mut follower = FollowerServer::open(&follower_dir).unwrap();
        replicator.sync(&mut follower).unwrap();
        let synced = follower.shipped_seq();
        drop(follower);

        // Tear the follower's journal tail mid-record (a torn write on
        // the follower's disk), then keep mutating the leader.
        let journal = follower_dir.join("server.journal");
        let len = std::fs::metadata(&journal).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&journal)
            .unwrap();
        file.set_len(len - 7).unwrap();
        drop(file);
        leader.set_straggler("gpt", 1, 40.0, 1.3).unwrap();
        leader.advance_time("gpt", 50.0).unwrap();

        // Reopen truncates to the last valid record — the shipped
        // watermark regresses — and resync ships the gap again.
        let mut follower = FollowerServer::open(&follower_dir).unwrap();
        assert!(
            follower.shipped_seq() < synced,
            "torn tail must drop the last shipped record"
        );
        replicator.sync(&mut follower).unwrap();
        follower.apply_all();
        assert_eq!(
            follower.shipped_seq(),
            leader.replication_watermark().unwrap()
        );
        assert_eq!(
            follower.server().state_fingerprint(),
            leader.state_fingerprint(),
            "resynced follower must be bit-identical to the leader"
        );

        drop(follower);
        drop(leader);
        let _ = std::fs::remove_dir_all(&leader_dir);
        let _ = std::fs::remove_dir_all(&follower_dir);
    }

    #[test]
    fn ingest_drift_trips_only_at_threshold() {
        let (server, job) = super::server_with_job();
        let gpu = GpuSpec::a100_pcie();
        server
            .submit_profiles(job, model_profiles(&gpu), &FrontierOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        let before = server.job_status(job).unwrap();
        server.set_drift_threshold(0.05);

        let delta = |tf: f64, ef: f64| ProfileDelta {
            key: OpKey {
                stage: 0,
                chunk: 0,
                kind: CompKind::Forward,
            },
            time_factor: tf,
            energy_factor: ef,
        };

        // Below threshold: deltas accumulate silently, nothing re-plans.
        assert!(server
            .ingest_drift(job, &[delta(1.02, 1.01)])
            .unwrap()
            .is_none());
        assert_eq!(server.drift_replans(), 0);
        assert_eq!(server.job_status(job).unwrap().epoch, before.epoch);

        // Crossing it: one re-characterization through the normal epoch
        // machinery, serving the drift-corrected frontier afterwards.
        let ticket = server
            .ingest_drift(job, &[delta(1.10, 1.08)])
            .unwrap()
            .expect("threshold crossed");
        let d = ticket.wait().unwrap();
        assert!(d.version > before.deployment.unwrap().version);
        assert_eq!(server.drift_replans(), 1);
        let after = server.job_status(job).unwrap();
        assert!(after.epoch > before.epoch);

        // The commit absorbed the drift: replaying the same cumulative
        // factors is pending-zero and must not re-plan again.
        assert!(server
            .ingest_drift(job, &[delta(1.10, 1.08)])
            .unwrap()
            .is_none());
        assert_eq!(server.drift_replans(), 1);
    }
}
