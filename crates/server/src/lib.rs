//! Perseus server and client (paper §5, Table 2).
//!
//! The paper splits Perseus into a framework-/hardware-agnostic **server**
//! and a framework-integrated, device-specific **client**:
//!
//! * the server pre-characterizes the iteration time–energy Pareto
//!   frontier, caches it in a lookup table indexed by the straggler
//!   iteration time `T'`, and deploys Pareto-optimal energy schedules;
//! * the client profiles computations online (`profiler.begin/end`) and
//!   realizes deployed schedules by setting the GPU's SM frequency
//!   asynchronously right before each forward/backward runs
//!   (`controller.set_speed`).
//!
//! The paper's HTTP/RPC transport is replaced by in-process calls — the
//! API surface (Table 2) and the control flow (profile → characterize →
//! deploy → straggler notify → instant re-deploy) are preserved. Time is
//! the simulated clock of [`perseus_gpu::SimGpu`], advanced explicitly, so
//! the straggler `delay` semantics are exactly testable.
//!
//! A server opened with [`PerseusServer::open`] additionally journals
//! every state mutation to a checksummed write-ahead log and snapshots
//! periodically, so a crash-and-restart reconstructs bit-identical state
//! (see the `store` module).

//! At fleet scale, the [`FleetServer`] shards job state across many
//! [`PerseusServer`]s by consistent hashing, bounds in-flight work per
//! shard, rate-limits tenants, and shares one fingerprint-keyed
//! [`perseus_core::PlanCache`] across every shard so structurally
//! identical jobs skip the solver (see the `fleet` module docs).

mod client;
mod fleet;
mod replica;
mod server;
mod store;

pub use client::{
    AsyncFrequencyController, ClientConfig, ClientSession, DecorrelatedJitter, JobClient,
};
pub use fleet::{FleetConfig, FleetServer, FleetStats, TenantId};
pub use replica::{FollowerServer, PromotionReport, ReplicationStats, Replicator, DEFAULT_MAX_LAG};
pub use server::{
    ChaosStats, CharacterizeTicket, Deployment, FaultInjector, JobSpec, JobStatus, PerseusServer,
    Role, ServerError, SubmissionFault, DEFAULT_DRIFT_THRESHOLD, DEFAULT_LIVENESS_TIMEOUT,
};
pub use store::DurabilityStats;

#[cfg(test)]
mod tests;
