//! Perseus server and client (paper §5, Table 2).
//!
//! The paper splits Perseus into a framework-/hardware-agnostic **server**
//! and a framework-integrated, device-specific **client**:
//!
//! * the server pre-characterizes the iteration time–energy Pareto
//!   frontier, caches it in a lookup table indexed by the straggler
//!   iteration time `T'`, and deploys Pareto-optimal energy schedules;
//! * the client profiles computations online (`profiler.begin/end`) and
//!   realizes deployed schedules by setting the GPU's SM frequency
//!   asynchronously right before each forward/backward runs
//!   (`controller.set_speed`).
//!
//! The paper's HTTP/RPC transport is replaced by in-process calls — the
//! API surface (Table 2) and the control flow (profile → characterize →
//! deploy → straggler notify → instant re-deploy) are preserved. Time is
//! the simulated clock of [`perseus_gpu::SimGpu`], advanced explicitly, so
//! the straggler `delay` semantics are exactly testable.

mod client;
mod server;

#[allow(deprecated)]
pub use client::RetryPolicy;
pub use client::{AsyncFrequencyController, ClientConfig, ClientSession, JobClient};
pub use server::{
    ChaosStats, CharacterizeTicket, Deployment, FaultInjector, JobSpec, JobStatus, PerseusServer,
    ServerError, SubmissionFault,
};

#[cfg(test)]
mod tests;
