//! Durable server state: the journal event vocabulary, the snapshot
//! schema, and the [`Store`] handle gluing the server to `perseus-store`.
//!
//! # What gets journaled
//!
//! One [`JournalEvent`] per state *mutation*, appended inside the same
//! critical section that performs the mutation (lock order is always
//! journal → jobs map → job state), so journal order equals mutation
//! order per job. Replaying the events through the same deterministic
//! code paths therefore reconstructs bit-identical state — including the
//! monotonically increasing deployment `version` counters, which is what
//! makes post-recovery deployments byte-comparable against an
//! uninterrupted run.
//!
//! [`JournalEvent::Characterized`] is recorded at *deploy* time (after
//! the submission won epoch supersession), carrying the full profile
//! database and solver options; replay re-runs the deterministic solver.
//! Superseded, lost, and panicked characterizations never mutate the
//! frontier and are never journaled (a lost/panicked attempt journals
//! only the [`JournalEvent::Degraded`] flag flip).
//!
//! # What gets snapshotted
//!
//! A [`ServerSnapshot`] is a compacted serialization of every job's full
//! state — frontier, profiles, straggler/clock state, deployment — plus
//! the `applied_seq` watermark of the last journal record it covers.
//! Recovery loads the snapshot (falling back to journal-only replay if
//! it is corrupt) and replays only the journal tail past the watermark,
//! skipping the expensive re-characterizations the snapshot already
//! embodies. Snapshots are written atomically and followed by journal
//! compaction below the watermark.
//!
//! Volatile observability counters (degraded lookups, faults absorbed)
//! are *not* persisted — like any process-local Prometheus counter they
//! reset on restart; the durability counters in [`DurabilityStats`]
//! record that a restart happened.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use perseus_core::{EnergySchedule, FrontierOptions, ParetoFrontier, SleepPlan};
use perseus_gpu::{FreqMHz, GpuSpec, PowerStateModel};
use perseus_pipeline::{OpKey, PipelineDag};
use perseus_profiler::ProfileDb;
use perseus_store::{ByteReader, ByteWriter, Journal, Persist, StoreError};
use perseus_telemetry::Telemetry;

use crate::server::Deployment;

/// File name of the write-ahead journal inside the store directory.
pub(crate) const JOURNAL_FILE: &str = "server.journal";
/// File name of the state snapshot inside the store directory.
pub(crate) const SNAPSHOT_FILE: &str = "server.snap";
/// Default journal appends between automatic snapshots.
pub(crate) const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

/// One state-mutating server event, as recorded in the write-ahead
/// journal.
#[derive(Debug, Clone)]
pub(crate) enum JournalEvent {
    /// A job was registered.
    RegisterJob {
        /// Job name.
        name: String,
        /// The job's pipeline DAG.
        pipe: PipelineDag,
        /// The job's GPU model.
        gpu: GpuSpec,
        /// Sleep states available to the job's accelerators, if any.
        power: Option<PowerStateModel>,
    },
    /// A profile submission won epoch supersession and deployed: replay
    /// re-runs the (deterministic) characterization with these inputs.
    Characterized {
        /// Job name.
        name: String,
        /// Submission epoch that won.
        epoch: u64,
        /// The submitted profile database.
        profiles: ProfileDb<OpKey>,
        /// Solver options of the submission.
        opts: FrontierOptions,
    },
    /// A straggler notification was accepted (immediate or scheduled).
    SetStraggler {
        /// Job name.
        name: String,
        /// Accelerator id of the straggler.
        gpu_id: usize,
        /// Seconds until the notification fires (<= 0 fires immediately).
        delay_s: f64,
        /// Iteration-time inflation (1.0 = back to normal).
        degree: f64,
    },
    /// The job's simulated clock advanced.
    AdvanceTime {
        /// Job name.
        name: String,
        /// Seconds advanced.
        dt_s: f64,
    },
    /// The job's simulated clock was skewed (chaos fault).
    SkewClock {
        /// Job name.
        name: String,
        /// Skew in seconds (may be negative).
        skew_s: f64,
    },
    /// A datacenter frequency cap was applied.
    FreqCap {
        /// Job name.
        name: String,
        /// The cap.
        cap: FreqMHz,
    },
    /// The job's last characterization attempt died (lost or panicked)
    /// while a previous frontier existed; the job is serving degraded.
    Degraded {
        /// Job name.
        name: String,
    },
}

impl Persist for JournalEvent {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            JournalEvent::RegisterJob {
                name,
                pipe,
                gpu,
                power,
            } => {
                w.put_u8(0);
                w.put_str(name);
                pipe.encode(w);
                gpu.encode(w);
                power.encode(w);
            }
            JournalEvent::Characterized {
                name,
                epoch,
                profiles,
                opts,
            } => {
                w.put_u8(1);
                w.put_str(name);
                w.put_u64(*epoch);
                profiles.encode(w);
                opts.encode(w);
            }
            JournalEvent::SetStraggler {
                name,
                gpu_id,
                delay_s,
                degree,
            } => {
                w.put_u8(2);
                w.put_str(name);
                w.put_usize(*gpu_id);
                w.put_f64(*delay_s);
                w.put_f64(*degree);
            }
            JournalEvent::AdvanceTime { name, dt_s } => {
                w.put_u8(3);
                w.put_str(name);
                w.put_f64(*dt_s);
            }
            JournalEvent::SkewClock { name, skew_s } => {
                w.put_u8(4);
                w.put_str(name);
                w.put_f64(*skew_s);
            }
            JournalEvent::FreqCap { name, cap } => {
                w.put_u8(5);
                w.put_str(name);
                cap.encode(w);
            }
            JournalEvent::Degraded { name } => {
                w.put_u8(6);
                w.put_str(name);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(JournalEvent::RegisterJob {
                name: r.get_str()?,
                pipe: PipelineDag::decode(r)?,
                gpu: GpuSpec::decode(r)?,
                power: Persist::decode(r)?,
            }),
            1 => Ok(JournalEvent::Characterized {
                name: r.get_str()?,
                epoch: r.get_u64()?,
                profiles: ProfileDb::<OpKey>::decode(r)?,
                opts: FrontierOptions::decode(r)?,
            }),
            2 => Ok(JournalEvent::SetStraggler {
                name: r.get_str()?,
                gpu_id: r.get_usize()?,
                delay_s: r.get_f64()?,
                degree: r.get_f64()?,
            }),
            3 => Ok(JournalEvent::AdvanceTime {
                name: r.get_str()?,
                dt_s: r.get_f64()?,
            }),
            4 => Ok(JournalEvent::SkewClock {
                name: r.get_str()?,
                skew_s: r.get_f64()?,
            }),
            5 => Ok(JournalEvent::FreqCap {
                name: r.get_str()?,
                cap: Persist::decode(r)?,
            }),
            6 => Ok(JournalEvent::Degraded { name: r.get_str()? }),
            t => Err(StoreError::corrupt(format!("invalid JournalEvent tag {t}"))),
        }
    }
}

impl Persist for Deployment {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.version);
        w.put_f64(self.t_prime);
        w.put_f64(self.planned_time_s);
        self.schedule.encode(w);
        self.sleep.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(Deployment {
            version: r.get_u64()?,
            t_prime: r.get_f64()?,
            planned_time_s: r.get_f64()?,
            schedule: EnergySchedule::decode(r)?,
            sleep: Persist::decode(r)?,
        })
    }
}

/// Serialized state of one job inside a [`ServerSnapshot`].
#[derive(Debug, Clone)]
pub(crate) struct JobSnapshot {
    /// Job name.
    pub name: String,
    /// The job's pipeline DAG.
    pub pipe: PipelineDag,
    /// The job's GPU model.
    pub gpu: GpuSpec,
    /// Sleep states available to the job's accelerators, if any.
    pub power: Option<PowerStateModel>,
    /// Next submission epoch counter.
    pub next_epoch: u64,
    /// Epoch of the deployed frontier (0 = none).
    pub characterized_epoch: u64,
    /// The characterized frontier, if any.
    pub frontier: Option<ParetoFrontier>,
    /// Profiles behind the frontier, if any.
    pub profiles: Option<ProfileDb<OpKey>>,
    /// One sleep plan per frontier point, for Kareus jobs.
    pub sleep: Option<Vec<SleepPlan>>,
    /// Degradation flag.
    pub degraded: bool,
    /// Active stragglers, sorted by accelerator id for deterministic
    /// bytes.
    pub stragglers: Vec<(usize, f64)>,
    /// Pending straggler notifications as `(fire_at, gpu_id, degree)`, in
    /// insertion order.
    pub pending: Vec<(f64, usize, f64)>,
    /// Simulated clock, seconds.
    pub clock_s: f64,
    /// Deployment version counter.
    pub version: u64,
    /// Last deployment pushed to clients.
    pub deployed: Option<Deployment>,
}

impl Persist for JobSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        self.pipe.encode(w);
        self.gpu.encode(w);
        self.power.encode(w);
        w.put_u64(self.next_epoch);
        w.put_u64(self.characterized_epoch);
        self.frontier.encode(w);
        self.profiles.encode(w);
        self.sleep.encode(w);
        w.put_bool(self.degraded);
        self.stragglers.encode(w);
        self.pending.encode(w);
        w.put_f64(self.clock_s);
        w.put_u64(self.version);
        self.deployed.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(JobSnapshot {
            name: r.get_str()?,
            pipe: PipelineDag::decode(r)?,
            gpu: GpuSpec::decode(r)?,
            power: Persist::decode(r)?,
            next_epoch: r.get_u64()?,
            characterized_epoch: r.get_u64()?,
            frontier: Persist::decode(r)?,
            profiles: Persist::decode(r)?,
            sleep: Persist::decode(r)?,
            degraded: r.get_bool()?,
            stragglers: Persist::decode(r)?,
            pending: Persist::decode(r)?,
            clock_s: r.get_f64()?,
            version: r.get_u64()?,
            deployed: Persist::decode(r)?,
        })
    }
}

/// A full server snapshot: every job's state plus the journal watermark
/// it covers.
#[derive(Debug, Clone)]
pub(crate) struct ServerSnapshot {
    /// Journal records with `seq <= applied_seq` are reflected in this
    /// snapshot and skipped during replay.
    pub applied_seq: u64,
    /// Per-job state, sorted by name for deterministic bytes.
    pub jobs: Vec<JobSnapshot>,
}

impl Persist for ServerSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.applied_seq);
        self.jobs.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(ServerSnapshot {
            applied_seq: r.get_u64()?,
            jobs: Persist::decode(r)?,
        })
    }
}

/// Durability counters of a durable server, surfaced in
/// [`crate::JobStatus`] and as telemetry
/// (`perseus_store_journal_appends_total`,
/// `perseus_store_recoveries_total`,
/// `perseus_store_truncated_records_total`). All zero for a server
/// without a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Journal records appended since this process opened the store.
    pub journal_appends: u64,
    /// Recoveries performed (1 if this server was opened over existing
    /// state, 0 for a fresh directory or a non-durable server).
    pub recoveries: u64,
    /// Unreadable journal tail segments truncated at open.
    pub truncated_records: u64,
    /// Bytes discarded by open-time journal truncation.
    pub truncated_bytes: u64,
    /// Journal events replayed during recovery.
    pub replayed_events: u64,
    /// Characterizations re-run during replay (journal tail past the
    /// snapshot). Each one is solver work a fresher snapshot would have
    /// saved.
    pub recharacterizations_replayed: u64,
    /// Characterizations restored directly from the snapshot — solver
    /// work recovery did *not* redo.
    pub recharacterizations_avoided: u64,
    /// Snapshots written by this process.
    pub snapshots_written: u64,
    /// 1 if recovery found the snapshot corrupt and fell back to
    /// journal-only replay.
    pub corrupt_snapshots: u64,
}

/// The server's handle on its durable backing: the open journal plus
/// snapshot bookkeeping. Lock order is journal → jobs map → job state;
/// every mutating server path acquires the journal mutex *first*, so a
/// snapshot (which holds the journal lock throughout) observes a frozen,
/// consistent state.
pub(crate) struct Store {
    /// The write-ahead journal. Guards all mutating critical sections.
    pub journal: Mutex<Journal>,
    /// Path of the snapshot file.
    pub snapshot_path: PathBuf,
    /// Appends between automatic snapshots.
    pub snapshot_every: AtomicU64,
    /// Appends since the last snapshot (triggers auto-snapshot).
    pub appends_since_snapshot: AtomicU64,
    /// Counters: see [`DurabilityStats`].
    pub journal_appends: AtomicU64,
    pub recoveries: AtomicU64,
    pub truncated_records: AtomicU64,
    pub truncated_bytes: AtomicU64,
    pub replayed_events: AtomicU64,
    pub recharacterizations_replayed: AtomicU64,
    pub recharacterizations_avoided: AtomicU64,
    pub snapshots_written: AtomicU64,
    pub corrupt_snapshots: AtomicU64,
    telemetry: Telemetry,
}

impl Store {
    /// Wraps an opened journal.
    pub fn new(journal: Journal, snapshot_path: PathBuf, telemetry: Telemetry) -> Store {
        let stats = journal.stats();
        let store = Store {
            journal: Mutex::new(journal),
            snapshot_path,
            snapshot_every: AtomicU64::new(DEFAULT_SNAPSHOT_EVERY),
            appends_since_snapshot: AtomicU64::new(0),
            journal_appends: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            truncated_records: AtomicU64::new(stats.truncated_records),
            truncated_bytes: AtomicU64::new(stats.truncated_bytes),
            replayed_events: AtomicU64::new(0),
            recharacterizations_replayed: AtomicU64::new(0),
            recharacterizations_avoided: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            corrupt_snapshots: AtomicU64::new(0),
            telemetry,
        };
        if stats.truncated_records > 0 && store.telemetry.is_enabled() {
            store
                .telemetry
                .counter("perseus_store_truncated_records_total")
                .add(stats.truncated_records);
        }
        store
    }

    /// Appends an already-encoded event to the journal the caller holds
    /// locked. Append failures are contained: the mutation already
    /// happened and must not be rolled back, so an unwritable journal
    /// degrades durability (the event will be missing after a crash) but
    /// never takes down the serving path.
    pub fn append_locked(&self, journal: &mut Journal, payload: &[u8]) {
        if journal.append(payload).is_ok() {
            self.journal_appends.fetch_add(1, Ordering::Relaxed);
            self.appends_since_snapshot.fetch_add(1, Ordering::Relaxed);
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter("perseus_store_journal_appends_total")
                    .inc();
            }
        }
    }

    /// Records that a recovery ran (existing state was found and
    /// restored).
    pub fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter("perseus_store_recoveries_total")
                .inc();
        }
    }

    /// Current durability counters.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            truncated_records: self.truncated_records.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
            replayed_events: self.replayed_events.load(Ordering::Relaxed),
            recharacterizations_replayed: self.recharacterizations_replayed.load(Ordering::Relaxed),
            recharacterizations_avoided: self.recharacterizations_avoided.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            corrupt_snapshots: self.corrupt_snapshots.load(Ordering::Relaxed),
        }
    }
}
