//! The Perseus server: frontier characterization, schedule cache, and the
//! straggler notification state machine (§3.2 workflow steps ②–⑤).
//!
//! The server is a concurrent planning service. Characterization (the
//! expensive part — Algorithm 1 over the job's DAG) runs on a worker
//! pool; [`PerseusServer::submit_profiles`] returns a
//! [`CharacterizeTicket`] immediately instead of blocking the caller.
//! Straggler notifications and deployment lookups are answered from the
//! job's last cached frontier without waiting on in-flight
//! characterizations, exactly the paper's observation that reacting to a
//! straggler is a frontier *lookup*, not a re-plan. When a
//! characterization completes it atomically swaps the job's frontier and
//! re-deploys under the job's write lock, so readers never observe a
//! half-built frontier.
//!
//! Each job owns a [`FrontierSolver`], so re-characterizations (fresh
//! profiles mid-training) reuse the job's edge-centric DAG and
//! topological order instead of rebuilding them.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use perseus_core::{
    CoreError, EnergySchedule, FrontierOptions, FrontierSolver, ParetoFrontier, PlanContext,
};
use perseus_gpu::GpuSpec;
use perseus_pipeline::{OpKey, PipelineDag};
use perseus_profiler::ProfileDb;

/// A training job registration: the computation DAG plus the GPU model the
/// pipeline runs on ("a training job is primarily specified by its
/// computation DAG", §3.2).
#[derive(Debug)]
pub struct JobSpec {
    /// Unique job name.
    pub name: String,
    /// The pipeline's computation DAG for one iteration.
    pub pipe: PipelineDag,
    /// GPU model of the pipeline's accelerators.
    pub gpu: GpuSpec,
}

/// Errors from server operations.
#[derive(Debug)]
pub enum ServerError {
    /// No job registered under this name.
    UnknownJob(String),
    /// A job with this name already exists.
    DuplicateJob(String),
    /// The job has not been characterized yet (no profiles submitted).
    NotCharacterized(String),
    /// Frontier characterization failed.
    Core(CoreError),
    /// Straggler degree must be at least 1.0 (1.0 = back to normal).
    InvalidDegree(f64),
    /// A newer profile submission finished first; this characterization
    /// was discarded without deploying.
    Superseded(String),
    /// The server shut down before the characterization finished.
    Shutdown(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownJob(n) => write!(f, "unknown job {n:?}"),
            ServerError::DuplicateJob(n) => write!(f, "job {n:?} already registered"),
            ServerError::NotCharacterized(n) => write!(f, "job {n:?} has no frontier yet"),
            ServerError::Core(e) => write!(f, "characterization failed: {e}"),
            ServerError::InvalidDegree(d) => write!(f, "invalid straggler degree {d}"),
            ServerError::Superseded(n) => {
                write!(
                    f,
                    "characterization for job {n:?} superseded by a newer submission"
                )
            }
            ServerError::Shutdown(n) => {
                write!(f, "server shut down before characterizing job {n:?}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

/// A schedule deployment pushed to the clients.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Monotonic version; clients apply the highest version they have seen.
    pub version: u64,
    /// The straggler iteration time this deployment answers (`T_min` when
    /// there is no straggler).
    pub t_prime: f64,
    /// Planned iteration time of the deployed frontier point.
    pub planned_time_s: f64,
    /// The deployed schedule.
    pub schedule: EnergySchedule,
}

/// Handle for an in-flight characterization; redeemable for the
/// deployment it produced.
///
/// Dropping the ticket is fine — the characterization still completes and
/// deploys; only the notification is discarded.
#[derive(Debug)]
pub struct CharacterizeTicket {
    job: String,
    rx: Receiver<Result<Deployment, ServerError>>,
}

impl CharacterizeTicket {
    /// Blocks until the characterization finishes and returns the
    /// deployment it issued.
    ///
    /// # Errors
    ///
    /// Characterization failures, [`ServerError::Superseded`] if a newer
    /// submission won, or [`ServerError::Shutdown`] if the server was
    /// dropped first.
    pub fn wait(self) -> Result<Deployment, ServerError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServerError::Shutdown(self.job)),
        }
    }

    /// The result, if the characterization has already finished.
    pub fn try_wait(&self) -> Option<Result<Deployment, ServerError>> {
        self.rx.try_recv().ok()
    }

    /// The job this ticket belongs to.
    pub fn job(&self) -> &str {
        &self.job
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingStraggler {
    fire_at: f64,
    gpu_id: usize,
    degree: f64,
}

/// Mutable per-job state, guarded by the job's `RwLock`.
struct JobMut {
    frontier: Option<Arc<ParetoFrontier>>,
    /// Epoch of the submission that produced `frontier` (0 = none yet).
    characterized_epoch: u64,
    /// Active straggler degree per accelerator id.
    stragglers: HashMap<usize, f64>,
    pending: Vec<PendingStraggler>,
    clock_s: f64,
    version: u64,
    deployed: Option<Deployment>,
}

/// One registered job: immutable identity plus lock-guarded state. Shared
/// between the server map and in-flight characterization tasks.
struct Job {
    name: String,
    pipe: PipelineDag,
    gpu: GpuSpec,
    /// Reusable characterization artifacts for this job's pipeline.
    solver: FrontierSolver,
    /// Monotonic submission counter; newer submissions supersede older
    /// ones even if they finish out of order.
    next_epoch: AtomicU64,
    state: RwLock<JobMut>,
}

impl Job {
    /// Effective straggler iteration time given the active stragglers:
    /// `T' = T_min × max(degree)`.
    fn effective_t_prime(state: &JobMut) -> f64 {
        let frontier = state
            .frontier
            .as_ref()
            .expect("deploy only after characterization");
        let worst = state.stragglers.values().copied().fold(1.0, f64::max);
        frontier.t_min() * worst
    }

    /// Issues a new deployment from the cached frontier. Caller holds the
    /// state write lock; the frontier must be present.
    fn deploy_locked(state: &mut JobMut) -> Deployment {
        let t_prime = Self::effective_t_prime(state);
        let frontier = state.frontier.as_ref().expect("characterized");
        let point = frontier.lookup(t_prime);
        state.version += 1;
        let deployment = Deployment {
            version: state.version,
            t_prime,
            planned_time_s: point.planned_time_s,
            schedule: point.schedule.clone(),
        };
        state.deployed = Some(deployment.clone());
        deployment
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads draining a task channel. Dropping the
/// pool closes the channel and joins the workers.
struct WorkerPool {
    tx: Option<Sender<Task>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(n_workers: usize) -> WorkerPool {
        let (tx, rx) = unbounded::<Task>();
        let workers = (0..n_workers.max(1))
            .map(|i| {
                let rx: Receiver<Task> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("perseus-plan-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn planning worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    fn submit(&self, task: Task) {
        let tx = self.tx.as_ref().expect("pool alive while server exists");
        // A send failure means the workers are gone (server shutting
        // down); dropping the task resolves its ticket to `Shutdown`.
        drop(tx.send(task));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel so idle workers exit, then join them.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The Perseus server: one per training cluster, managing any number of
/// jobs. `Send + Sync` — share it behind an `Arc` and call it from any
/// thread.
pub struct PerseusServer {
    jobs: RwLock<HashMap<String, Arc<Job>>>,
    pool: WorkerPool,
}

impl Default for PerseusServer {
    fn default() -> PerseusServer {
        PerseusServer::new()
    }
}

impl PerseusServer {
    /// Creates a server with one planning worker per available core
    /// (capped at 4).
    pub fn new() -> PerseusServer {
        let n = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(4);
        PerseusServer::with_workers(n)
    }

    /// Creates a server with an explicit planning-worker count (at least
    /// one).
    pub fn with_workers(n_workers: usize) -> PerseusServer {
        PerseusServer {
            jobs: RwLock::new(HashMap::new()),
            pool: WorkerPool::new(n_workers),
        }
    }

    /// Registers a job (§3.2 step ⓪) and builds its reusable
    /// characterization artifacts.
    ///
    /// # Errors
    ///
    /// [`ServerError::DuplicateJob`] if the name is taken.
    pub fn register_job(&self, spec: JobSpec) -> Result<(), ServerError> {
        let solver = FrontierSolver::new(&spec.pipe);
        let job = Arc::new(Job {
            name: spec.name.clone(),
            pipe: spec.pipe,
            gpu: spec.gpu,
            solver,
            next_epoch: AtomicU64::new(0),
            state: RwLock::new(JobMut {
                frontier: None,
                characterized_epoch: 0,
                stragglers: HashMap::new(),
                pending: Vec::new(),
                clock_s: 0.0,
                version: 0,
                deployed: None,
            }),
        });
        let mut jobs = self.jobs.write();
        if jobs.contains_key(&spec.name) {
            return Err(ServerError::DuplicateJob(spec.name));
        }
        jobs.insert(spec.name, job);
        Ok(())
    }

    fn job(&self, name: &str) -> Result<Arc<Job>, ServerError> {
        self.jobs
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| ServerError::UnknownJob(name.to_string()))
    }

    /// Receives the client's profiling results and schedules frontier
    /// characterization (step ②) on the worker pool. Returns a ticket
    /// immediately; when the characterization completes it atomically
    /// swaps the job's frontier, deploys the schedule answering the
    /// current straggler state (step ③), and resolves the ticket with
    /// that deployment.
    ///
    /// Concurrent submissions for the same job are ordered by submission
    /// epoch: a submission that finishes after a newer one has already
    /// deployed resolves to [`ServerError::Superseded`] and changes
    /// nothing.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for unregistered names; failures of
    /// the characterization itself are delivered through the ticket.
    pub fn submit_profiles(
        &self,
        name: &str,
        profiles: ProfileDb<OpKey>,
        opts: &FrontierOptions,
    ) -> Result<CharacterizeTicket, ServerError> {
        let job = self.job(name)?;
        // Epoch 1 is the first submission; `characterized_epoch` 0 means
        // "nothing deployed yet", so every first submission wins.
        let epoch = job.next_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let opts = opts.clone();
        let (tx, rx) = unbounded();
        self.pool.submit(Box::new(move || {
            let result = Self::characterize_task(&job, epoch, profiles, &opts);
            let _ = tx.send(result); // receiver may have dropped the ticket
        }));
        Ok(CharacterizeTicket {
            job: name.to_string(),
            rx,
        })
    }

    /// Runs on a worker thread: characterize against the job's cached
    /// solver artifacts, then swap + deploy under the write lock.
    fn characterize_task(
        job: &Job,
        epoch: u64,
        profiles: ProfileDb<OpKey>,
        opts: &FrontierOptions,
    ) -> Result<Deployment, ServerError> {
        // The expensive part runs without holding any job lock: straggler
        // notifications keep being served from the previous frontier.
        let frontier = {
            let ctx = PlanContext::new(&job.pipe, &job.gpu, profiles)?;
            job.solver.characterize(&ctx, opts)?
        };
        let mut state = job.state.write();
        if state.characterized_epoch > epoch {
            return Err(ServerError::Superseded(job.name.clone()));
        }
        state.characterized_epoch = epoch;
        state.frontier = Some(Arc::new(frontier));
        Ok(Job::deploy_locked(&mut state))
    }

    /// Table 2 `server.set_straggler(id, delay, degree)`: a straggler on
    /// accelerator `gpu_id` is anticipated `delay_s` seconds from now with
    /// iteration-time inflation `degree`. `degree == 1.0` announces the
    /// straggler's return to normal. Takes effect when the simulated clock
    /// passes the deadline (see [`PerseusServer::advance_time`]); a zero
    /// delay applies immediately and returns the new deployment.
    ///
    /// Served entirely from the job's cached frontier — never blocks on an
    /// in-flight characterization.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidDegree`] for degrees below 1.0,
    /// [`ServerError::NotCharacterized`] before profiles are submitted.
    pub fn set_straggler(
        &self,
        name: &str,
        gpu_id: usize,
        delay_s: f64,
        degree: f64,
    ) -> Result<Option<Deployment>, ServerError> {
        if !(degree >= 1.0 && degree.is_finite()) {
            return Err(ServerError::InvalidDegree(degree));
        }
        let job = self.job(name)?;
        let mut state = job.state.write();
        if state.frontier.is_none() {
            return Err(ServerError::NotCharacterized(name.to_string()));
        }
        if delay_s <= 0.0 {
            if degree > 1.0 {
                state.stragglers.insert(gpu_id, degree);
            } else {
                state.stragglers.remove(&gpu_id);
            }
            return Ok(Some(Job::deploy_locked(&mut state)));
        }
        let fire_at = state.clock_s + delay_s;
        state.pending.push(PendingStraggler {
            fire_at,
            gpu_id,
            degree,
        });
        Ok(None)
    }

    /// Advances the job's simulated clock, firing any pending straggler
    /// notifications whose deadline passed. Returns the deployments issued
    /// (at most one per distinct firing instant, in order).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for unregistered names.
    pub fn advance_time(&self, name: &str, dt_s: f64) -> Result<Vec<Deployment>, ServerError> {
        let job = self.job(name)?;
        let mut state = job.state.write();
        state.clock_s += dt_s.max(0.0);
        let now = state.clock_s;
        let mut due: Vec<PendingStraggler> = state
            .pending
            .iter()
            .copied()
            .filter(|p| p.fire_at <= now)
            .collect();
        state.pending.retain(|p| p.fire_at > now);
        due.sort_by(|a, b| a.fire_at.total_cmp(&b.fire_at));
        let mut deployments = Vec::new();
        for p in due {
            if p.degree > 1.0 {
                state.stragglers.insert(p.gpu_id, p.degree);
            } else {
                state.stragglers.remove(&p.gpu_id);
            }
            if state.frontier.is_some() {
                deployments.push(Job::deploy_locked(&mut state));
            }
        }
        Ok(deployments)
    }

    /// The schedule currently deployed to the job's clients.
    ///
    /// # Errors
    ///
    /// [`ServerError::NotCharacterized`] before the first deployment.
    pub fn current_deployment(&self, name: &str) -> Result<Deployment, ServerError> {
        self.job(name)?
            .state
            .read()
            .deployed
            .clone()
            .ok_or_else(|| ServerError::NotCharacterized(name.to_string()))
    }

    /// The cached frontier for a job, if characterized.
    pub fn frontier(&self, name: &str) -> Option<Arc<ParetoFrontier>> {
        self.jobs
            .read()
            .get(name)
            .and_then(|j| j.state.read().frontier.clone())
    }

    /// Characterizations run for `name`, and how many of them reused the
    /// job's cached solver artifacts (every run after the first).
    pub fn solver_stats(&self, name: &str) -> Option<(usize, usize)> {
        self.jobs
            .read()
            .get(name)
            .map(|j| (j.solver.runs(), j.solver.artifact_reuses()))
    }

    /// Registered job names.
    pub fn job_names(&self) -> Vec<String> {
        self.jobs.read().keys().cloned().collect()
    }
}
