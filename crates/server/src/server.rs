//! The Perseus server: frontier characterization, schedule cache, and the
//! straggler notification state machine (§3.2 workflow steps ②–⑤).
//!
//! The server is a concurrent planning service. Characterization (the
//! expensive part — Algorithm 1 over the job's DAG) runs on a worker
//! pool; [`PerseusServer::submit_profiles`] returns a
//! [`CharacterizeTicket`] immediately instead of blocking the caller.
//! Straggler notifications and deployment lookups are answered from the
//! job's last cached frontier without waiting on in-flight
//! characterizations, exactly the paper's observation that reacting to a
//! straggler is a frontier *lookup*, not a re-plan. When a
//! characterization completes it atomically swaps the job's frontier and
//! re-deploys under the job's write lock, so readers never observe a
//! half-built frontier.
//!
//! Each job owns a [`FrontierSolver`], so re-characterizations (fresh
//! profiles mid-training) reuse the job's edge-centric DAG and
//! topological order instead of rebuilding them.
//!
//! # Durability
//!
//! A server opened with [`PerseusServer::open`] journals every
//! state-mutating event to a checksummed write-ahead log and periodically
//! compacts it into a snapshot (see the [`crate::store`] module docs).
//! Reopening the same directory replays snapshot + journal tail and
//! reconstructs bit-identical state — [`PerseusServer::state_fingerprint`]
//! of a crashed-and-recovered server equals that of an uninterrupted one,
//! and so do the deployments it issues. Servers built with
//! [`PerseusServer::new`]/[`PerseusServer::with_workers`] are purely
//! in-memory and skip all of this.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::RwLock;
use perseus_core::{
    insert_sleep, CoreError, EnergySchedule, FrontierOptions, FrontierSolver, ParetoFrontier,
    PlanCache, PlanContext, PlanFingerprint, SleepPlan, SolverStats,
};
use perseus_gpu::{FreqMHz, GpuSpec, PowerStateModel};
use perseus_pipeline::{OpKey, PipelineDag};
use perseus_profiler::{scale_profile, ProfileDb, ProfileDelta};
use perseus_store::{load_snapshot, write_snapshot, Journal, Persist, Record, StoreError};
use perseus_telemetry::{
    span, Alert, Endpoints, FlightRecorder, FlightSnapshot, FlightSummary, IterationSample,
    ObsPipeline, SloStatus, Telemetry, TelemetryServer,
};

use crate::replica::ReplicationStats;
use crate::store::{
    DurabilityStats, JobSnapshot, JournalEvent, ServerSnapshot, Store, JOURNAL_FILE, SNAPSHOT_FILE,
};

/// Ring capacity of the server's flight recorder: enough to hold the
/// recent history of any emulated training segment while staying a few
/// tens of kilobytes.
const FLIGHT_CAPACITY: usize = 256;

/// How long [`CharacterizeTicket::wait`] is willing to sit on a silent
/// channel before declaring the worker lost. Long enough for any real
/// characterization (they complete in milliseconds; injected delays are
/// bounded well below this), short enough that a wedged or dead worker
/// surfaces as a typed error instead of a hung client.
pub const DEFAULT_LIVENESS_TIMEOUT: Duration = Duration::from_secs(60);

/// Default drift-watcher threshold: a job re-characterizes once any
/// computation's pending time or energy factor moves 5% from where the
/// last plan left it (see [`PerseusServer::ingest_drift`]).
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.05;

/// A training job registration: the computation DAG plus the GPU model the
/// pipeline runs on ("a training job is primarily specified by its
/// computation DAG", §3.2).
#[derive(Debug)]
pub struct JobSpec {
    /// Unique job name.
    pub name: String,
    /// The pipeline's computation DAG for one iteration.
    pub pipe: PipelineDag,
    /// GPU model of the pipeline's accelerators.
    pub gpu: GpuSpec,
    /// Sleep states the accelerators may enter during pipeline bubbles.
    /// `Some` makes this a Kareus job: every characterization also derives
    /// per-point [`SleepPlan`]s, and deployments carry the sleep schedule
    /// for the deployed frontier point. `None` plans frequencies only
    /// (classic Perseus), bit-identical to servers predating power states.
    pub power_states: Option<PowerStateModel>,
}

/// Errors from server operations.
#[derive(Debug)]
pub enum ServerError {
    /// No job registered under this name.
    UnknownJob(String),
    /// A job with this name already exists.
    DuplicateJob(String),
    /// The job has not been characterized yet (no profiles submitted).
    NotCharacterized(String),
    /// Frontier characterization failed.
    Core(CoreError),
    /// Straggler degree must be at least 1.0 (1.0 = back to normal).
    InvalidDegree(f64),
    /// A newer profile submission finished first; this characterization
    /// was discarded without deploying.
    Superseded(String),
    /// The server shut down before the characterization finished.
    Shutdown(String),
    /// The submission was lost in flight (injected fault or transport
    /// drop); the client should retry.
    SubmissionLost(String),
    /// The characterization worker panicked; the job keeps serving its
    /// last deployed frontier and the client should resubmit.
    CharacterizationPanicked(String),
    /// A client gave up after exhausting its retry budget.
    RetriesExhausted(String),
    /// The characterization worker went silent past the liveness timeout
    /// ([`DEFAULT_LIVENESS_TIMEOUT`] by default): neither a result nor a
    /// channel close arrived. The submission may still land later;
    /// resubmitting is safe because newer epochs supersede older ones.
    WorkerLost(String),
    /// A submitted profile was structurally invalid (empty, NaN or
    /// non-positive time/energy, or a non-monotone frequency table) and
    /// was rejected at the API boundary before any characterization ran.
    InvalidProfile {
        /// The job the submission targeted.
        job: String,
        /// What was wrong with the profile.
        reason: String,
    },
    /// The durable backing store failed (journal or snapshot I/O,
    /// unrecoverable corruption).
    Store(StoreError),
    /// Admission control rejected the submission: the server already has
    /// its configured maximum of characterizations in flight (see
    /// [`PerseusServer::set_max_inflight`]). Backpressure, not failure —
    /// the client should back off and retry ([`crate::JobClient`] does).
    Overloaded {
        /// The job the submission targeted.
        job: String,
        /// Characterizations in flight when the submission arrived.
        inflight: u64,
        /// The configured in-flight bound.
        limit: u64,
    },
    /// A per-tenant rate limit rejected the call: the tenant's token
    /// bucket is empty (see [`crate::FleetServer`]). The tenant must wait
    /// for refill; retrying immediately cannot succeed, so clients do
    /// not retry this.
    QuotaExhausted {
        /// The tenant whose bucket ran dry.
        tenant: String,
    },
    /// The call reached a replication follower, which serves reads only.
    /// `hint` names where the leader was last known to be (empty when
    /// unknown); [`crate::JobClient`] treats this as retryable and
    /// re-resolves its target, so callers ride through failover.
    NotLeader {
        /// Last known leader location, or empty.
        hint: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownJob(n) => write!(f, "unknown job {n:?}"),
            ServerError::DuplicateJob(n) => write!(f, "job {n:?} already registered"),
            ServerError::NotCharacterized(n) => write!(f, "job {n:?} has no frontier yet"),
            ServerError::Core(e) => write!(f, "characterization failed: {e}"),
            ServerError::InvalidDegree(d) => write!(f, "invalid straggler degree {d}"),
            ServerError::Superseded(n) => {
                write!(
                    f,
                    "characterization for job {n:?} superseded by a newer submission"
                )
            }
            ServerError::Shutdown(n) => {
                write!(f, "server shut down before characterizing job {n:?}")
            }
            ServerError::SubmissionLost(n) => {
                write!(f, "profile submission for job {n:?} was lost in flight")
            }
            ServerError::CharacterizationPanicked(n) => {
                write!(f, "characterization worker for job {n:?} panicked")
            }
            ServerError::RetriesExhausted(n) => {
                write!(
                    f,
                    "retry budget exhausted talking to the server about job {n:?}"
                )
            }
            ServerError::WorkerLost(n) => {
                write!(
                    f,
                    "characterization worker for job {n:?} went silent past the liveness timeout"
                )
            }
            ServerError::InvalidProfile { job, reason } => {
                write!(f, "invalid profile submitted for job {job:?}: {reason}")
            }
            ServerError::Store(e) => write!(f, "durable store failed: {e}"),
            ServerError::Overloaded {
                job,
                inflight,
                limit,
            } => {
                write!(
                    f,
                    "submission for job {job:?} rejected: {inflight} characterizations \
                     in flight (limit {limit})"
                )
            }
            ServerError::QuotaExhausted { tenant } => {
                write!(f, "tenant {tenant:?} exhausted its rate-limit quota")
            }
            ServerError::NotLeader { hint } => {
                if hint.is_empty() {
                    write!(f, "this server is a replication follower, not the leader")
                } else {
                    write!(
                        f,
                        "this server is a replication follower; the leader is at {hint:?}"
                    )
                }
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Core(e) => Some(e),
            ServerError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        ServerError::Store(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

impl From<ServerError> for perseus_core::Error {
    fn from(e: ServerError) -> perseus_core::Error {
        perseus_core::Error::subsystem("server", e)
    }
}

/// A schedule deployment pushed to the clients.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Monotonic version; clients apply the highest version they have seen.
    pub version: u64,
    /// The straggler iteration time this deployment answers (`T_min` when
    /// there is no straggler).
    pub t_prime: f64,
    /// Planned iteration time of the deployed frontier point.
    pub planned_time_s: f64,
    /// The deployed schedule.
    pub schedule: EnergySchedule,
    /// The sleep schedule for the deployed point, when the job was
    /// registered with power states ([`JobSpec::power_states`]); `None`
    /// for frequency-only jobs.
    pub sleep: Option<SleepPlan>,
}

/// A fault to apply to one profile submission, decided by a
/// [`FaultInjector`] as the characterization task starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmissionFault {
    /// No fault: characterize and deploy normally.
    None,
    /// The submission is lost: the ticket resolves to
    /// [`ServerError::SubmissionLost`] and nothing is characterized.
    Drop,
    /// The characterization stalls for this long (real time) before
    /// running; clients with shorter timeouts will retry, and epoch
    /// supersession discards whichever copy loses the race.
    Delay(Duration),
    /// The characterization worker panics mid-task. The panic is
    /// contained: the worker survives, the job keeps its last frontier,
    /// and the ticket resolves to
    /// [`ServerError::CharacterizationPanicked`].
    Panic,
}

/// Decides which faults hit the server's internals. Implemented by the
/// chaos layer; production servers have none installed and take the
/// fault-free path unconditionally.
pub trait FaultInjector: Send + Sync {
    /// Consulted once per characterization task, before it runs.
    fn submission_fault(&self, job: &str, epoch: u64) -> SubmissionFault;
}

/// Handle for an in-flight characterization; redeemable for the
/// deployment it produced.
///
/// Dropping the ticket is fine — the characterization still completes and
/// deploys; only the notification is discarded.
#[derive(Debug)]
pub struct CharacterizeTicket {
    job: String,
    rx: Receiver<Result<Deployment, ServerError>>,
}

impl CharacterizeTicket {
    /// Blocks until the characterization finishes and returns the
    /// deployment it issued. Never blocks unboundedly: if the worker goes
    /// silent for [`DEFAULT_LIVENESS_TIMEOUT`] (neither a result nor a
    /// channel close — a wedged or dead worker), this resolves to
    /// [`ServerError::WorkerLost`] instead of hanging the client forever.
    /// Use [`CharacterizeTicket::wait_live`] to pick a different bound.
    ///
    /// # Errors
    ///
    /// Characterization failures, [`ServerError::Superseded`] if a newer
    /// submission won, [`ServerError::Shutdown`] if the server was
    /// dropped first, or [`ServerError::WorkerLost`] on liveness timeout.
    pub fn wait(self) -> Result<Deployment, ServerError> {
        self.wait_live(DEFAULT_LIVENESS_TIMEOUT)
    }

    /// [`CharacterizeTicket::wait`] with an explicit liveness bound.
    ///
    /// # Errors
    ///
    /// As [`CharacterizeTicket::wait`]; [`ServerError::WorkerLost`] fires
    /// after `liveness` of silence.
    pub fn wait_live(self, liveness: Duration) -> Result<Deployment, ServerError> {
        match self.rx.recv_timeout(liveness) {
            Ok(result) => result,
            Err(RecvTimeoutError::Disconnected) => Err(ServerError::Shutdown(self.job)),
            Err(RecvTimeoutError::Timeout) => Err(ServerError::WorkerLost(self.job)),
        }
    }

    /// The result, if the characterization has already finished.
    pub fn try_wait(&self) -> Option<Result<Deployment, ServerError>> {
        self.rx.try_recv().ok()
    }

    /// Blocks until the characterization finishes or `timeout` elapses.
    /// `None` means the timeout hit — the submission may still land
    /// later; resubmitting is safe because newer epochs supersede older
    /// ones.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Deployment, ServerError>> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.rx.try_recv() {
                Ok(result) => return Some(result),
                Err(TryRecvError::Disconnected) => {
                    return Some(Err(ServerError::Shutdown(self.job.clone())))
                }
                Err(TryRecvError::Empty) => {
                    if Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
    }

    /// The job this ticket belongs to.
    pub fn job(&self) -> &str {
        &self.job
    }
}

/// Which side of the replication pair a server is on. Leaders accept
/// mutations and ship their journal; followers apply shipped records and
/// answer every mutation with [`ServerError::NotLeader`] until promoted
/// (see [`crate::FollowerServer::promote`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations; the replication source.
    Leader,
    /// Read-only replica applying the leader's shipped journal.
    Follower,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Leader => write!(f, "leader"),
            Role::Follower => write!(f, "follower"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingStraggler {
    fire_at: f64,
    gpu_id: usize,
    degree: f64,
}

/// Degradation and fault counters for one job, surfaced next to the
/// solver's `runs`/`artifact_reuses` stats. A production dashboard would
/// alert on `degraded_lookups` climbing: it means clients are being
/// answered from a frontier older than their latest profile submission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frontier lookups served while the job was degraded (last
    /// characterization lost or panicked; answers come from the previous
    /// deployed frontier).
    pub degraded_lookups: u64,
    /// Faults the server absorbed for this job: lost/delayed/panicked
    /// submissions, frequency caps, clock skews.
    pub faults_injected: u64,
}

/// Everything the server knows about one job, in one read: the unified
/// replacement for the legacy `current_deployment` / `solver_stats` /
/// `chaos_stats` / `is_degraded` getter quartet.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The schedule currently deployed to the job's clients (`None` before
    /// the first deployment).
    pub deployment: Option<Deployment>,
    /// Characterization reuse counters of the job's solver.
    pub solver: SolverStats,
    /// Degradation and fault counters.
    pub chaos: ChaosStats,
    /// Whether the job is currently degraded: its last characterization
    /// attempt was lost or panicked, so lookups answer from the previous
    /// deployed frontier until a fresh submission lands.
    pub degraded: bool,
    /// Submission epoch of the deployed frontier (0 = none yet).
    pub epoch: u64,
    /// Summary of the server's flight recorder (shared across jobs).
    pub flight: FlightSummary,
    /// Durability counters of the server's backing store (shared across
    /// jobs; all zero for an in-memory server).
    pub durability: DurabilityStats,
    /// Per-objective SLO health with error-budget accounting, from the
    /// server's observability pipeline (shared across jobs; empty until
    /// iterations are observed — budgets only burn on evaluated ticks).
    pub slo: Vec<SloStatus>,
    /// Whether the answering server is the leader or a replication
    /// follower (shared across jobs).
    pub role: Role,
    /// Records shipped from the leader but not yet applied here; always 0
    /// on a leader (shared across jobs).
    pub replication_lag: u64,
}

/// How a replayed journal event was applied — drives the
/// `recharacterizations_replayed` vs `recharacterizations_avoided`
/// durability counters.
pub(crate) enum ReplayOutcome {
    /// A `Characterized` event re-ran the solver (or was deduplicated /
    /// unapplied — either way, no cache lookup answered it).
    CharacterizedSolved,
    /// A `Characterized` event was answered from the attached plan cache
    /// without running the solver.
    CharacterizedCached,
    /// Any other event.
    Other,
}

/// An admission slot for one in-flight characterization. Decrements the
/// server's in-flight counter on drop, so a task that is dropped unrun
/// (worker pool shutting down) releases its slot exactly like one that
/// completed.
struct InflightPermit {
    counter: Arc<AtomicU64>,
}

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Drift-watcher bookkeeping for one computation: the cumulative factors
/// the last re-plan already absorbed (`applied`) and the most recently
/// ingested ones (`latest`). The watcher trips on the *pending* ratio
/// `latest / applied`, so each re-plan resets the trigger without the
/// drift source having to know re-plans happen.
#[derive(Debug, Clone, Copy)]
struct DriftAccum {
    applied: (f64, f64),
    latest: (f64, f64),
}

impl Default for DriftAccum {
    fn default() -> DriftAccum {
        DriftAccum {
            applied: (1.0, 1.0),
            latest: (1.0, 1.0),
        }
    }
}

impl DriftAccum {
    /// `(time, energy)` factors accumulated since the last re-plan.
    fn pending_factors(&self) -> (f64, f64) {
        (
            self.latest.0 / self.applied.0,
            self.latest.1 / self.applied.1,
        )
    }

    /// Largest pending relative deviation.
    fn pending_magnitude(&self) -> f64 {
        let (t, e) = self.pending_factors();
        (t - 1.0).abs().max((e - 1.0).abs())
    }

    /// Marks the pending drift as absorbed by a re-plan.
    fn commit(&mut self) {
        self.applied = self.latest;
    }
}

/// Mutable per-job state, guarded by the job's `RwLock`.
struct JobMut {
    frontier: Option<Arc<ParetoFrontier>>,
    /// Epoch of the submission that produced `frontier` (0 = none yet).
    characterized_epoch: u64,
    /// Profiles behind `frontier`, kept for cap-induced re-clamps.
    profiles: Option<ProfileDb<OpKey>>,
    /// One [`SleepPlan`] per frontier point (same index order), when the
    /// job plans sleep states; recomputed whenever `frontier` changes.
    sleep: Option<Vec<SleepPlan>>,
    /// The last characterization attempt died (lost or panicked);
    /// lookups fall back to the previous frontier until a fresh
    /// submission deploys.
    degraded: bool,
    /// Active straggler degree per accelerator id.
    stragglers: HashMap<usize, f64>,
    pending: Vec<PendingStraggler>,
    clock_s: f64,
    version: u64,
    deployed: Option<Deployment>,
    /// Structural fingerprint of the deployed frontier's planning inputs,
    /// when a fleet plan cache is attached. Volatile (not persisted, not
    /// part of [`PerseusServer::state_fingerprint`]): it is re-derived on
    /// the next characterization and only drives targeted cache
    /// invalidation when a re-characterization changes the structure.
    plan_fingerprint: Option<PlanFingerprint>,
    /// Options of the last winning characterization, reused by
    /// drift-triggered re-plans. Volatile (not persisted, not
    /// fingerprinted): recovery replays re-set it from the journaled
    /// `Characterized` event, and the fallback is the default options.
    last_opts: Option<FrontierOptions>,
    /// Drift-watcher state per computation (see [`DriftAccum`]).
    /// Volatile: drift deltas arriving before the threshold trips are
    /// observation, not durable planning state.
    drift: HashMap<OpKey, DriftAccum>,
}

/// One registered job: immutable identity plus lock-guarded state. Shared
/// between the server map and in-flight characterization tasks.
struct Job {
    name: String,
    pipe: PipelineDag,
    gpu: GpuSpec,
    /// Sleep states available to this job's accelerators; `None` plans
    /// frequencies only.
    power: Option<PowerStateModel>,
    /// Reusable characterization artifacts for this job's pipeline.
    solver: FrontierSolver,
    /// Monotonic submission counter; newer submissions supersede older
    /// ones even if they finish out of order.
    next_epoch: AtomicU64,
    /// Lookups answered while degraded (see [`ChaosStats`]).
    degraded_lookups: AtomicU64,
    /// Faults absorbed for this job (see [`ChaosStats`]).
    faults_injected: AtomicU64,
    telemetry: Telemetry,
    state: RwLock<JobMut>,
}

impl Job {
    /// Kareus sleep plans for every point of `frontier`, when this job was
    /// registered with power states; `None` for frequency-only jobs.
    /// Derived from the frontier's schedules alone (never from `T'`), so
    /// the result is as straggler-independent as the frontier itself.
    fn sleep_plans(
        &self,
        profiles: &ProfileDb<OpKey>,
        frontier: &ParetoFrontier,
    ) -> Result<Option<Vec<SleepPlan>>, CoreError> {
        let Some(model) = self.power.as_ref() else {
            return Ok(None);
        };
        let ctx = PlanContext::new(&self.pipe, &self.gpu, profiles.clone())?;
        Ok(Some(
            frontier
                .points()
                .iter()
                .map(|p| insert_sleep(&ctx, &p.schedule, model))
                .collect(),
        ))
    }

    /// Effective straggler iteration time given the active stragglers:
    /// `T' = T_min × max(degree)`.
    fn effective_t_prime(state: &JobMut) -> f64 {
        let frontier = state
            .frontier
            .as_ref()
            .expect("deploy only after characterization");
        let worst = state.stragglers.values().copied().fold(1.0, f64::max);
        frontier.t_min() * worst
    }

    /// Issues a new deployment from the cached frontier. Caller holds the
    /// state write lock; the frontier must be present. A lookup served
    /// while the job is degraded (last characterization died) is counted —
    /// the answer is correct for the *previous* profiles, which is the
    /// graceful-degradation contract.
    fn deploy_locked(&self, state: &mut JobMut) -> Deployment {
        let t0 = self.telemetry.now();
        if state.degraded {
            self.degraded_lookups.fetch_add(1, Ordering::Relaxed);
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter_with(
                        "perseus_server_degraded_lookups_total",
                        &[("job", &self.name)],
                    )
                    .inc();
            }
        }
        let t_prime = Self::effective_t_prime(state);
        let frontier = state.frontier.as_ref().expect("characterized");
        let idx = frontier.lookup_index(t_prime);
        let point = &frontier.points()[idx];
        state.version += 1;
        let deployment = Deployment {
            version: state.version,
            t_prime,
            planned_time_s: point.planned_time_s,
            schedule: point.schedule.clone(),
            sleep: state
                .sleep
                .as_ref()
                .and_then(|plans| plans.get(idx))
                .cloned(),
        };
        state.deployed = Some(deployment.clone());
        if let Some(t0) = t0 {
            self.telemetry
                .histogram_with("perseus_server_lookup_seconds", &[("job", &self.name)])
                .observe_duration(t0.elapsed());
        }
        deployment
    }

    /// Fires every pending straggler notification due at the current
    /// clock. Caller holds the state write lock.
    fn fire_due_locked(&self, state: &mut JobMut) -> Vec<Deployment> {
        let now = state.clock_s;
        let mut due: Vec<PendingStraggler> = state
            .pending
            .iter()
            .copied()
            .filter(|p| p.fire_at <= now)
            .collect();
        state.pending.retain(|p| p.fire_at > now);
        due.sort_by(|a, b| a.fire_at.total_cmp(&b.fire_at));
        let mut deployments = Vec::new();
        for p in due {
            if p.degree > 1.0 {
                state.stragglers.insert(p.gpu_id, p.degree);
            } else {
                state.stragglers.remove(&p.gpu_id);
            }
            if state.frontier.is_some() {
                deployments.push(self.deploy_locked(state));
            }
        }
        deployments
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads draining a task channel. Dropping the
/// pool closes the channel and joins the workers.
struct WorkerPool {
    tx: Option<Sender<Task>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(n_workers: usize) -> WorkerPool {
        let (tx, rx) = unbounded::<Task>();
        let workers = (0..n_workers.max(1))
            .map(|i| {
                let rx: Receiver<Task> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("perseus-plan-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn planning worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    fn submit(&self, task: Task) {
        let tx = self.tx.as_ref().expect("pool alive while server exists");
        // A send failure means the workers are gone (server shutting
        // down); dropping the task resolves its ticket to `Shutdown`.
        drop(tx.send(task));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel so idle workers exit, then join them.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The Perseus server: one per training cluster, managing any number of
/// jobs. `Send + Sync` — share it behind an `Arc` and call it from any
/// thread.
pub struct PerseusServer {
    jobs: RwLock<HashMap<String, Arc<Job>>>,
    pool: WorkerPool,
    /// Installed by the chaos layer; `None` in production.
    injector: RwLock<Option<Arc<dyn FaultInjector>>>,
    telemetry: Telemetry,
    /// Per-iteration time-series ring, fed by the training loop (the
    /// chaos harness in this repo) and dumped as a post-mortem when a
    /// submission is lost or a characterization panic is contained.
    flight: Arc<FlightRecorder>,
    /// Where to auto-dump the flight record on containment; `None`
    /// disables auto-dumps.
    flight_dump: RwLock<Option<PathBuf>>,
    /// Streaming observability: ring series, drift detectors, SLO
    /// budgets. Fed by [`PerseusServer::observe_iteration`]; observe-only
    /// (never influences planning), so enabling it keeps planner output
    /// byte-identical.
    obs: Arc<ObsPipeline>,
    /// Whether the lookup-latency histogram of the first observed job has
    /// been attached to the pipeline's SLO engine.
    obs_lookup_attached: std::sync::atomic::AtomicBool,
    /// Durable backing (journal + snapshots); `None` for in-memory
    /// servers. Lock order everywhere: journal → jobs map → job state.
    store: Option<Arc<Store>>,
    /// The fleet-wide cross-job plan cache, when attached; consulted by
    /// every characterization before the solver runs.
    plan_cache: RwLock<Option<Arc<PlanCache>>>,
    /// Characterizations currently admitted but not yet completed.
    inflight: Arc<AtomicU64>,
    /// High-water mark of `inflight` (stress tests assert it never
    /// exceeds the configured bound).
    peak_inflight: AtomicU64,
    /// Admission bound on in-flight characterizations; 0 = unbounded.
    max_inflight: AtomicU64,
    /// [`Role::Leader`] (0) or [`Role::Follower`] (1). Followers reject
    /// every public mutator with [`ServerError::NotLeader`]; replicated
    /// applies go through [`PerseusServer::replay_event`], which bypasses
    /// the guard by construction.
    role: std::sync::atomic::AtomicU8,
    /// Where [`ServerError::NotLeader`] points callers (empty = unknown).
    leader_hint: RwLock<String>,
    /// Replication counters mirrored from the follower machinery so
    /// [`JobStatus`] and `/metrics` can surface them: records shipped,
    /// records applied, lag in records, lag in bytes. All zero on
    /// leaders and standalone servers.
    repl_shipped: AtomicU64,
    repl_applied: AtomicU64,
    repl_lag_records: AtomicU64,
    repl_lag_bytes: AtomicU64,
    /// Drift-watcher threshold (f64 bits): a job re-characterizes once
    /// its largest pending per-computation drift factor deviates from 1
    /// by at least this much.
    drift_threshold: AtomicU64,
    /// Drift-triggered re-characterizations submitted so far.
    drift_replans: AtomicU64,
}

impl Default for PerseusServer {
    fn default() -> PerseusServer {
        PerseusServer::new()
    }
}

impl PerseusServer {
    /// Creates a server with one planning worker per available core
    /// (capped at 4) and telemetry disabled.
    pub fn new() -> PerseusServer {
        let n = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(4);
        PerseusServer::with_workers(n)
    }

    /// Creates a server with an explicit planning-worker count (at least
    /// one) and telemetry disabled.
    pub fn with_workers(n_workers: usize) -> PerseusServer {
        PerseusServer::with_telemetry(n_workers, Telemetry::disabled())
    }

    /// [`PerseusServer::with_workers`] emitting through `telemetry`: the
    /// server records per-job queue latency
    /// (`perseus_server_queue_seconds`), deployment-lookup latency
    /// (`perseus_server_lookup_seconds`), degraded lookups
    /// (`perseus_server_degraded_lookups_total`), worker-pool occupancy
    /// (`perseus_server_workers_busy`), and a `characterize` span per
    /// submission; every job's [`FrontierSolver`] inherits the handle.
    pub fn with_telemetry(n_workers: usize, telemetry: Telemetry) -> PerseusServer {
        PerseusServer {
            jobs: RwLock::new(HashMap::new()),
            pool: WorkerPool::new(n_workers),
            injector: RwLock::new(None),
            telemetry,
            flight: Arc::new(FlightRecorder::new(FLIGHT_CAPACITY)),
            flight_dump: RwLock::new(None),
            obs: Arc::new(ObsPipeline::default()),
            obs_lookup_attached: std::sync::atomic::AtomicBool::new(false),
            store: None,
            plan_cache: RwLock::new(None),
            inflight: Arc::new(AtomicU64::new(0)),
            peak_inflight: AtomicU64::new(0),
            max_inflight: AtomicU64::new(0),
            role: std::sync::atomic::AtomicU8::new(0),
            leader_hint: RwLock::new(String::new()),
            repl_shipped: AtomicU64::new(0),
            repl_applied: AtomicU64::new(0),
            repl_lag_records: AtomicU64::new(0),
            repl_lag_bytes: AtomicU64::new(0),
            drift_threshold: AtomicU64::new(DEFAULT_DRIFT_THRESHOLD.to_bits()),
            drift_replans: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a durable server rooted at `dir` with default
    /// worker count and telemetry disabled. If `dir` holds state from a
    /// previous run — even one that crashed mid-write — it is recovered:
    /// the snapshot is loaded, the journal tail is replayed, and torn or
    /// corrupted journal suffixes are truncated away. Subsequent
    /// deployments are bit-identical to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] if the directory cannot be created or the
    /// journal cannot be opened. Corruption is *not* an error: corrupt
    /// journal tails are truncated and a corrupt snapshot falls back to
    /// journal-only replay, both surfaced in [`DurabilityStats`].
    pub fn open(dir: impl AsRef<Path>) -> Result<PerseusServer, ServerError> {
        let n = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(4);
        PerseusServer::open_with(dir, n, Telemetry::disabled())
    }

    /// Recovers a durable server from `dir`. Alias of
    /// [`PerseusServer::open`] — opening *is* recovery; the name exists
    /// for call sites whose intent is restart-after-crash.
    ///
    /// # Errors
    ///
    /// As [`PerseusServer::open`].
    pub fn recover(dir: impl AsRef<Path>) -> Result<PerseusServer, ServerError> {
        PerseusServer::open(dir)
    }

    /// [`PerseusServer::open`] with an explicit worker count and
    /// telemetry handle. Recovery emits
    /// `perseus_store_recoveries_total` / `perseus_store_truncated_records_total`;
    /// steady-state appends emit `perseus_store_journal_appends_total`.
    ///
    /// # Errors
    ///
    /// As [`PerseusServer::open`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        n_workers: usize,
        telemetry: Telemetry,
    ) -> Result<PerseusServer, ServerError> {
        PerseusServer::open_inner(dir.as_ref(), n_workers, telemetry, None)
    }

    /// [`PerseusServer::open_with`] with a fleet plan cache attached
    /// *before* recovery runs: journal-tail [`JournalEvent::Characterized`]
    /// replays consult the cache first, so a cache recovered from its own
    /// write-ahead log (see [`PlanCache::open`]) turns replayed
    /// re-characterizations into lookups — counted as
    /// `recharacterizations_avoided` instead of
    /// `recharacterizations_replayed` in [`DurabilityStats`].
    ///
    /// # Errors
    ///
    /// As [`PerseusServer::open`].
    pub fn open_with_cache(
        dir: impl AsRef<Path>,
        n_workers: usize,
        telemetry: Telemetry,
        cache: Arc<PlanCache>,
    ) -> Result<PerseusServer, ServerError> {
        PerseusServer::open_inner(dir.as_ref(), n_workers, telemetry, Some(cache))
    }

    fn open_inner(
        dir: &Path,
        n_workers: usize,
        telemetry: Telemetry,
        cache: Option<Arc<PlanCache>>,
    ) -> Result<PerseusServer, ServerError> {
        std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
        let (journal, records) = Journal::open(dir.join(JOURNAL_FILE))?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut server = PerseusServer::with_telemetry(n_workers, telemetry);
        *server.plan_cache.write() = cache;
        let store = Arc::new(Store::new(
            journal,
            snapshot_path.clone(),
            server.telemetry.clone(),
        ));

        // A corrupt snapshot is tolerated: fall back to journal-only
        // replay (the journal is only compacted *after* a snapshot lands,
        // so a snapshot that never got readable leaves the full journal).
        let mut corrupt_snapshot = false;
        let snapshot = match load_snapshot(&snapshot_path) {
            Ok(None) => None,
            Ok(Some(bytes)) => match ServerSnapshot::from_bytes(&bytes) {
                Ok(snap) => Some(snap),
                Err(_) => {
                    corrupt_snapshot = true;
                    None
                }
            },
            Err(StoreError::Corrupt { .. }) => {
                corrupt_snapshot = true;
                None
            }
            Err(e) => return Err(ServerError::Store(e)),
        };
        if corrupt_snapshot {
            store.corrupt_snapshots.fetch_add(1, Ordering::Relaxed);
        }
        let had_state = snapshot.is_some() || corrupt_snapshot || !records.is_empty();
        let applied_seq = snapshot.as_ref().map_or(0, |s| s.applied_seq);
        if let Some(snap) = snapshot {
            store.recharacterizations_avoided.fetch_add(
                snap.jobs.iter().filter(|j| j.frontier.is_some()).count() as u64,
                Ordering::Relaxed,
            );
            server.restore_snapshot(snap);
        }

        // Replay the journal tail past the snapshot watermark. The store
        // is still detached, so the mutators called by `replay_event`
        // apply state without re-journaling. A record whose frame passed
        // CRC but whose payload fails to decode poisons everything after
        // it: stop, count it, and let the post-recovery snapshot compact
        // it away so it is never read again.
        for rec in &records {
            if rec.seq <= applied_seq {
                continue;
            }
            match JournalEvent::from_bytes(&rec.payload) {
                Ok(event) => {
                    store.replayed_events.fetch_add(1, Ordering::Relaxed);
                    match server.replay_event(event) {
                        ReplayOutcome::CharacterizedSolved => {
                            store
                                .recharacterizations_replayed
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        ReplayOutcome::CharacterizedCached => {
                            store
                                .recharacterizations_avoided
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        ReplayOutcome::Other => {}
                    }
                }
                Err(_) => {
                    store.truncated_records.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        if had_state {
            store.record_recovery();
        }
        server.store = Some(store);
        if had_state {
            // Fold the replayed tail into a fresh snapshot and compact:
            // recovery work is never repeated, and a poisoned tail is
            // dropped for good.
            server.snapshot_now()?;
        }
        Ok(server)
    }

    /// Rebuilds the jobs map from a snapshot. Solvers are not persisted:
    /// each is rebuilt from the job's pipeline (deterministic artifacts).
    /// Volatile observability counters (degraded lookups, faults
    /// absorbed) restart at zero, like any process-local counter.
    pub(crate) fn restore_snapshot(&self, snap: ServerSnapshot) {
        let mut jobs = self.jobs.write();
        for js in snap.jobs {
            let solver = FrontierSolver::with_telemetry(&js.pipe, self.telemetry.clone());
            let name = js.name.clone();
            let job = Arc::new(Job {
                name: js.name,
                pipe: js.pipe,
                gpu: js.gpu,
                power: js.power,
                solver,
                next_epoch: AtomicU64::new(js.next_epoch),
                degraded_lookups: AtomicU64::new(0),
                faults_injected: AtomicU64::new(0),
                telemetry: self.telemetry.clone(),
                state: RwLock::new(JobMut {
                    frontier: js.frontier.map(Arc::new),
                    characterized_epoch: js.characterized_epoch,
                    profiles: js.profiles,
                    sleep: js.sleep,
                    degraded: js.degraded,
                    stragglers: js.stragglers.into_iter().collect(),
                    pending: js
                        .pending
                        .into_iter()
                        .map(|(fire_at, gpu_id, degree)| PendingStraggler {
                            fire_at,
                            gpu_id,
                            degree,
                        })
                        .collect(),
                    clock_s: js.clock_s,
                    version: js.version,
                    deployed: js.deployed,
                    plan_fingerprint: None,
                    last_opts: None,
                    drift: HashMap::new(),
                }),
            });
            jobs.insert(name, job);
        }
    }

    /// Applies one journaled event during recovery or replication. The
    /// store is detached while this runs (recovery) or never attached
    /// (follower apply), so the mutators apply state without
    /// re-journaling. Deliberately bypasses the leader guard — a
    /// follower's *only* write path is this one. Errors are ignored by
    /// design: the journal only records events that succeeded, and
    /// truncation only removes suffixes, so every event's prerequisites
    /// are present; a decode drift that violates that merely leaves the
    /// event unapplied.
    pub(crate) fn replay_event(&self, event: JournalEvent) -> ReplayOutcome {
        match event {
            JournalEvent::RegisterJob {
                name,
                pipe,
                gpu,
                power,
            } => {
                let _ = self.register_job_inner(JobSpec {
                    name,
                    pipe,
                    gpu,
                    power_states: power,
                });
            }
            JournalEvent::Characterized {
                name,
                epoch,
                profiles,
                opts,
            } => return self.replay_characterized(&name, epoch, profiles, &opts),
            JournalEvent::SetStraggler {
                name,
                gpu_id,
                delay_s,
                degree,
            } => {
                let _ = self.set_straggler_inner(&name, gpu_id, delay_s, degree);
            }
            JournalEvent::AdvanceTime { name, dt_s } => {
                let _ = self.advance_time_inner(&name, dt_s);
            }
            JournalEvent::SkewClock { name, skew_s } => {
                let _ = self.skew_clock_inner(&name, skew_s);
            }
            JournalEvent::FreqCap { name, cap } => {
                let _ = self.apply_freq_cap_inner(&name, cap);
            }
            JournalEvent::Degraded { name } => {
                if let Ok(job) = self.job(&name) {
                    let mut state = job.state.write();
                    if state.frontier.is_some() {
                        state.degraded = true;
                    }
                }
            }
        }
        ReplayOutcome::Other
    }

    /// Replays a winning characterization: re-runs the deterministic
    /// solver on the journaled profiles and deploys, exactly as the
    /// original worker did — unless an attached plan cache already holds
    /// the structure's frontier, in which case the lookup replaces the
    /// solve (the `recharacterizations_avoided` path). Skipped if the job
    /// already carries this (or a newer) epoch — replaying a duplicated
    /// record is a no-op, which is what makes recovery idempotent.
    fn replay_characterized(
        &self,
        name: &str,
        epoch: u64,
        profiles: ProfileDb<OpKey>,
        opts: &FrontierOptions,
    ) -> ReplayOutcome {
        let Ok(job) = self.job(name) else {
            return ReplayOutcome::CharacterizedSolved;
        };
        job.next_epoch.fetch_max(epoch, Ordering::Relaxed);
        if job.state.read().characterized_epoch >= epoch {
            return ReplayOutcome::CharacterizedSolved;
        }
        let cache = self.plan_cache.read().clone();
        let outcome = match cache.as_deref() {
            Some(cache) => job.solver.characterize_cached(
                &job.pipe,
                &job.gpu,
                &profiles,
                opts,
                job.power.as_ref(),
                cache,
            ),
            None => PlanContext::new(&job.pipe, &job.gpu, profiles.clone())
                .and_then(|ctx| job.solver.characterize(&ctx, opts))
                .map(|f| (Arc::new(f), false, PlanFingerprint(0))),
        };
        let Ok((frontier, cache_hit, fp)) = outcome else {
            return ReplayOutcome::CharacterizedSolved;
        };
        // Sleep plans are a pure function of (profiles, frontier, power
        // states), so replay rederives them bit-identically.
        let sleep = job.sleep_plans(&profiles, &frontier).ok().flatten();
        let mut state = job.state.write();
        if state.characterized_epoch >= epoch {
            return ReplayOutcome::CharacterizedSolved;
        }
        state.characterized_epoch = epoch;
        state.frontier = Some(frontier);
        state.profiles = Some(profiles);
        state.sleep = sleep;
        state.degraded = false;
        state.last_opts = Some(opts.clone());
        if cache.is_some() {
            state.plan_fingerprint = Some(fp);
        }
        job.deploy_locked(&mut state);
        if cache_hit {
            ReplayOutcome::CharacterizedCached
        } else {
            ReplayOutcome::CharacterizedSolved
        }
    }

    /// The server's flight recorder. The training loop records one
    /// [`perseus_telemetry::IterationSample`] per synchronized iteration;
    /// the server only snapshots and dumps it.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Snapshots the per-iteration flight record — the on-demand half of
    /// the recorder contract (the auto-dump on fault containment is the
    /// other half; see [`PerseusServer::arm_flight_dump`]).
    pub fn flight_record(&self) -> FlightSnapshot {
        self.flight.snapshot()
    }

    /// Arms (or, with `None`, disarms) the automatic JSON post-mortem: on
    /// a lost submission or a contained characterization panic, the
    /// current flight record is written to `path`. Dump failures are
    /// swallowed — a broken post-mortem path must never take down fault
    /// containment itself.
    pub fn arm_flight_dump(&self, path: Option<PathBuf>) {
        *self.flight_dump.write() = path;
    }

    /// The telemetry handle this server emits through (disabled unless
    /// built via [`PerseusServer::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The server's streaming observability pipeline: per-metric ring
    /// series, EWMA/Page–Hinkley drift detectors, and the SLO engine.
    pub fn obs(&self) -> &Arc<ObsPipeline> {
        &self.obs
    }

    /// Records one synchronized training iteration for `job`: the sample
    /// goes to the flight recorder (post-mortem ring) *and* through the
    /// observability pipeline (series → detectors → SLO budgets). This is
    /// the one ingest call the training loop makes per iteration; it is
    /// observe-only — planner state and future deployments are untouched.
    ///
    /// Returns the alerts this sample transitioned (usually none). An
    /// unknown job name still records — observation must not depend on
    /// registration timing.
    ///
    /// On the first call, the pipeline's SLO engine is pointed at `job`'s
    /// `perseus_server_lookup_seconds` histogram so the p99-latency
    /// objective evaluates against live lookups (first observed job wins;
    /// no-op with disabled telemetry).
    pub fn observe_iteration(&self, job: &str, sample: IterationSample) -> Vec<Alert> {
        if self.telemetry.is_enabled()
            && !self
                .obs_lookup_attached
                .swap(true, std::sync::atomic::Ordering::Relaxed)
        {
            // `histogram_with` wants 'static labels only for the keys;
            // values may borrow. Creates-or-gets: by the first observed
            // iteration the lookup path has typically registered it.
            self.obs.attach_lookup_latency(
                self.telemetry
                    .histogram_with("perseus_server_lookup_seconds", &[("job", job)]),
            );
        }
        self.flight.record(sample);
        self.obs.ingest(&sample)
    }

    /// Starts the zero-dependency HTTP observability endpoint on `addr`
    /// (`/metrics`, `/alerts`, `/slo`, `/health`); use port 0 for an
    /// ephemeral port. The returned server shuts down on drop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_telemetry(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<TelemetryServer> {
        TelemetryServer::bind(
            addr,
            Endpoints::from_telemetry(self.telemetry.clone()).with_pipeline(Arc::clone(&self.obs)),
        )
    }

    /// Installs (or, with `None`, removes) the fault injector consulted
    /// by characterization tasks. Chaos-testing hook; production servers
    /// never call this.
    pub fn set_fault_injector(&self, injector: Option<Arc<dyn FaultInjector>>) {
        *self.injector.write() = injector;
    }

    /// Registers a job (§3.2 step ⓪) and builds its reusable
    /// characterization artifacts.
    ///
    /// # Errors
    ///
    /// [`ServerError::DuplicateJob`] if the name is taken;
    /// [`ServerError::Core`] if the spec's power states are invalid for
    /// its GPU (a sleep state must draw less than `P_blocking` and have
    /// finite, non-negative transition latencies);
    /// [`ServerError::NotLeader`] on a replication follower.
    pub fn register_job(&self, spec: JobSpec) -> Result<(), ServerError> {
        self.ensure_leader()?;
        self.register_job_inner(spec)
    }

    fn register_job_inner(&self, spec: JobSpec) -> Result<(), ServerError> {
        if let Some(model) = spec.power_states.as_ref() {
            model
                .validate(&spec.gpu)
                .map_err(|e| ServerError::Core(CoreError::PowerState(e)))?;
        }
        let event = self.store.as_ref().map(|_| {
            JournalEvent::RegisterJob {
                name: spec.name.clone(),
                pipe: spec.pipe.clone(),
                gpu: spec.gpu.clone(),
                power: spec.power_states.clone(),
            }
            .to_bytes()
        });
        let solver = FrontierSolver::with_telemetry(&spec.pipe, self.telemetry.clone());
        let job = Arc::new(Job {
            name: spec.name.clone(),
            pipe: spec.pipe,
            gpu: spec.gpu,
            power: spec.power_states,
            solver,
            next_epoch: AtomicU64::new(0),
            degraded_lookups: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            telemetry: self.telemetry.clone(),
            state: RwLock::new(JobMut {
                frontier: None,
                characterized_epoch: 0,
                profiles: None,
                sleep: None,
                degraded: false,
                stragglers: HashMap::new(),
                pending: Vec::new(),
                clock_s: 0.0,
                version: 0,
                deployed: None,
                plan_fingerprint: None,
                last_opts: None,
                drift: HashMap::new(),
            }),
        });
        let mut journal = self.store.as_ref().map(|s| s.journal.lock());
        {
            let mut jobs = self.jobs.write();
            if jobs.contains_key(&spec.name) {
                return Err(ServerError::DuplicateJob(spec.name));
            }
            jobs.insert(spec.name, job);
        }
        if let (Some(store), Some(journal), Some(bytes)) =
            (self.store.as_ref(), journal.as_mut(), event.as_ref())
        {
            store.append_locked(journal, bytes);
        }
        drop(journal);
        self.maybe_snapshot();
        Ok(())
    }

    fn job(&self, name: &str) -> Result<Arc<Job>, ServerError> {
        self.jobs
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| ServerError::UnknownJob(name.to_string()))
    }

    /// Receives the client's profiling results and schedules frontier
    /// characterization (step ②) on the worker pool. Returns a ticket
    /// immediately; when the characterization completes it atomically
    /// swaps the job's frontier, deploys the schedule answering the
    /// current straggler state (step ③), and resolves the ticket with
    /// that deployment.
    ///
    /// Concurrent submissions for the same job are ordered by submission
    /// epoch: a submission that finishes after a newer one has already
    /// deployed resolves to [`ServerError::Superseded`] and changes
    /// nothing.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for unregistered names;
    /// [`ServerError::InvalidProfile`] for structurally invalid
    /// submissions (rejected here, before any worker time is spent);
    /// failures of the characterization itself are delivered through the
    /// ticket.
    pub fn submit_profiles(
        &self,
        name: &str,
        profiles: ProfileDb<OpKey>,
        opts: &FrontierOptions,
    ) -> Result<CharacterizeTicket, ServerError> {
        self.ensure_leader()?;
        let job = self.job(name)?;
        Self::validate_profiles(name, &profiles)?;
        let permit = self.acquire_inflight(name)?;
        let store = self.store.clone();
        let cache = self.plan_cache.read().clone();
        // Epoch 1 is the first submission; `characterized_epoch` 0 means
        // "nothing deployed yet", so every first submission wins.
        let epoch = job.next_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let opts = opts.clone();
        let fault = self
            .injector
            .read()
            .as_ref()
            .map_or(SubmissionFault::None, |i| i.submission_fault(name, epoch));
        let (tx, rx) = unbounded();
        let tel = self.telemetry.clone();
        let flight = Arc::clone(&self.flight);
        let dump_path = self.flight_dump.read().clone();
        let enqueued = tel.now();
        self.pool.submit(Box::new(move || {
            let busy = if tel.is_enabled() {
                if let Some(enqueued) = enqueued {
                    tel.histogram_with("perseus_server_queue_seconds", &[("job", &job.name)])
                        .observe_duration(enqueued.elapsed());
                }
                let busy = tel.gauge("perseus_server_workers_busy");
                busy.add(1);
                Some(busy)
            } else {
                None
            };
            let result = {
                let _span = span!(tel, "characterize", job = job.name);
                Self::characterize_task(
                    &job,
                    epoch,
                    profiles,
                    &opts,
                    fault,
                    store.as_deref(),
                    cache.as_deref(),
                )
            };
            // Release the admission slot as soon as the work is done,
            // before the (unbounded-latency) notification send.
            drop(permit);
            if let Some(busy) = busy {
                busy.add(-1);
            }
            // Containment fired (lost submission or contained panic):
            // write the post-mortem while the evidence is fresh. Dump
            // errors are deliberately swallowed.
            if matches!(
                &result,
                Err(ServerError::SubmissionLost(_) | ServerError::CharacterizationPanicked(_))
            ) {
                if let Some(path) = &dump_path {
                    let _ = flight.dump_to(path);
                }
            }
            let _ = tx.send(result); // receiver may have dropped the ticket
        }));
        Ok(CharacterizeTicket {
            job: name.to_string(),
            rx,
        })
    }

    /// Batch variant of [`PerseusServer::submit_profiles`]: validates
    /// every submission up front — all-or-nothing, so no worker time is
    /// spent unless the whole batch is structurally sound — then schedules
    /// all characterizations at once on the worker pool. Independent
    /// per-pipeline frontier solves proceed in parallel across the pool's
    /// threads (each against its own job's cached solver artifacts and
    /// per-sweep [`perseus_core::SolverArena`]), which is the server-side
    /// counterpart of [`perseus_core::FrontierSolver::characterize_all`].
    /// Tickets come back in submission order; wait on them in any order.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] / [`ServerError::InvalidProfile`] if
    /// any entry is invalid; nothing is scheduled in that case.
    pub fn submit_profiles_batch(
        &self,
        submissions: Vec<(String, ProfileDb<OpKey>, FrontierOptions)>,
    ) -> Result<Vec<CharacterizeTicket>, ServerError> {
        for (name, profiles, _) in &submissions {
            self.job(name)?;
            Self::validate_profiles(name, profiles)?;
        }
        submissions
            .into_iter()
            .map(|(name, profiles, opts)| self.submit_profiles(&name, profiles, &opts))
            .collect()
    }

    /// Rejects structurally invalid profile submissions at the API
    /// boundary: empty tables, non-finite or non-positive times/energies,
    /// zero frequencies, and non-monotone frequency tables (entries must
    /// be strictly descending in frequency — duplicates included). Bad
    /// profiles would otherwise surface deep inside the solver as NaN
    /// frontiers or panics.
    fn validate_profiles(name: &str, profiles: &ProfileDb<OpKey>) -> Result<(), ServerError> {
        let invalid = |reason: String| ServerError::InvalidProfile {
            job: name.to_string(),
            reason,
        };
        if profiles.is_empty() {
            return Err(invalid("profile database is empty".to_string()));
        }
        for (key, profile) in profiles.iter() {
            let entries = profile.entries();
            if entries.is_empty() {
                return Err(invalid(format!("{key:?}: profile has no measurements")));
            }
            let mut prev: Option<FreqMHz> = None;
            for e in entries {
                if !e.time_s.is_finite() || e.time_s <= 0.0 {
                    return Err(invalid(format!(
                        "{key:?}: time {} s at {} MHz is not finite and positive",
                        e.time_s, e.freq.0
                    )));
                }
                if !e.energy_j.is_finite() || e.energy_j <= 0.0 {
                    return Err(invalid(format!(
                        "{key:?}: energy {} J at {} MHz is not finite and positive",
                        e.energy_j, e.freq.0
                    )));
                }
                if e.freq.0 == 0 {
                    return Err(invalid(format!("{key:?}: zero frequency entry")));
                }
                if let Some(prev) = prev {
                    if e.freq >= prev {
                        return Err(invalid(format!(
                            "{key:?}: frequency table is not strictly descending \
                             ({} MHz after {} MHz)",
                            e.freq.0, prev.0
                        )));
                    }
                }
                prev = Some(e.freq);
            }
        }
        Ok(())
    }

    /// Journals the degradation flag flip that fault containment just
    /// decided on. Takes the journal lock *before* the state lock (the
    /// invariant every mutator shares), sets the flag only if a previous
    /// frontier exists to degrade to, and appends only when the flag was
    /// actually set.
    fn contain_degraded(job: &Job, store: Option<&Store>) {
        let bytes = store.map(|_| {
            JournalEvent::Degraded {
                name: job.name.clone(),
            }
            .to_bytes()
        });
        let mut journal = store.map(|s| s.journal.lock());
        let mut state = job.state.write();
        if state.frontier.is_some() {
            state.degraded = true;
            if let (Some(store), Some(journal), Some(bytes)) =
                (store, journal.as_mut(), bytes.as_ref())
            {
                store.append_locked(journal, bytes);
            }
        }
    }

    /// Runs on a worker thread: characterize against the job's cached
    /// solver artifacts, then swap + deploy under the write lock. Panics
    /// — injected or genuine — are contained here so a dying
    /// characterization never takes a worker (or the job) with it; the
    /// job keeps serving its last deployed frontier, marked degraded.
    ///
    /// Only *winning* characterizations are journaled (as
    /// [`JournalEvent::Characterized`], carrying the profiles + options
    /// so replay re-runs the deterministic solver); superseded and failed
    /// attempts leave no durable trace beyond the degradation flag.
    /// Exact admission control: atomically claims an in-flight slot or
    /// rejects with [`ServerError::Overloaded`]. `fetch_update` makes the
    /// claim race-free — the counter never exceeds the bound, even under
    /// concurrent submissions (the stress tests pin this via
    /// [`PerseusServer::peak_inflight_characterizations`]).
    fn acquire_inflight(&self, name: &str) -> Result<InflightPermit, ServerError> {
        let limit = self.max_inflight.load(Ordering::Relaxed);
        let claimed = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                if limit == 0 || v < limit {
                    Some(v + 1)
                } else {
                    None
                }
            });
        match claimed {
            Ok(prev) => {
                self.peak_inflight.fetch_max(prev + 1, Ordering::Relaxed);
                Ok(InflightPermit {
                    counter: Arc::clone(&self.inflight),
                })
            }
            Err(inflight) => {
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter("perseus_server_overloaded_total")
                        .inc();
                }
                Err(ServerError::Overloaded {
                    job: name.to_string(),
                    inflight,
                    limit,
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn characterize_task(
        job: &Job,
        epoch: u64,
        profiles: ProfileDb<OpKey>,
        opts: &FrontierOptions,
        fault: SubmissionFault,
        store: Option<&Store>,
        cache: Option<&PlanCache>,
    ) -> Result<Deployment, ServerError> {
        match fault {
            SubmissionFault::None => {}
            SubmissionFault::Drop => {
                job.faults_injected.fetch_add(1, Ordering::Relaxed);
                Self::contain_degraded(job, store);
                return Err(ServerError::SubmissionLost(job.name.clone()));
            }
            SubmissionFault::Delay(d) => {
                job.faults_injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
            }
            SubmissionFault::Panic => {
                job.faults_injected.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The expensive part runs without holding any job lock: straggler
        // notifications keep being served from the previous frontier.
        let characterized = catch_unwind(AssertUnwindSafe(|| {
            if fault == SubmissionFault::Panic {
                panic!("injected chaos fault: characterization worker dies");
            }
            // A fleet cache hit skips the solver entirely — not even the
            // planning context (profile fits) is built; the shared
            // frontier is bit-identical to a fresh solve (planning is
            // deterministic in the fingerprinted inputs).
            match cache {
                Some(cache) => job
                    .solver
                    .characterize_cached(
                        &job.pipe,
                        &job.gpu,
                        &profiles,
                        opts,
                        job.power.as_ref(),
                        cache,
                    )
                    .map(|(f, _, fp)| (f, Some(fp)))
                    .map_err(ServerError::Core),
                None => PlanContext::new(&job.pipe, &job.gpu, profiles.clone())
                    .and_then(|ctx| job.solver.characterize(&ctx, opts))
                    .map(|f| (Arc::new(f), None))
                    .map_err(ServerError::Core),
            }
            .and_then(|(frontier, fp)| {
                // The Kareus pass also runs off-lock: straggler lookups
                // keep answering from the previous frontier + sleep plans.
                let sleep = job
                    .sleep_plans(&profiles, &frontier)
                    .map_err(ServerError::Core)?;
                Ok((frontier, fp, sleep))
            })
        }));
        let (frontier, fingerprint, sleep) = match characterized {
            Ok(Ok(out)) => out,
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                Self::contain_degraded(job, store);
                return Err(ServerError::CharacterizationPanicked(job.name.clone()));
            }
        };
        // Encode the journal event before taking any lock: profile
        // databases are the largest thing the journal carries.
        let bytes = store.map(|_| {
            JournalEvent::Characterized {
                name: job.name.clone(),
                epoch,
                profiles: profiles.clone(),
                opts: opts.clone(),
            }
            .to_bytes()
        });
        let mut journal = store.map(|s| s.journal.lock());
        let mut state = job.state.write();
        if state.characterized_epoch > epoch {
            return Err(ServerError::Superseded(job.name.clone()));
        }
        state.characterized_epoch = epoch;
        state.frontier = Some(frontier);
        state.profiles = Some(profiles);
        state.sleep = sleep;
        state.degraded = false;
        state.last_opts = Some(opts.clone());
        // Epoch-based invalidation on re-characterization: when fresh
        // profiles move this job to a *different* structural fingerprint,
        // the entry under the old one describes profiles the fleet has
        // watched drift — open a new cache epoch and drop it.
        if let (Some(cache), Some(fp)) = (cache, fingerprint) {
            if let Some(prev) = state.plan_fingerprint {
                if prev != fp {
                    cache.advance_epoch();
                    cache.invalidate(prev);
                }
            }
            state.plan_fingerprint = Some(fp);
        }
        if let (Some(store), Some(journal), Some(bytes)) = (store, journal.as_mut(), bytes.as_ref())
        {
            store.append_locked(journal, bytes);
        }
        Ok(job.deploy_locked(&mut state))
    }

    /// Table 2 `server.set_straggler(id, delay, degree)`: a straggler on
    /// accelerator `gpu_id` is anticipated `delay_s` seconds from now with
    /// iteration-time inflation `degree`. `degree == 1.0` announces the
    /// straggler's return to normal. Takes effect when the simulated clock
    /// passes the deadline (see [`PerseusServer::advance_time`]); a zero
    /// delay applies immediately and returns the new deployment.
    ///
    /// Served entirely from the job's cached frontier — never blocks on an
    /// in-flight characterization.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidDegree`] for degrees below 1.0,
    /// [`ServerError::NotCharacterized`] before profiles are submitted,
    /// [`ServerError::NotLeader`] on a replication follower.
    pub fn set_straggler(
        &self,
        name: &str,
        gpu_id: usize,
        delay_s: f64,
        degree: f64,
    ) -> Result<Option<Deployment>, ServerError> {
        self.ensure_leader()?;
        self.set_straggler_inner(name, gpu_id, delay_s, degree)
    }

    fn set_straggler_inner(
        &self,
        name: &str,
        gpu_id: usize,
        delay_s: f64,
        degree: f64,
    ) -> Result<Option<Deployment>, ServerError> {
        if !(degree >= 1.0 && degree.is_finite()) {
            return Err(ServerError::InvalidDegree(degree));
        }
        let job = self.job(name)?;
        let event = self.store.as_ref().map(|_| {
            JournalEvent::SetStraggler {
                name: name.to_string(),
                gpu_id,
                delay_s,
                degree,
            }
            .to_bytes()
        });
        let mut journal = self.store.as_ref().map(|s| s.journal.lock());
        let out = {
            let mut state = job.state.write();
            if state.frontier.is_none() {
                return Err(ServerError::NotCharacterized(name.to_string()));
            }
            let out = if delay_s <= 0.0 {
                if degree > 1.0 {
                    state.stragglers.insert(gpu_id, degree);
                } else {
                    state.stragglers.remove(&gpu_id);
                }
                Some(job.deploy_locked(&mut state))
            } else {
                let fire_at = state.clock_s + delay_s;
                state.pending.push(PendingStraggler {
                    fire_at,
                    gpu_id,
                    degree,
                });
                None
            };
            if let (Some(store), Some(journal), Some(bytes)) =
                (self.store.as_ref(), journal.as_mut(), event.as_ref())
            {
                store.append_locked(journal, bytes);
            }
            out
        };
        drop(journal);
        self.maybe_snapshot();
        Ok(out)
    }

    /// Advances the job's simulated clock, firing any pending straggler
    /// notifications whose deadline passed. Returns the deployments issued
    /// (at most one per distinct firing instant, in order).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for unregistered names,
    /// [`ServerError::NotLeader`] on a replication follower.
    pub fn advance_time(&self, name: &str, dt_s: f64) -> Result<Vec<Deployment>, ServerError> {
        self.ensure_leader()?;
        self.advance_time_inner(name, dt_s)
    }

    fn advance_time_inner(&self, name: &str, dt_s: f64) -> Result<Vec<Deployment>, ServerError> {
        let job = self.job(name)?;
        let event = self.store.as_ref().map(|_| {
            JournalEvent::AdvanceTime {
                name: name.to_string(),
                dt_s,
            }
            .to_bytes()
        });
        let mut journal = self.store.as_ref().map(|s| s.journal.lock());
        let fired = {
            let mut state = job.state.write();
            state.clock_s += dt_s.max(0.0);
            // The deployments fired here are pure functions of the clock
            // and the journaled pending set, so only the clock advance is
            // recorded; replay re-fires them identically.
            let fired = job.fire_due_locked(&mut state);
            if let (Some(store), Some(journal), Some(bytes)) =
                (self.store.as_ref(), journal.as_mut(), event.as_ref())
            {
                store.append_locked(journal, bytes);
            }
            fired
        };
        drop(journal);
        self.maybe_snapshot();
        Ok(fired)
    }

    /// Injects clock skew on the job's simulated timestamps: the clock
    /// jumps by `skew_s` seconds (negative = backwards, floored at
    /// zero). Pending straggler notifications whose deadline a *forward*
    /// skew passes fire exactly as they would under
    /// [`PerseusServer::advance_time`]; a backward skew never un-fires
    /// anything — straggler state changes are monotone in what the
    /// clients were already told. Counted in
    /// [`ChaosStats::faults_injected`].
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for unregistered names,
    /// [`ServerError::NotLeader`] on a replication follower.
    pub fn skew_clock(&self, name: &str, skew_s: f64) -> Result<Vec<Deployment>, ServerError> {
        self.ensure_leader()?;
        self.skew_clock_inner(name, skew_s)
    }

    fn skew_clock_inner(&self, name: &str, skew_s: f64) -> Result<Vec<Deployment>, ServerError> {
        let job = self.job(name)?;
        job.faults_injected.fetch_add(1, Ordering::Relaxed);
        let event = self.store.as_ref().map(|_| {
            JournalEvent::SkewClock {
                name: name.to_string(),
                skew_s,
            }
            .to_bytes()
        });
        let mut journal = self.store.as_ref().map(|s| s.journal.lock());
        let fired = {
            let mut state = job.state.write();
            state.clock_s = (state.clock_s + skew_s).max(0.0);
            let fired = job.fire_due_locked(&mut state);
            if let (Some(store), Some(journal), Some(bytes)) =
                (self.store.as_ref(), journal.as_mut(), event.as_ref())
            {
                store.append_locked(journal, bytes);
            }
            fired
        };
        drop(journal);
        self.maybe_snapshot();
        Ok(fired)
    }

    /// A datacenter frequency cap landed on the job's accelerators
    /// (§2.3): frontier points assigning clocks above `cap` are no longer
    /// realizable. The job's frontier is re-clamped via
    /// [`ParetoFrontier::clamp_to_freq_cap`] — no re-characterization, no
    /// panic — and the schedule answering the current straggler state is
    /// re-deployed from the clamped curve. Counted in
    /// [`ChaosStats::faults_injected`].
    ///
    /// # Errors
    ///
    /// [`ServerError::NotCharacterized`] before profiles are submitted;
    /// [`ServerError::NotLeader`] on a replication follower;
    /// otherwise propagates re-realization failures.
    pub fn apply_freq_cap(&self, name: &str, cap: FreqMHz) -> Result<Deployment, ServerError> {
        self.ensure_leader()?;
        self.apply_freq_cap_inner(name, cap)
    }

    fn apply_freq_cap_inner(&self, name: &str, cap: FreqMHz) -> Result<Deployment, ServerError> {
        let job = self.job(name)?;
        let event = self.store.as_ref().map(|_| {
            JournalEvent::FreqCap {
                name: name.to_string(),
                cap,
            }
            .to_bytes()
        });
        let mut journal = self.store.as_ref().map(|s| s.journal.lock());
        let deployment = {
            let mut state = job.state.write();
            let (Some(frontier), Some(profiles)) = (state.frontier.clone(), state.profiles.clone())
            else {
                return Err(ServerError::NotCharacterized(name.to_string()));
            };
            job.faults_injected.fetch_add(1, Ordering::Relaxed);
            let (clamped, sleep) = {
                let ctx = PlanContext::new(&job.pipe, &job.gpu, profiles)?;
                let clamped = frontier.clamp_to_freq_cap(&ctx, job.gpu.clamp_freq(cap))?;
                // Capped schedules stretch, moving and widening bubbles:
                // re-run the Kareus pass against the capped timeline.
                let sleep = job.power.as_ref().map(|model| {
                    clamped
                        .points()
                        .iter()
                        .map(|p| insert_sleep(&ctx, &p.schedule, model))
                        .collect::<Vec<SleepPlan>>()
                });
                (clamped, sleep)
            };
            state.frontier = Some(Arc::new(clamped));
            state.sleep = sleep;
            // Journaled only on success: a cap that failed to re-realize
            // changed nothing and replays nothing.
            if let (Some(store), Some(journal), Some(bytes)) =
                (self.store.as_ref(), journal.as_mut(), event.as_ref())
            {
                store.append_locked(journal, bytes);
            }
            job.deploy_locked(&mut state)
        };
        drop(journal);
        self.maybe_snapshot();
        Ok(deployment)
    }

    /// Everything the server knows about one job in a single consistent
    /// read: current deployment, solver reuse stats, chaos counters,
    /// degradation flag, and the deployed submission epoch. This is the
    /// one status API.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for unregistered names. A registered
    /// but not-yet-characterized job is a valid status with
    /// `deployment: None` and `epoch: 0`.
    pub fn job_status(&self, name: &str) -> Result<JobStatus, ServerError> {
        let job = self.job(name)?;
        let state = job.state.read();
        Ok(JobStatus {
            deployment: state.deployed.clone(),
            solver: job.solver.stats(),
            chaos: ChaosStats {
                degraded_lookups: job.degraded_lookups.load(Ordering::Relaxed),
                faults_injected: job.faults_injected.load(Ordering::Relaxed),
            },
            degraded: state.degraded,
            epoch: state.characterized_epoch,
            flight: self.flight.summary(),
            durability: self.durability(),
            slo: self.obs.slo_status(),
            role: self.role(),
            replication_lag: self.repl_lag_records.load(Ordering::Relaxed),
        })
    }

    /// The cached frontier for a job, if characterized.
    pub fn frontier(&self, name: &str) -> Option<Arc<ParetoFrontier>> {
        self.jobs
            .read()
            .get(name)
            .and_then(|j| j.state.read().frontier.clone())
    }

    /// Registered job names.
    pub fn job_names(&self) -> Vec<String> {
        self.jobs.read().keys().cloned().collect()
    }

    /// Whether this server journals its state to disk (built via
    /// [`PerseusServer::open`] rather than [`PerseusServer::new`]).
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Durability counters of the backing store; all zero for an
    /// in-memory server.
    pub fn durability(&self) -> DurabilityStats {
        self.store
            .as_ref()
            .map_or_else(DurabilityStats::default, |s| s.stats())
    }

    /// Sets how many journal appends accumulate before the server folds
    /// them into a snapshot (and compacts the journal). No-op on an
    /// in-memory server. Low values trade journal size for snapshot
    /// write traffic; tests use 1 to force a snapshot per mutation.
    pub fn set_snapshot_every(&self, every: u64) {
        if let Some(store) = self.store.as_ref() {
            store.snapshot_every.store(every.max(1), Ordering::Relaxed);
        }
    }

    /// Serializes every job's durable state into a deterministic byte
    /// string: equal fingerprints ⇔ bit-identical frontiers, deployments,
    /// straggler state, and clocks. Works on in-memory servers too, which
    /// is what lets the differential tests compare a crashed-and-recovered
    /// server against an uninterrupted one.
    ///
    /// In-flight submission counters (`next_epoch`) and volatile
    /// observability counters are excluded: they are not part of durable
    /// identity.
    pub fn state_fingerprint(&self) -> Vec<u8> {
        self.snapshot_jobs(true).to_bytes()
    }

    /// Serializes the jobs map for a snapshot or fingerprint. Jobs are
    /// sorted by name and straggler maps by accelerator id, so equal
    /// states always yield equal bytes. `for_fingerprint` zeroes the
    /// in-flight submission counter (see
    /// [`PerseusServer::state_fingerprint`]).
    pub(crate) fn snapshot_jobs(&self, for_fingerprint: bool) -> Vec<JobSnapshot> {
        let jobs = self.jobs.read();
        let mut names: Vec<&String> = jobs.keys().collect();
        names.sort();
        names
            .into_iter()
            .map(|name| {
                let job = &jobs[name];
                let state = job.state.read();
                let mut stragglers: Vec<(usize, f64)> =
                    state.stragglers.iter().map(|(k, v)| (*k, *v)).collect();
                stragglers.sort_by_key(|&(gpu_id, _)| gpu_id);
                JobSnapshot {
                    name: job.name.clone(),
                    pipe: job.pipe.clone(),
                    gpu: job.gpu.clone(),
                    power: job.power.clone(),
                    next_epoch: if for_fingerprint {
                        0
                    } else {
                        job.next_epoch.load(Ordering::Relaxed)
                    },
                    characterized_epoch: state.characterized_epoch,
                    frontier: state.frontier.as_ref().map(|f| (**f).clone()),
                    profiles: state.profiles.clone(),
                    sleep: state.sleep.clone(),
                    degraded: state.degraded,
                    stragglers,
                    pending: state
                        .pending
                        .iter()
                        .map(|p| (p.fire_at, p.gpu_id, p.degree))
                        .collect(),
                    clock_s: state.clock_s,
                    version: state.version,
                    deployed: state.deployed.clone(),
                }
            })
            .collect()
    }

    /// Writes a snapshot of the full server state and compacts the
    /// journal below its watermark. Holds the journal lock throughout —
    /// every mutator takes that lock before touching state, so the
    /// serialized state is a consistent freeze. No-op on an in-memory
    /// server.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] if the snapshot or compaction I/O fails
    /// (the journal itself is still intact and recovery still works —
    /// it just replays more).
    pub fn snapshot_now(&self) -> Result<(), ServerError> {
        let Some(store) = self.store.as_ref() else {
            return Ok(());
        };
        let mut journal = store.journal.lock();
        let snap = ServerSnapshot {
            applied_seq: journal.next_seq().saturating_sub(1),
            jobs: self.snapshot_jobs(false),
        };
        write_snapshot(&store.snapshot_path, &snap.to_bytes())?;
        journal.compact_below(snap.applied_seq)?;
        store.appends_since_snapshot.store(0, Ordering::Relaxed);
        store.snapshots_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshots if enough appends accumulated since the last one.
    /// Called at the end of every mutating API call, after all locks are
    /// released. Snapshot failures are swallowed here: a full disk
    /// degrades durability (longer replay), never the serving path.
    fn maybe_snapshot(&self) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        if store.appends_since_snapshot.load(Ordering::Relaxed)
            >= store.snapshot_every.load(Ordering::Relaxed)
        {
            let _ = self.snapshot_now();
        }
    }

    /// Chaos hook: scribbles `garbage` over the journal's append cursor,
    /// emulating a torn/corrupted tail. Every record appended *after*
    /// this call is unreachable at the next open (the scan stops at the
    /// garbage), exercising recovery's truncate-to-last-valid-record
    /// path. Returns whether a durable journal was actually poisoned.
    pub fn corrupt_journal_tail(&self, garbage: &[u8]) -> bool {
        let Some(store) = self.store.as_ref() else {
            return false;
        };
        store.journal.lock().scribble_garbage(garbage).is_ok()
    }

    /// Absolute path of the write-ahead journal, if this server is
    /// durable. Test/bench hook for crash-point injection.
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.store
            .as_ref()
            .map(|s| s.journal.lock().path().to_path_buf())
    }

    /// Whether this server is the replication leader or a follower.
    /// Standalone servers are leaders.
    pub fn role(&self) -> Role {
        if self.role.load(Ordering::Relaxed) == 0 {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    /// Flips the serving role (promotion / follower construction).
    pub(crate) fn set_role(&self, role: Role) {
        let v = match role {
            Role::Leader => 0,
            Role::Follower => 1,
        };
        self.role.store(v, Ordering::Relaxed);
    }

    /// Sets where [`ServerError::NotLeader`] points callers.
    pub(crate) fn set_leader_hint(&self, hint: String) {
        *self.leader_hint.write() = hint;
    }

    /// The configured leader hint (empty when unset).
    pub(crate) fn leader_hint(&self) -> String {
        self.leader_hint.read().clone()
    }

    /// Fails with [`ServerError::NotLeader`] unless this server is the
    /// leader. Every public mutator calls this; the replicated-apply path
    /// ([`PerseusServer::replay_event`]) deliberately does not.
    fn ensure_leader(&self) -> Result<(), ServerError> {
        if self.role() == Role::Leader {
            return Ok(());
        }
        Err(ServerError::NotLeader {
            hint: self.leader_hint.read().clone(),
        })
    }

    /// Replication counters last mirrored from the follower machinery
    /// (all zero on leaders and standalone servers).
    pub fn replication_stats(&self) -> ReplicationStats {
        ReplicationStats {
            shipped: self.repl_shipped.load(Ordering::Relaxed),
            applied: self.repl_applied.load(Ordering::Relaxed),
            lag_records: self.repl_lag_records.load(Ordering::Relaxed),
            lag_bytes: self.repl_lag_bytes.load(Ordering::Relaxed),
        }
    }

    /// Mirrors follower replication counters into the server (and, with
    /// telemetry enabled, the `perseus_replication_*` gauges) so
    /// [`JobStatus::replication_lag`] and `/metrics` stay current.
    pub(crate) fn set_replication_stats(&self, stats: ReplicationStats) {
        self.repl_shipped.store(stats.shipped, Ordering::Relaxed);
        self.repl_applied.store(stats.applied, Ordering::Relaxed);
        self.repl_lag_records
            .store(stats.lag_records, Ordering::Relaxed);
        self.repl_lag_bytes
            .store(stats.lag_bytes, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge("perseus_replication_shipped_records")
                .set(stats.shipped as i64);
            self.telemetry
                .gauge("perseus_replication_applied_records")
                .set(stats.applied as i64);
            self.telemetry
                .gauge("perseus_replication_lag_records")
                .set(stats.lag_records as i64);
            self.telemetry
                .gauge("perseus_replication_lag_bytes")
                .set(stats.lag_bytes as i64);
        }
    }

    /// Every journal record with sequence strictly greater than
    /// `after_seq` — the replication feed a [`crate::Replicator`] ships to
    /// followers. The records form a gap-free run ending at the journal's
    /// last appended sequence; if compaction has dropped part of the
    /// requested range, the run starts later than `after_seq + 1` and the
    /// caller must fall back to [`PerseusServer::replication_checkpoint`].
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] on journal I/O failures or when this server
    /// is in-memory (nothing to ship).
    pub fn replication_tail(&self, after_seq: u64) -> Result<Vec<Record>, ServerError> {
        let store = self.durable_store()?;
        let mut journal = store.journal.lock();
        Ok(journal.tail_from(after_seq)?)
    }

    /// Sequence number of the last journaled mutation — the watermark a
    /// fully-caught-up follower has shipped.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] when this server is in-memory.
    pub fn replication_watermark(&self) -> Result<u64, ServerError> {
        let store = self.durable_store()?;
        let journal = store.journal.lock();
        Ok(journal.next_seq().saturating_sub(1))
    }

    /// A consistent full-state checkpoint for follower bootstrap: the
    /// complete jobs map frozen at the journal watermark. Used when the
    /// follower's shipped position predates the leader's oldest surviving
    /// journal record (compaction) — the follower installs the checkpoint
    /// and resumes tailing from its watermark, never replaying from
    /// genesis.
    pub(crate) fn replication_checkpoint(&self) -> Result<ServerSnapshot, ServerError> {
        let store = self.durable_store()?;
        let journal = store.journal.lock();
        Ok(ServerSnapshot {
            applied_seq: journal.next_seq().saturating_sub(1),
            jobs: self.snapshot_jobs(false),
        })
    }

    fn durable_store(&self) -> Result<&Arc<Store>, ServerError> {
        self.store.as_ref().ok_or_else(|| {
            ServerError::Store(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "in-memory server has no journal to replicate",
            )))
        })
    }

    /// Attaches the durable backing a promotion built (see
    /// [`crate::FollowerServer::promote`]). The server must not already
    /// have a store.
    pub(crate) fn attach_store(&mut self, store: Arc<Store>) {
        debug_assert!(self.store.is_none(), "attach_store on a durable server");
        self.store = Some(store);
    }

    /// Sets the drift-watcher threshold: the largest pending
    /// per-computation factor deviation a job tolerates before
    /// [`PerseusServer::ingest_drift`] triggers re-characterization.
    /// Non-finite or non-positive values are ignored.
    pub fn set_drift_threshold(&self, threshold: f64) {
        if threshold.is_finite() && threshold > 0.0 {
            self.drift_threshold
                .store(threshold.to_bits(), Ordering::Relaxed);
        }
    }

    /// The active drift-watcher threshold
    /// ([`DEFAULT_DRIFT_THRESHOLD`] unless overridden).
    pub fn drift_threshold(&self) -> f64 {
        f64::from_bits(self.drift_threshold.load(Ordering::Relaxed))
    }

    /// Drift-triggered re-characterizations submitted so far.
    pub fn drift_replans(&self) -> u64 {
        self.drift_replans.load(Ordering::Relaxed)
    }

    /// Feeds streaming profile-drift deltas (cumulative factors vs. the
    /// profiling baseline, e.g. from
    /// [`perseus_profiler::ProfileDrift::step`]) into the job's drift
    /// watcher. Deltas accumulate silently until the largest *pending*
    /// deviation — drift not yet absorbed by a re-plan — reaches the
    /// threshold; then the job's current profiles are rescaled by the
    /// pending factors and resubmitted through the normal
    /// characterization path: epoch bump, warm-started solve on the
    /// job's cached [`FrontierSolver`] artifacts, Kareus sleep plans
    /// re-derived, and — when a fleet [`PlanCache`] is attached — a cache
    /// epoch advance plus `InvalidateOlderThan`, because drifted profiles
    /// invalidate structurally-shared plans fleet-wide.
    ///
    /// Returns `Ok(None)` while below threshold, `Ok(Some(ticket))` for
    /// the re-characterization it triggered.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] / [`ServerError::NotCharacterized`]
    /// when there is nothing to re-plan;
    /// [`ServerError::NotLeader`] on a replication follower.
    pub fn ingest_drift(
        &self,
        name: &str,
        deltas: &[ProfileDelta<OpKey>],
    ) -> Result<Option<CharacterizeTicket>, ServerError> {
        self.ensure_leader()?;
        let job = self.job(name)?;
        let threshold = self.drift_threshold();
        let replan = {
            let mut state = job.state.write();
            if state.profiles.is_none() {
                return Err(ServerError::NotCharacterized(name.to_string()));
            }
            for d in deltas {
                let acc = state.drift.entry(d.key).or_default();
                acc.latest = (d.time_factor, d.energy_factor);
            }
            let pending = state
                .drift
                .values()
                .map(DriftAccum::pending_magnitude)
                .fold(0.0, f64::max);
            if pending < threshold {
                None
            } else {
                let profiles = state.profiles.as_ref().expect("checked above");
                let mut scaled = ProfileDb::new();
                for (key, profile) in profiles.iter() {
                    let (tf, ef) = state
                        .drift
                        .get(key)
                        .map_or((1.0, 1.0), DriftAccum::pending_factors);
                    scaled.insert(*key, scale_profile(profile, tf, ef));
                }
                let opts = state.last_opts.clone().unwrap_or_default();
                for acc in state.drift.values_mut() {
                    acc.commit();
                }
                Some((scaled, opts))
            }
        };
        let Some((profiles, opts)) = replan else {
            return Ok(None);
        };
        self.drift_replans.fetch_add(1, Ordering::Relaxed);
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_with("perseus_server_drift_replans_total", &[("job", name)])
                .inc();
        }
        // Drifted profiles poison structurally-shared plans fleet-wide:
        // open a new cache epoch and drop everything older (journaled as
        // `InvalidateOlderThan` by durable caches).
        if let Some(cache) = self.plan_cache.read().clone() {
            let epoch = cache.advance_epoch();
            cache.invalidate_older_than(epoch);
        }
        self.submit_profiles(name, profiles, &opts).map(Some)
    }

    /// Attaches (or, with `None`, detaches) the fleet-wide cross-job plan
    /// cache. Subsequent characterizations consult it before running the
    /// solver; a hit skips the solve entirely and is counted in the job's
    /// [`SolverStats::cache_hits`]. Detaching never invalidates — the
    /// cache belongs to the fleet, not this server.
    pub fn set_plan_cache(&self, cache: Option<Arc<PlanCache>>) {
        *self.plan_cache.write() = cache;
    }

    /// The attached fleet plan cache, if any.
    pub fn plan_cache(&self) -> Option<Arc<PlanCache>> {
        self.plan_cache.read().clone()
    }

    /// Bounds how many characterizations may be in flight at once
    /// (admission control); further submissions are rejected with
    /// [`ServerError::Overloaded`] until slots free up. `0` (the default)
    /// means unbounded. Lowering the bound never cancels work already
    /// admitted.
    pub fn set_max_inflight(&self, limit: u64) {
        self.max_inflight.store(limit, Ordering::Relaxed);
    }

    /// The configured in-flight bound (`0` = unbounded).
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight.load(Ordering::Relaxed)
    }

    /// Characterizations currently admitted but not yet completed.
    pub fn inflight_characterizations(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently in-flight characterizations since
    /// this server started — the stress tests assert it never exceeds
    /// [`PerseusServer::max_inflight`].
    pub fn peak_inflight_characterizations(&self) -> u64 {
        self.peak_inflight.load(Ordering::Relaxed)
    }
}
