//! The Perseus server: frontier characterization, schedule cache, and the
//! straggler notification state machine (§3.2 workflow steps ②–⑤).

use std::collections::HashMap;
use std::fmt;

use perseus_core::{characterize, CoreError, EnergySchedule, FrontierOptions, ParetoFrontier, PlanContext};
use perseus_gpu::GpuSpec;
use perseus_pipeline::{OpKey, PipelineDag};
use perseus_profiler::ProfileDb;

/// A training job registration: the computation DAG plus the GPU model the
/// pipeline runs on ("a training job is primarily specified by its
/// computation DAG", §3.2).
#[derive(Debug)]
pub struct JobSpec {
    /// Unique job name.
    pub name: String,
    /// The pipeline's computation DAG for one iteration.
    pub pipe: PipelineDag,
    /// GPU model of the pipeline's accelerators.
    pub gpu: GpuSpec,
}

/// Errors from server operations.
#[derive(Debug)]
pub enum ServerError {
    /// No job registered under this name.
    UnknownJob(String),
    /// A job with this name already exists.
    DuplicateJob(String),
    /// The job has not been characterized yet (no profiles submitted).
    NotCharacterized(String),
    /// Frontier characterization failed.
    Core(CoreError),
    /// Straggler degree must be at least 1.0 (1.0 = back to normal).
    InvalidDegree(f64),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownJob(n) => write!(f, "unknown job {n:?}"),
            ServerError::DuplicateJob(n) => write!(f, "job {n:?} already registered"),
            ServerError::NotCharacterized(n) => write!(f, "job {n:?} has no frontier yet"),
            ServerError::Core(e) => write!(f, "characterization failed: {e}"),
            ServerError::InvalidDegree(d) => write!(f, "invalid straggler degree {d}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

/// A schedule deployment pushed to the clients.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Monotonic version; clients apply the highest version they have seen.
    pub version: u64,
    /// The straggler iteration time this deployment answers (`T_min` when
    /// there is no straggler).
    pub t_prime: f64,
    /// Planned iteration time of the deployed frontier point.
    pub planned_time_s: f64,
    /// The deployed schedule.
    pub schedule: EnergySchedule,
}

#[derive(Debug, Clone, Copy)]
struct PendingStraggler {
    fire_at: f64,
    gpu_id: usize,
    degree: f64,
}

struct JobState {
    pipe: PipelineDag,
    gpu: GpuSpec,
    frontier: Option<ParetoFrontier>,
    /// Active straggler degree per accelerator id.
    stragglers: HashMap<usize, f64>,
    pending: Vec<PendingStraggler>,
    clock_s: f64,
    version: u64,
    deployed: Option<Deployment>,
}

/// The Perseus server: one per training cluster, managing any number of
/// jobs.
#[derive(Default)]
pub struct PerseusServer {
    jobs: HashMap<String, JobState>,
}

impl PerseusServer {
    /// Creates an empty server.
    pub fn new() -> PerseusServer {
        PerseusServer::default()
    }

    /// Registers a job (§3.2 step ⓪).
    ///
    /// # Errors
    ///
    /// [`ServerError::DuplicateJob`] if the name is taken.
    pub fn register_job(&mut self, spec: JobSpec) -> Result<(), ServerError> {
        if self.jobs.contains_key(&spec.name) {
            return Err(ServerError::DuplicateJob(spec.name));
        }
        self.jobs.insert(
            spec.name,
            JobState {
                pipe: spec.pipe,
                gpu: spec.gpu,
                frontier: None,
                stragglers: HashMap::new(),
                pending: Vec::new(),
                clock_s: 0.0,
                version: 0,
                deployed: None,
            },
        );
        Ok(())
    }

    fn job_mut(&mut self, name: &str) -> Result<&mut JobState, ServerError> {
        self.jobs.get_mut(name).ok_or_else(|| ServerError::UnknownJob(name.to_string()))
    }

    fn job(&self, name: &str) -> Result<&JobState, ServerError> {
        self.jobs.get(name).ok_or_else(|| ServerError::UnknownJob(name.to_string()))
    }

    /// Receives the client's profiling results, characterizes the Pareto
    /// frontier (step ②), and deploys the shortest-iteration-time schedule
    /// (step ③). Returns that initial deployment.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn submit_profiles(
        &mut self,
        name: &str,
        profiles: ProfileDb<OpKey>,
        opts: &FrontierOptions,
    ) -> Result<Deployment, ServerError> {
        let job = self.job_mut(name)?;
        let frontier = {
            let ctx = PlanContext::new(&job.pipe, &job.gpu, profiles)?;
            characterize(&ctx, opts)?
        };
        job.frontier = Some(frontier);
        let deployment = Self::deploy_locked(job);
        Ok(deployment)
    }

    /// Effective straggler iteration time given the active stragglers:
    /// `T' = T_min × max(degree)`.
    fn effective_t_prime(job: &JobState) -> f64 {
        let frontier = job.frontier.as_ref().expect("deploy only after characterization");
        let worst = job.stragglers.values().copied().fold(1.0, f64::max);
        frontier.t_min() * worst
    }

    fn deploy_locked(job: &mut JobState) -> Deployment {
        let t_prime = Self::effective_t_prime(job);
        let frontier = job.frontier.as_ref().expect("characterized");
        let point = frontier.lookup(t_prime);
        job.version += 1;
        let deployment = Deployment {
            version: job.version,
            t_prime,
            planned_time_s: point.planned_time_s,
            schedule: point.schedule.clone(),
        };
        job.deployed = Some(deployment.clone());
        deployment
    }

    /// Table 2 `server.set_straggler(id, delay, degree)`: a straggler on
    /// accelerator `gpu_id` is anticipated `delay_s` seconds from now with
    /// iteration-time inflation `degree`. `degree == 1.0` announces the
    /// straggler's return to normal. Takes effect when the simulated clock
    /// passes the deadline (see [`PerseusServer::advance_time`]); a zero
    /// delay applies immediately and returns the new deployment.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidDegree`] for degrees below 1.0,
    /// [`ServerError::NotCharacterized`] before profiles are submitted.
    pub fn set_straggler(
        &mut self,
        name: &str,
        gpu_id: usize,
        delay_s: f64,
        degree: f64,
    ) -> Result<Option<Deployment>, ServerError> {
        if !(degree >= 1.0 && degree.is_finite()) {
            return Err(ServerError::InvalidDegree(degree));
        }
        let job = self.job_mut(name)?;
        if job.frontier.is_none() {
            return Err(ServerError::NotCharacterized(name.to_string()));
        }
        if delay_s <= 0.0 {
            if degree > 1.0 {
                job.stragglers.insert(gpu_id, degree);
            } else {
                job.stragglers.remove(&gpu_id);
            }
            return Ok(Some(Self::deploy_locked(job)));
        }
        job.pending.push(PendingStraggler { fire_at: job.clock_s + delay_s, gpu_id, degree });
        Ok(None)
    }

    /// Advances the job's simulated clock, firing any pending straggler
    /// notifications whose deadline passed. Returns the deployments issued
    /// (at most one per distinct firing instant, in order).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for unregistered names.
    pub fn advance_time(&mut self, name: &str, dt_s: f64) -> Result<Vec<Deployment>, ServerError> {
        let job = self.job_mut(name)?;
        job.clock_s += dt_s.max(0.0);
        let now = job.clock_s;
        let mut due: Vec<PendingStraggler> =
            job.pending.iter().copied().filter(|p| p.fire_at <= now).collect();
        job.pending.retain(|p| p.fire_at > now);
        due.sort_by(|a, b| a.fire_at.total_cmp(&b.fire_at));
        let mut deployments = Vec::new();
        for p in due {
            if p.degree > 1.0 {
                job.stragglers.insert(p.gpu_id, p.degree);
            } else {
                job.stragglers.remove(&p.gpu_id);
            }
            if job.frontier.is_some() {
                deployments.push(Self::deploy_locked(job));
            }
        }
        Ok(deployments)
    }

    /// The schedule currently deployed to the job's clients.
    ///
    /// # Errors
    ///
    /// [`ServerError::NotCharacterized`] before the first deployment.
    pub fn current_deployment(&self, name: &str) -> Result<&Deployment, ServerError> {
        self.job(name)?
            .deployed
            .as_ref()
            .ok_or_else(|| ServerError::NotCharacterized(name.to_string()))
    }

    /// The cached frontier for a job, if characterized.
    pub fn frontier(&self, name: &str) -> Option<&ParetoFrontier> {
        self.jobs.get(name).and_then(|j| j.frontier.as_ref())
    }

    /// Registered job names.
    pub fn job_names(&self) -> Vec<&str> {
        self.jobs.keys().map(String::as_str).collect()
    }
}
