//! The Perseus client: per-accelerator profiling and asynchronous
//! frequency control (§5, Table 2 — `profiler.begin/end`,
//! `controller.set_speed`), plus the job-level client that talks to the
//! server with retry, backoff, and timeouts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use perseus_core::{EnergySchedule, FrontierOptions};
use perseus_gpu::{FreqMHz, SimGpu, Workload};
use perseus_pipeline::{CompKind, OpKey, PipelineDag};
use perseus_profiler::{OnlineProfiler, OpProfile, ProfileDb};

use crate::server::{Deployment, JobStatus, PerseusServer, ServerError};

enum Cmd {
    Set(FreqMHz),
    Flush(Sender<()>),
    Shutdown,
}

/// The asynchronous frequency controller (§5): a separate thread applies
/// SM-clock changes through the (simulated) NVML interface so the training
/// loop never blocks on the ~10 ms set latency.
pub struct AsyncFrequencyController {
    tx: Sender<Cmd>,
    handle: Option<JoinHandle<()>>,
}

impl AsyncFrequencyController {
    /// Spawns the controller thread operating on `gpu`.
    pub fn spawn(gpu: Arc<Mutex<SimGpu>>) -> AsyncFrequencyController {
        let (tx, rx) = unbounded::<Cmd>();
        let handle = std::thread::spawn(move || {
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Cmd::Set(f) => {
                        // Ignore unsupported clocks defensively; the server
                        // only deploys supported ones.
                        let _ = gpu.lock().set_frequency(f);
                    }
                    Cmd::Flush(done) => {
                        let _ = done.send(());
                    }
                    Cmd::Shutdown => break,
                }
            }
        });
        AsyncFrequencyController {
            tx,
            handle: Some(handle),
        }
    }

    /// Queues a frequency change without blocking.
    pub fn set_speed(&self, f: FreqMHz) {
        let _ = self.tx.send(Cmd::Set(f));
    }

    /// Blocks until every queued command has been applied. Tests and
    /// iteration boundaries use this to make the asynchrony deterministic.
    pub fn flush(&self) {
        let (done_tx, done_rx) = unbounded();
        if self.tx.send(Cmd::Flush(done_tx)).is_ok() {
            let _ = done_rx.recv();
        }
    }
}

impl Drop for AsyncFrequencyController {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// How retry delays are randomized. Private so [`ClientConfig`] can stay
/// `Copy` and grow variants without breaking callers.
#[derive(Debug, Clone, Copy)]
enum Jitter {
    /// Decorrelated jitter seeded from the job name — deterministic per
    /// job, decorrelated across jobs (the default).
    Auto,
    /// Decorrelated jitter with an explicit seed (reproducible tests).
    Seeded(u64),
    /// Plain exponential backoff, no randomization (legacy behavior).
    Off,
}

/// FNV-1a 64-bit — seeds per-job jitter and places jobs on the fleet's
/// consistent-hash ring. Not cryptographic; stable across runs.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Decorrelated-jitter backoff: each delay is drawn uniformly from
/// `[base, min(cap, 3 × previous delay)]`, so retry storms from many
/// clients spread out instead of thundering in lockstep while the
/// expected delay still grows geometrically. Deterministic for a given
/// seed — the seeded-determinism tests rely on that.
#[derive(Debug, Clone)]
pub struct DecorrelatedJitter {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
}

impl DecorrelatedJitter {
    /// A jitter source sleeping at least `base` and at most `cap` per
    /// retry, driven by a SplitMix64 stream from `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> DecorrelatedJitter {
        let cap = cap.max(base);
        DecorrelatedJitter {
            base,
            cap,
            prev: base,
            state: seed,
        }
    }

    /// Draws the next delay and advances the stream.
    pub fn next_delay(&mut self) -> Duration {
        let lo = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let hi = self
            .prev
            .saturating_mul(3)
            .min(self.cap)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let span = hi.saturating_sub(lo);
        let draw = if span == 0 {
            lo
        } else {
            lo + splitmix64(&mut self.state) % (span + 1)
        };
        self.prev = Duration::from_nanos(draw);
        self.prev
    }

    /// Rewinds the delay ladder to `base` (e.g. after a success) without
    /// resetting the random stream.
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

/// Builder-style configuration of a [`JobClient`]: retry budget, per-call
/// timeout, and backoff with decorrelated jitter.
///
/// ```
/// use std::time::Duration;
/// use perseus_server::ClientConfig;
///
/// let cfg = ClientConfig::default()
///     .retries(3)
///     .timeout(Duration::from_millis(250));
/// assert_eq!(cfg.max_attempts(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    max_attempts: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    timeout: Duration,
    jitter: Jitter,
}

impl Default for ClientConfig {
    /// 5 attempts, 2 ms base backoff capped at 512 ms, 500 ms per-call
    /// timeout, jitter seeded from the job name.
    fn default() -> ClientConfig {
        ClientConfig {
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(512),
            timeout: Duration::from_millis(500),
            jitter: Jitter::Auto,
        }
    }
}

impl ClientConfig {
    /// Preset for Kareus jobs (registered with
    /// [`JobSpec::power_states`](crate::JobSpec::power_states)): the
    /// characterization a submission waits on also runs the sleep-insertion
    /// pass over every frontier point, so the per-call timeout is doubled
    /// (1 s) and the backoff cap raised (1024 ms). Retry budget and base
    /// backoff match [`ClientConfig::default`]; further builder calls
    /// refine it like any other config.
    pub fn kareus() -> ClientConfig {
        ClientConfig {
            timeout: Duration::from_secs(1),
            max_backoff: Duration::from_millis(1024),
            ..ClientConfig::default()
        }
    }

    /// Sets the attempts per operation, including the first (floored at 1).
    pub fn retries(mut self, max_attempts: u32) -> ClientConfig {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets how long one submission attempt may stay unanswered before the
    /// client resubmits (epoch supersession on the server makes
    /// resubmitting always safe).
    pub fn timeout(mut self, timeout: Duration) -> ClientConfig {
        self.timeout = timeout;
        self
    }

    /// Sets the minimum retry delay — the floor of every jittered draw
    /// (and the first rung of the legacy exponential ladder when jitter is
    /// disabled).
    pub fn backoff(mut self, base_backoff: Duration) -> ClientConfig {
        self.base_backoff = base_backoff;
        self
    }

    /// Sets the ceiling no retry delay ever exceeds.
    pub fn max_backoff(mut self, max_backoff: Duration) -> ClientConfig {
        self.max_backoff = max_backoff;
        self
    }

    /// Seeds the decorrelated jitter explicitly so a test can replay the
    /// exact delay sequence; by default the seed derives from the job name.
    pub fn jitter_seed(mut self, seed: u64) -> ClientConfig {
        self.jitter = Jitter::Seeded(seed);
        self
    }

    /// Disables jitter entirely: plain exponential backoff, delay
    /// `base × 2^attempt` capped at the max backoff.
    pub fn no_jitter(mut self) -> ClientConfig {
        self.jitter = Jitter::Off;
        self
    }

    /// Attempts per operation, including the first.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Per-call timeout.
    pub fn call_timeout(&self) -> Duration {
        self.timeout
    }

    /// Minimum retry delay.
    pub fn base_backoff(&self) -> Duration {
        self.base_backoff
    }

    /// Ceiling on any single retry delay.
    pub fn backoff_cap(&self) -> Duration {
        self.max_backoff
    }

    /// Whether retry delays are jittered.
    pub fn jitter_enabled(&self) -> bool {
        !matches!(self.jitter, Jitter::Off)
    }

    /// The jitter source this config produces for `job`, or `None` when
    /// jitter is disabled.
    fn make_jitter(&self, job: &str) -> Option<DecorrelatedJitter> {
        let seed = match self.jitter {
            Jitter::Auto => fnv64(job.as_bytes()),
            Jitter::Seeded(s) => s,
            Jitter::Off => return None,
        };
        Some(DecorrelatedJitter::new(
            self.base_backoff,
            self.max_backoff,
            seed,
        ))
    }
}

/// The job-level client: the piece of the training framework that talks
/// to the planning server about one job, hardened against the faults a
/// production control plane actually sees — lost submissions, panicked
/// characterization workers, slow responses. Every operation retries
/// with jittered backoff up to the policy's budget; transient errors
/// ([`ServerError::SubmissionLost`],
/// [`ServerError::CharacterizationPanicked`], [`ServerError::Overloaded`]
/// admission pushback, timeouts, and `NotCharacterized` races on
/// straggler notifications) are retried, everything else surfaces
/// immediately.
///
/// [`ServerError::NotLeader`] is also retryable: the target demoted (or
/// we were pointed at a replication follower), so the client re-resolves
/// the leader through its [resolver](JobClient::set_resolver) — swapping
/// its server handle to the answer — and retries there. Without a
/// resolver the retry budget simply drains against the follower,
/// surfacing [`ServerError::RetriesExhausted`].
pub struct JobClient {
    /// Swapped on failover — see [`JobClient::set_resolver`].
    server: RwLock<Arc<PerseusServer>>,
    job: String,
    config: ClientConfig,
    retries: AtomicU64,
    /// Successful leader re-resolutions (handle swaps) so far.
    failovers: AtomicU64,
    #[allow(clippy::type_complexity)]
    resolver: Mutex<Option<Box<dyn Fn(&str) -> Option<Arc<PerseusServer>> + Send + Sync>>>,
    jitter: Mutex<Option<DecorrelatedJitter>>,
}

impl JobClient {
    /// A client for `job` on `server` with the default [`ClientConfig`].
    pub fn new(server: Arc<PerseusServer>, job: impl Into<String>) -> JobClient {
        JobClient::with_config(server, job, ClientConfig::default())
    }

    /// A client for `job` on `server` with an explicit [`ClientConfig`].
    pub fn with_config(
        server: Arc<PerseusServer>,
        job: impl Into<String>,
        config: ClientConfig,
    ) -> JobClient {
        let job = job.into();
        let jitter = Mutex::new(config.make_jitter(&job));
        JobClient {
            server: RwLock::new(server),
            job,
            config,
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            resolver: Mutex::new(None),
            jitter,
        }
    }

    /// The job this client manages.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// The server handle the next call will use (swapped on failover).
    pub fn server(&self) -> Arc<PerseusServer> {
        Arc::clone(&self.server.read())
    }

    /// Installs the leader resolver: on [`ServerError::NotLeader`] the
    /// client calls it with the error's hint (possibly empty) and, if it
    /// answers, swaps its server handle to the returned leader before
    /// retrying. This is the in-process stand-in for DNS / service
    /// discovery re-resolution in a networked deployment.
    pub fn set_resolver(
        &self,
        resolver: impl Fn(&str) -> Option<Arc<PerseusServer>> + Send + Sync + 'static,
    ) {
        *self.resolver.lock() = Some(Box::new(resolver));
    }

    /// Successful leader re-resolutions so far (observability).
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Handles a [`ServerError::NotLeader`] answer: re-resolve the leader
    /// and swap the handle. Returns whether the handle changed.
    fn re_resolve(&self, hint: &str) -> bool {
        let resolver = self.resolver.lock();
        let Some(resolve) = resolver.as_ref() else {
            return false;
        };
        let Some(leader) = resolve(hint) else {
            return false;
        };
        *self.server.write() = leader;
        self.failovers.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// This client's configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The unified status of this client's job — deployment, solver reuse
    /// stats, chaos counters, degradation flag, epoch — in one read.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] if the job was never registered.
    pub fn status(&self) -> Result<JobStatus, ServerError> {
        self.server.read().job_status(&self.job)
    }

    /// Retries performed so far across all operations (observability).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The delay the next retry will sleep: a decorrelated-jitter draw, or
    /// the legacy exponential ladder when jitter is disabled. Split from
    /// [`JobClient::backoff`] so determinism tests can observe delays
    /// without sleeping (each call advances the jitter stream).
    pub fn next_backoff_delay(&self, attempt: u32) -> Duration {
        match self.jitter.lock().as_mut() {
            Some(j) => j.next_delay(),
            None => {
                // Exponential: base × 2^attempt, capped so chaos tests
                // stay fast.
                let exp = attempt.min(8);
                self.config
                    .base_backoff
                    .saturating_mul(1 << exp)
                    .min(self.config.max_backoff)
            }
        }
    }

    fn backoff(&self, attempt: u32) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.next_backoff_delay(attempt));
    }

    /// Submits profiles and waits for the resulting deployment, retrying
    /// lost/panicked/slow submissions. If a concurrent submission
    /// supersedes ours, the winning deployment is returned — the job is
    /// characterized either way, which is all the caller needs.
    ///
    /// # Errors
    ///
    /// [`ServerError::RetriesExhausted`] once the budget is spent;
    /// non-transient server errors immediately.
    pub fn submit_profiles_with_retry(
        &self,
        profiles: &ProfileDb<OpKey>,
        opts: &FrontierOptions,
    ) -> Result<Deployment, ServerError> {
        for attempt in 0..self.config.max_attempts.max(1) {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            let server = self.server();
            let ticket = match server.submit_profiles(&self.job, profiles.clone(), opts) {
                Ok(t) => t,
                // Admission pushback: the server is at its in-flight
                // characterization bound. A slot frees as soon as any
                // running characterization finishes, so back off and retry
                // — jitter keeps a fleet of pushed-back clients from
                // re-stampeding in lockstep.
                Err(ServerError::Overloaded { .. }) => continue,
                // Demoted target (or we were handed a follower): swap to
                // the hinted leader and retry there. Without a resolver
                // retrying is hopeless — the role won't change under us —
                // so surface the error instead of burning the budget.
                Err(ServerError::NotLeader { hint }) => {
                    if !self.re_resolve(&hint) {
                        return Err(ServerError::NotLeader { hint });
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            match ticket.wait_timeout(self.config.timeout) {
                Some(Ok(d)) => return Ok(d),
                Some(Err(ServerError::Superseded(_))) => {
                    // A newer submission won; its deployment answers ours.
                    return server
                        .job_status(&self.job)?
                        .deployment
                        .ok_or_else(|| ServerError::NotCharacterized(self.job.clone()));
                }
                Some(Err(
                    ServerError::SubmissionLost(_) | ServerError::CharacterizationPanicked(_),
                )) => continue,
                Some(Err(e)) => return Err(e),
                // Timeout: the slow attempt may still land later; the
                // resubmission's higher epoch wins if both finish.
                None => continue,
            }
        }
        Err(ServerError::RetriesExhausted(self.job.clone()))
    }

    /// Notifies the server of a straggler (Table 2
    /// `server.set_straggler`), retrying transient failures so every
    /// notification is eventually answered even while the job is being
    /// (re-)characterized.
    ///
    /// # Errors
    ///
    /// [`ServerError::RetriesExhausted`] once the budget is spent;
    /// non-transient errors (e.g. `InvalidDegree`) immediately.
    pub fn notify_straggler_with_retry(
        &self,
        gpu_id: usize,
        delay_s: f64,
        degree: f64,
    ) -> Result<Option<Deployment>, ServerError> {
        for attempt in 0..self.config.max_attempts.max(1) {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            match self
                .server()
                .set_straggler(&self.job, gpu_id, delay_s, degree)
            {
                Ok(d) => return Ok(d),
                // Not characterized *yet*: an initial characterization may
                // still be in flight on the worker pool.
                Err(ServerError::NotCharacterized(_)) => continue,
                // Demoted target: re-resolve the leader and retry there;
                // unresolvable demotions surface immediately.
                Err(ServerError::NotLeader { hint }) => {
                    if !self.re_resolve(&hint) {
                        return Err(ServerError::NotLeader { hint });
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(ServerError::RetriesExhausted(self.job.clone()))
    }
}

/// One client process per accelerator (Table 2): owns the device, profiles
/// computations in vivo, and realizes deployed energy schedules.
pub struct ClientSession {
    stage: usize,
    gpu: Arc<Mutex<SimGpu>>,
    controller: AsyncFrequencyController,
    /// Per-kind frequency queues in stage-program order, refilled each
    /// iteration from the deployed schedule.
    plan: Vec<(CompKind, FreqMHz)>,
    cursor: usize,
    profiling: Option<(CompKind, f64, f64)>,
}

impl ClientSession {
    /// Creates a client managing `gpu` for pipeline stage `stage`.
    pub fn new(stage: usize, gpu: SimGpu) -> ClientSession {
        let gpu = Arc::new(Mutex::new(gpu));
        let controller = AsyncFrequencyController::spawn(Arc::clone(&gpu));
        ClientSession {
            stage,
            gpu,
            controller,
            plan: Vec::new(),
            cursor: 0,
            profiling: None,
        }
    }

    /// The stage this client serves.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Shared handle to the device (for inspection in tests/emulators).
    pub fn gpu(&self) -> Arc<Mutex<SimGpu>> {
        Arc::clone(&self.gpu)
    }

    /// Table 2 `profiler.begin(type)` — start a time/energy measurement.
    pub fn begin_profile(&mut self, kind: CompKind) {
        let g = self.gpu.lock();
        self.profiling = Some((kind, g.clock_s(), g.energy_counter_j()));
    }

    /// Table 2 `profiler.end(type)` — finish the measurement started by
    /// [`ClientSession::begin_profile`]; returns `(time_s, energy_j)`.
    ///
    /// # Panics
    ///
    /// Panics if no measurement is in flight or the kind mismatches —
    /// that is a framework-integration bug, mirroring the paper's wrapper
    /// contract.
    pub fn end_profile(&mut self, kind: CompKind) -> (f64, f64) {
        let (k0, t0, e0) = self.profiling.take().expect("begin_profile not called");
        assert_eq!(k0, kind, "mismatched begin/end profile kinds");
        let g = self.gpu.lock();
        (g.clock_s() - t0, g.energy_counter_j() - e0)
    }

    /// Runs the §5 online frequency sweep for one computation type.
    pub fn profile_sweep(&mut self, w: &Workload, profiler: &OnlineProfiler) -> OpProfile {
        profiler.profile(&mut self.gpu.lock(), w)
    }

    /// Loads the frequencies this stage must use, in stage-program order,
    /// from a deployed schedule.
    pub fn load_schedule(&mut self, pipe: &PipelineDag, schedule: &EnergySchedule) {
        self.plan.clear();
        self.cursor = 0;
        // Pipeline nodes are created in stage-program order per stage, so
        // filtering preserves execution order.
        for (id, c) in pipe.computations() {
            if c.stage == self.stage {
                if let Some(f) = schedule.freq_of(id) {
                    self.plan.push((c.kind, f));
                }
            }
        }
    }

    /// Table 2 `controller.set_speed(type)` — called by the training
    /// framework right before running the next computation of `kind`;
    /// queues the planned frequency asynchronously.
    ///
    /// # Panics
    ///
    /// Panics if called more times per iteration than the schedule has
    /// computations, or out of program order — framework bugs.
    pub fn set_speed(&mut self, kind: CompKind) {
        let (k, f) = self
            .plan
            .get(self.cursor)
            .copied()
            .expect("schedule exhausted");
        assert_eq!(k, kind, "set_speed out of program order");
        self.controller.set_speed(f);
        self.cursor += 1;
        if self.cursor == self.plan.len() {
            self.cursor = 0; // next iteration repeats the plan
        }
    }

    /// Waits for queued frequency changes to land (iteration boundary).
    pub fn sync(&self) {
        self.controller.flush();
    }
}
