//! The Perseus client: per-accelerator profiling and asynchronous
//! frequency control (§5, Table 2 — `profiler.begin/end`,
//! `controller.set_speed`).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use perseus_core::EnergySchedule;
use perseus_gpu::{FreqMHz, SimGpu, Workload};
use perseus_pipeline::{CompKind, PipelineDag};
use perseus_profiler::{OnlineProfiler, OpProfile};

enum Cmd {
    Set(FreqMHz),
    Flush(Sender<()>),
    Shutdown,
}

/// The asynchronous frequency controller (§5): a separate thread applies
/// SM-clock changes through the (simulated) NVML interface so the training
/// loop never blocks on the ~10 ms set latency.
pub struct AsyncFrequencyController {
    tx: Sender<Cmd>,
    handle: Option<JoinHandle<()>>,
}

impl AsyncFrequencyController {
    /// Spawns the controller thread operating on `gpu`.
    pub fn spawn(gpu: Arc<Mutex<SimGpu>>) -> AsyncFrequencyController {
        let (tx, rx) = unbounded::<Cmd>();
        let handle = std::thread::spawn(move || {
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    Cmd::Set(f) => {
                        // Ignore unsupported clocks defensively; the server
                        // only deploys supported ones.
                        let _ = gpu.lock().set_frequency(f);
                    }
                    Cmd::Flush(done) => {
                        let _ = done.send(());
                    }
                    Cmd::Shutdown => break,
                }
            }
        });
        AsyncFrequencyController {
            tx,
            handle: Some(handle),
        }
    }

    /// Queues a frequency change without blocking.
    pub fn set_speed(&self, f: FreqMHz) {
        let _ = self.tx.send(Cmd::Set(f));
    }

    /// Blocks until every queued command has been applied. Tests and
    /// iteration boundaries use this to make the asynchrony deterministic.
    pub fn flush(&self) {
        let (done_tx, done_rx) = unbounded();
        if self.tx.send(Cmd::Flush(done_tx)).is_ok() {
            let _ = done_rx.recv();
        }
    }
}

impl Drop for AsyncFrequencyController {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One client process per accelerator (Table 2): owns the device, profiles
/// computations in vivo, and realizes deployed energy schedules.
pub struct ClientSession {
    stage: usize,
    gpu: Arc<Mutex<SimGpu>>,
    controller: AsyncFrequencyController,
    /// Per-kind frequency queues in stage-program order, refilled each
    /// iteration from the deployed schedule.
    plan: Vec<(CompKind, FreqMHz)>,
    cursor: usize,
    profiling: Option<(CompKind, f64, f64)>,
}

impl ClientSession {
    /// Creates a client managing `gpu` for pipeline stage `stage`.
    pub fn new(stage: usize, gpu: SimGpu) -> ClientSession {
        let gpu = Arc::new(Mutex::new(gpu));
        let controller = AsyncFrequencyController::spawn(Arc::clone(&gpu));
        ClientSession {
            stage,
            gpu,
            controller,
            plan: Vec::new(),
            cursor: 0,
            profiling: None,
        }
    }

    /// The stage this client serves.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Shared handle to the device (for inspection in tests/emulators).
    pub fn gpu(&self) -> Arc<Mutex<SimGpu>> {
        Arc::clone(&self.gpu)
    }

    /// Table 2 `profiler.begin(type)` — start a time/energy measurement.
    pub fn begin_profile(&mut self, kind: CompKind) {
        let g = self.gpu.lock();
        self.profiling = Some((kind, g.clock_s(), g.energy_counter_j()));
    }

    /// Table 2 `profiler.end(type)` — finish the measurement started by
    /// [`ClientSession::begin_profile`]; returns `(time_s, energy_j)`.
    ///
    /// # Panics
    ///
    /// Panics if no measurement is in flight or the kind mismatches —
    /// that is a framework-integration bug, mirroring the paper's wrapper
    /// contract.
    pub fn end_profile(&mut self, kind: CompKind) -> (f64, f64) {
        let (k0, t0, e0) = self.profiling.take().expect("begin_profile not called");
        assert_eq!(k0, kind, "mismatched begin/end profile kinds");
        let g = self.gpu.lock();
        (g.clock_s() - t0, g.energy_counter_j() - e0)
    }

    /// Runs the §5 online frequency sweep for one computation type.
    pub fn profile_sweep(&mut self, w: &Workload, profiler: &OnlineProfiler) -> OpProfile {
        profiler.profile(&mut self.gpu.lock(), w)
    }

    /// Loads the frequencies this stage must use, in stage-program order,
    /// from a deployed schedule.
    pub fn load_schedule(&mut self, pipe: &PipelineDag, schedule: &EnergySchedule) {
        self.plan.clear();
        self.cursor = 0;
        // Pipeline nodes are created in stage-program order per stage, so
        // filtering preserves execution order.
        for (id, c) in pipe.computations() {
            if c.stage == self.stage {
                if let Some(f) = schedule.freq_of(id) {
                    self.plan.push((c.kind, f));
                }
            }
        }
    }

    /// Table 2 `controller.set_speed(type)` — called by the training
    /// framework right before running the next computation of `kind`;
    /// queues the planned frequency asynchronously.
    ///
    /// # Panics
    ///
    /// Panics if called more times per iteration than the schedule has
    /// computations, or out of program order — framework bugs.
    pub fn set_speed(&mut self, kind: CompKind) {
        let (k, f) = self
            .plan
            .get(self.cursor)
            .copied()
            .expect("schedule exhausted");
        assert_eq!(k, kind, "set_speed out of program order");
        self.controller.set_speed(f);
        self.cursor += 1;
        if self.cursor == self.plan.len() {
            self.cursor = 0; // next iteration repeats the plan
        }
    }

    /// Waits for queued frequency changes to land (iteration boundary).
    pub fn sync(&self) {
        self.controller.flush();
    }
}
