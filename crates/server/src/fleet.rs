//! Fleet-scale multi-tenant planning: one front door over many
//! [`PerseusServer`] shards.
//!
//! A hyperscaler runs thousands of concurrent training jobs, not one. The
//! single-server design (one jobs map, one worker pool, one journal)
//! serializes on its locks and its WAL long before that scale. The
//! [`FleetServer`] keeps the per-job semantics bit-identical while scaling
//! out three ways:
//!
//! * **Sharding** — job state is partitioned across N independent
//!   [`PerseusServer`] shards by consistent hashing on the job name (a
//!   hash ring with virtual nodes, so shard loads stay balanced and the
//!   mapping is stable under job churn). Each shard has its own worker
//!   pool, lock domain, and — when durable — its own journal directory.
//! * **Admission control** — every shard bounds its in-flight
//!   characterizations; past the bound, submissions are rejected with
//!   [`ServerError::Overloaded`] and the [`crate::JobClient`] retries with
//!   jittered backoff instead of queueing unboundedly.
//! * **Per-tenant quotas** — a token bucket per [`TenantId`] rate-limits
//!   submissions (and, optionally, lookups) so one runaway tenant cannot
//!   starve the fleet. The bucket clock is the fleet's own deterministic
//!   clock, advanced explicitly via [`FleetServer::advance_clock`], so
//!   quota behavior is exactly testable.
//!
//! The headline cross-job optimization is the **fleet-wide plan cache**
//! ([`PlanCache`]): all shards share one cache keyed by the structural
//! [`perseus_core::PlanFingerprint`] of (profiles, DAG shape, GPU model,
//! frontier options). Large fleets are structurally repetitive — the same
//! model zoo entries at the same parallelism degrees — so most jobs hit a
//! fingerprint some earlier job already solved and skip the frontier
//! solver entirely.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use perseus_core::{FrontierOptions, PlanCache, PlanCacheStats};
use perseus_pipeline::OpKey;
use perseus_profiler::ProfileDb;
use perseus_telemetry::{
    pipeline::render_alerts_json, slo::render_slo_json, Endpoints, MetricsSnapshot,
    SnapshotBuilder, Telemetry, TelemetryServer,
};

use crate::client::{fnv64, ClientConfig, JobClient};
use crate::server::{
    CharacterizeTicket, Deployment, JobSpec, JobStatus, PerseusServer, ServerError,
};

/// An accounting principal: the team or workload class a job bills its
/// planning-service usage to. Job names are globally unique; tenants
/// group many jobs under one quota.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub String);

impl TenantId {
    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> TenantId {
        TenantId(s.to_string())
    }
}

impl From<String> for TenantId {
    fn from(s: String) -> TenantId {
        TenantId(s)
    }
}

/// Shape of a [`FleetServer`]: shard fan-out, per-shard admission bounds,
/// and per-tenant token-bucket quotas.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of [`PerseusServer`] shards (at least 1). For a durable
    /// fleet this must match across reopens of the same root directory —
    /// the ring, and therefore each job's home shard, is a function of it.
    pub shards: usize,
    /// Planning workers per shard.
    pub workers_per_shard: usize,
    /// In-flight characterization bound per shard; `0` = unbounded.
    pub max_inflight_per_shard: u64,
    /// Token-bucket capacity per tenant (burst). `f64::INFINITY` (the
    /// default) disables quotas entirely.
    pub tenant_burst: f64,
    /// Token refill rate per tenant per second of fleet-clock time.
    pub tenant_refill_per_s: f64,
    /// Tokens one profile submission costs.
    pub submit_cost: f64,
    /// Tokens one status lookup costs (`0.0` = lookups are free).
    pub lookup_cost: f64,
    /// Virtual nodes per shard on the consistent-hash ring. More vnodes
    /// flatten the load split at the price of a larger ring.
    pub virtual_nodes: usize,
    /// Give each shard its own metric registry instead of sharing the
    /// fleet's telemetry handle. With disjoint registries,
    /// [`FleetServer::metrics_rollup`] is an exact sum over shards —
    /// every rolled-up counter equals the sum of the per-shard counters
    /// (the obs-suite gate). Off by default: one shared registry is
    /// cheaper and fine when nobody reads per-shard breakdowns.
    pub sharded_telemetry: bool,
}

impl Default for FleetConfig {
    /// 4 shards × 1 worker, unbounded admission, quotas disabled,
    /// 32 virtual nodes per shard.
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            workers_per_shard: 1,
            max_inflight_per_shard: 0,
            tenant_burst: f64::INFINITY,
            tenant_refill_per_s: 0.0,
            submit_cost: 1.0,
            lookup_cost: 0.0,
            virtual_nodes: 32,
            sharded_telemetry: false,
        }
    }
}

impl FleetConfig {
    /// Sets the shard count (floored at 1).
    pub fn shards(mut self, shards: usize) -> FleetConfig {
        self.shards = shards.max(1);
        self
    }

    /// Sets planning workers per shard (floored at 1).
    pub fn workers_per_shard(mut self, n: usize) -> FleetConfig {
        self.workers_per_shard = n.max(1);
        self
    }

    /// Sets the per-shard in-flight characterization bound (`0` =
    /// unbounded).
    pub fn max_inflight_per_shard(mut self, limit: u64) -> FleetConfig {
        self.max_inflight_per_shard = limit;
        self
    }

    /// Enables per-tenant quotas: `burst` tokens of capacity refilling at
    /// `refill_per_s` tokens per fleet-clock second.
    pub fn tenant_quota(mut self, burst: f64, refill_per_s: f64) -> FleetConfig {
        self.tenant_burst = burst;
        self.tenant_refill_per_s = refill_per_s;
        self
    }

    /// Sets the token cost of one submission / one lookup.
    pub fn costs(mut self, submit: f64, lookup: f64) -> FleetConfig {
        self.submit_cost = submit;
        self.lookup_cost = lookup;
        self
    }

    /// Sets virtual nodes per shard on the hash ring (floored at 1).
    pub fn virtual_nodes(mut self, vnodes: usize) -> FleetConfig {
        self.virtual_nodes = vnodes.max(1);
        self
    }

    /// Gives each shard a private metric registry so
    /// [`FleetServer::metrics_rollup`] sums exactly over shards.
    pub fn sharded_telemetry(mut self, on: bool) -> FleetConfig {
        self.sharded_telemetry = on;
        self
    }
}

/// One tenant's token bucket.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    /// Fleet-clock time of the last refill.
    last_s: f64,
}

/// All quota state behind one lock: the fleet clock plus every tenant's
/// bucket. Submissions touch it once (a refill + a compare) — far cheaper
/// than the characterization they gate.
#[derive(Debug)]
struct TenantState {
    clock_s: f64,
    buckets: HashMap<TenantId, TokenBucket>,
}

/// A point-in-time snapshot of fleet accounting. The counters satisfy
/// `submitted == admitted + rejected_quota + rejected_overloaded +
/// rejected_other` — the concurrency stress tests pin that invariant.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Profile submissions offered to the fleet.
    pub submitted: u64,
    /// Submissions accepted onto a shard's worker pool.
    pub admitted: u64,
    /// Submissions rejected by a tenant's token bucket.
    pub rejected_quota: u64,
    /// Submissions rejected by shard admission control.
    pub rejected_overloaded: u64,
    /// Submissions rejected for any other reason (unknown job, invalid
    /// profiles, …).
    pub rejected_other: u64,
    /// Lookups rejected by a tenant's token bucket.
    pub lookups_rejected: u64,
    /// Shared plan-cache counters.
    pub cache: PlanCacheStats,
}

/// Per-tenant request accounting, kept outside the metric registry so a
/// disabled-telemetry fleet still has exact numbers. Surfaced as
/// `perseus_fleet_tenant_*_total{tenant=…}` in the rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Profile submissions offered by this tenant.
    pub submitted: u64,
    /// Submissions accepted onto a shard.
    pub admitted: u64,
    /// Submissions rejected (quota, overload, or shard error).
    pub rejected: u64,
    /// Status lookups made by this tenant.
    pub lookups: u64,
    /// Lookups rejected by the tenant's quota.
    pub lookups_rejected: u64,
}

/// The fleet front door: routes per-job operations to their home shard,
/// enforces tenant quotas and shard admission bounds, and shares one
/// cross-job [`PlanCache`] across every shard. See the module docs for
/// the design.
pub struct FleetServer {
    cfg: FleetConfig,
    shards: Vec<Arc<PerseusServer>>,
    /// Consistent-hash ring: `(point, shard)` sorted by point. A job
    /// lands on the first shard whose point is ≥ `fnv64(job)`, wrapping.
    ring: Vec<(u64, usize)>,
    cache: Arc<PlanCache>,
    tenants: Mutex<TenantState>,
    tenant_stats: Mutex<HashMap<TenantId, TenantStats>>,
    telemetry: Telemetry,
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_other: AtomicU64,
    lookups_rejected: AtomicU64,
}

impl FleetServer {
    /// An in-memory fleet (no durability) shaped by `cfg`.
    pub fn new(cfg: FleetConfig) -> FleetServer {
        FleetServer::with_telemetry(cfg, Telemetry::disabled())
    }

    /// [`FleetServer::new`] emitting through `telemetry`; every shard and
    /// the shared plan cache inherit the handle.
    pub fn with_telemetry(cfg: FleetConfig, telemetry: Telemetry) -> FleetServer {
        let cache = Arc::new(PlanCache::with_telemetry(telemetry.clone()));
        let shards = (0..cfg.shards.max(1))
            .map(|_| {
                Arc::new(PerseusServer::with_telemetry(
                    cfg.workers_per_shard.max(1),
                    FleetServer::shard_telemetry(&cfg, &telemetry),
                ))
            })
            .collect();
        FleetServer::assemble(cfg, shards, cache, telemetry)
    }

    /// The telemetry handle a new shard gets: the fleet's own handle by
    /// default, or a private registry under `sharded_telemetry` so the
    /// rollup sums exactly over shards. The plan cache always keeps the
    /// fleet handle.
    fn shard_telemetry(cfg: &FleetConfig, telemetry: &Telemetry) -> Telemetry {
        if cfg.sharded_telemetry && telemetry.is_enabled() {
            Telemetry::enabled()
        } else {
            telemetry.clone()
        }
    }

    /// Opens (or recovers) a durable fleet rooted at `root`: shard `i`
    /// journals under `root/shard-<i>/`, and the shared plan cache keeps
    /// its own write-ahead log at `root/plan-cache.wal`. Reopening after
    /// a crash recovers every shard *and* the cache; journal-tail
    /// re-characterizations that hit recovered cache entries skip the
    /// solver (counted as `recharacterizations_avoided`).
    ///
    /// `cfg.shards` must match across reopens of the same root — the hash
    /// ring, and therefore each job's home shard, is a function of it.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] if the root or a shard directory cannot be
    /// created or a journal cannot be opened.
    pub fn open(root: impl AsRef<Path>, cfg: FleetConfig) -> Result<FleetServer, ServerError> {
        FleetServer::open_with(root, cfg, Telemetry::disabled())
    }

    /// [`FleetServer::open`] emitting through `telemetry`.
    ///
    /// # Errors
    ///
    /// As [`FleetServer::open`].
    pub fn open_with(
        root: impl AsRef<Path>,
        cfg: FleetConfig,
        telemetry: Telemetry,
    ) -> Result<FleetServer, ServerError> {
        let root = root.as_ref();
        std::fs::create_dir_all(root).map_err(perseus_store::StoreError::Io)?;
        let cache = Arc::new(PlanCache::open_with(
            root.join("plan-cache.wal"),
            telemetry.clone(),
        )?);
        let mut shards = Vec::with_capacity(cfg.shards.max(1));
        for i in 0..cfg.shards.max(1) {
            shards.push(Arc::new(PerseusServer::open_with_cache(
                root.join(format!("shard-{i}")),
                cfg.workers_per_shard.max(1),
                FleetServer::shard_telemetry(&cfg, &telemetry),
                Arc::clone(&cache),
            )?));
        }
        Ok(FleetServer::assemble(cfg, shards, cache, telemetry))
    }

    fn assemble(
        cfg: FleetConfig,
        shards: Vec<Arc<PerseusServer>>,
        cache: Arc<PlanCache>,
        telemetry: Telemetry,
    ) -> FleetServer {
        for shard in &shards {
            shard.set_plan_cache(Some(Arc::clone(&cache)));
            shard.set_max_inflight(cfg.max_inflight_per_shard);
        }
        let mut ring = Vec::with_capacity(shards.len() * cfg.virtual_nodes.max(1));
        for (i, _) in shards.iter().enumerate() {
            for v in 0..cfg.virtual_nodes.max(1) {
                ring.push((fnv64(format!("shard-{i}-{v}").as_bytes()), i));
            }
        }
        ring.sort_unstable();
        FleetServer {
            cfg,
            shards,
            ring,
            cache,
            tenants: Mutex::new(TenantState {
                clock_s: 0.0,
                buckets: HashMap::new(),
            }),
            tenant_stats: Mutex::new(HashMap::new()),
            telemetry,
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_other: AtomicU64::new(0),
            lookups_rejected: AtomicU64::new(0),
        }
    }

    /// The home shard index for `job` — first ring point ≥ the job's
    /// hash, wrapping around. Stable for the fleet's lifetime.
    pub fn shard_of(&self, job: &str) -> usize {
        let h = fnv64(job.as_bytes());
        let i = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[if i == self.ring.len() { 0 } else { i }].1
    }

    /// Direct handle to shard `idx` (tests and per-shard observability).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn shard(&self, idx: usize) -> &Arc<PerseusServer> {
        &self.shards[idx]
    }

    /// All shards, index-aligned with [`FleetServer::shard_of`].
    pub fn shards(&self) -> &[Arc<PerseusServer>] {
        &self.shards
    }

    /// The shared cross-job plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// This fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Advances the fleet clock by `dt_s` seconds; tenant token buckets
    /// refill against this clock. Explicit, so quota tests are exact.
    pub fn advance_clock(&self, dt_s: f64) {
        if dt_s > 0.0 {
            self.tenants.lock().clock_s += dt_s;
        }
    }

    /// Charges `cost` tokens to `tenant`, refilling the bucket first.
    fn charge(&self, tenant: &TenantId, cost: f64) -> Result<(), ServerError> {
        if cost <= 0.0 || self.cfg.tenant_burst.is_infinite() {
            return Ok(());
        }
        let mut state = self.tenants.lock();
        let clock = state.clock_s;
        let bucket = state.buckets.entry(tenant.clone()).or_insert(TokenBucket {
            tokens: self.cfg.tenant_burst,
            last_s: clock,
        });
        let dt = (clock - bucket.last_s).max(0.0);
        bucket.tokens =
            (bucket.tokens + dt * self.cfg.tenant_refill_per_s).min(self.cfg.tenant_burst);
        bucket.last_s = clock;
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            Ok(())
        } else {
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter("perseus_fleet_quota_rejections_total")
                    .inc();
            }
            Err(ServerError::QuotaExhausted {
                tenant: tenant.0.clone(),
            })
        }
    }

    /// Registers a job on its home shard. Registration is not quota
    /// charged — it is cheap and idempotent-ish (duplicate names error).
    ///
    /// # Errors
    ///
    /// [`ServerError::DuplicateJob`] if the name is taken on its shard.
    pub fn register_job(&self, spec: JobSpec) -> Result<(), ServerError> {
        self.shards[self.shard_of(&spec.name)].register_job(spec)
    }

    /// Submits profiles for `name` on behalf of `tenant`: charges the
    /// tenant's token bucket, then routes to the home shard, which
    /// enforces its own in-flight bound and consults the shared plan
    /// cache before solving.
    ///
    /// # Errors
    ///
    /// [`ServerError::QuotaExhausted`] when the tenant's bucket is dry;
    /// [`ServerError::Overloaded`] when the shard is at its in-flight
    /// bound; shard-level errors (unknown job, invalid profiles)
    /// otherwise. Every outcome is counted in [`FleetStats`].
    pub fn submit_profiles(
        &self,
        tenant: &TenantId,
        name: &str,
        profiles: ProfileDb<OpKey>,
        opts: &FrontierOptions,
    ) -> Result<CharacterizeTicket, ServerError> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tenant_stat(tenant, |s| s.submitted += 1);
        if let Err(e) = self.charge(tenant, self.cfg.submit_cost) {
            self.rejected_quota.fetch_add(1, Ordering::Relaxed);
            self.tenant_stat(tenant, |s| s.rejected += 1);
            return Err(e);
        }
        match self.shards[self.shard_of(name)].submit_profiles(name, profiles, opts) {
            Ok(ticket) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                self.tenant_stat(tenant, |s| s.admitted += 1);
                Ok(ticket)
            }
            Err(e @ ServerError::Overloaded { .. }) => {
                self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                self.tenant_stat(tenant, |s| s.rejected += 1);
                Err(e)
            }
            Err(e) => {
                self.rejected_other.fetch_add(1, Ordering::Relaxed);
                self.tenant_stat(tenant, |s| s.rejected += 1);
                Err(e)
            }
        }
    }

    /// The unified status of `name`, charged to `tenant`'s lookup quota
    /// (free under the default config).
    ///
    /// # Errors
    ///
    /// [`ServerError::QuotaExhausted`] when the tenant's bucket is dry;
    /// [`ServerError::UnknownJob`] for unregistered names.
    pub fn job_status(&self, tenant: &TenantId, name: &str) -> Result<JobStatus, ServerError> {
        self.tenant_stat(tenant, |s| s.lookups += 1);
        if let Err(e) = self.charge(tenant, self.cfg.lookup_cost) {
            self.lookups_rejected.fetch_add(1, Ordering::Relaxed);
            self.tenant_stat(tenant, |s| s.lookups_rejected += 1);
            return Err(e);
        }
        self.shards[self.shard_of(name)].job_status(name)
    }

    /// Applies `f` to `tenant`'s accounting entry, creating it on first
    /// touch.
    fn tenant_stat(&self, tenant: &TenantId, f: impl FnOnce(&mut TenantStats)) {
        f(self.tenant_stats.lock().entry(tenant.clone()).or_default())
    }

    /// Routes a straggler notification to the job's home shard. Never
    /// quota charged: straggler reaction is the latency-critical path —
    /// throttling it would burn energy, the opposite of the point.
    ///
    /// # Errors
    ///
    /// As [`PerseusServer::set_straggler`].
    pub fn set_straggler(
        &self,
        name: &str,
        gpu_id: usize,
        delay_s: f64,
        degree: f64,
    ) -> Result<Option<Deployment>, ServerError> {
        self.shards[self.shard_of(name)].set_straggler(name, gpu_id, delay_s, degree)
    }

    /// A [`JobClient`] bound to `job`'s home shard with the default
    /// [`ClientConfig`] — retries ride out both `Overloaded` pushback and
    /// transient faults with per-job-seeded jitter.
    pub fn client_for(&self, job: impl Into<String>) -> JobClient {
        let job = job.into();
        JobClient::new(Arc::clone(&self.shards[self.shard_of(&job)]), job)
    }

    /// [`FleetServer::client_for`] with an explicit [`ClientConfig`].
    pub fn client_with_config(&self, job: impl Into<String>, config: ClientConfig) -> JobClient {
        let job = job.into();
        JobClient::with_config(Arc::clone(&self.shards[self.shard_of(&job)]), job, config)
    }

    /// Fleet-wide accounting snapshot; see [`FleetStats`] for the sum
    /// invariant it maintains.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_other: self.rejected_other.load(Ordering::Relaxed),
            lookups_rejected: self.lookups_rejected.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// Per-shard state fingerprints, index-aligned with
    /// [`FleetServer::shards`] — the stress tests compare these against a
    /// sequential replay of each shard's admitted events.
    pub fn state_fingerprints(&self) -> Vec<Vec<u8>> {
        self.shards.iter().map(|s| s.state_fingerprint()).collect()
    }

    /// Remaining tokens in `tenant`'s bucket after refilling to the
    /// current fleet clock (observability; `None` if the tenant has never
    /// been charged or quotas are disabled).
    pub fn tenant_tokens(&self, tenant: &TenantId) -> Option<f64> {
        if self.cfg.tenant_burst.is_infinite() {
            return None;
        }
        let mut state = self.tenants.lock();
        let clock = state.clock_s;
        let refill = self.cfg.tenant_refill_per_s;
        let burst = self.cfg.tenant_burst;
        state.buckets.get_mut(tenant).map(|b| {
            let dt = (clock - b.last_s).max(0.0);
            b.tokens = (b.tokens + dt * refill).min(burst);
            b.last_s = clock;
            b.tokens
        })
    }

    /// Per-tenant request accounting, sorted by tenant id for stable
    /// output.
    pub fn tenant_stats(&self) -> Vec<(TenantId, TenantStats)> {
        let mut out: Vec<(TenantId, TenantStats)> = self
            .tenant_stats
            .lock()
            .iter()
            .map(|(t, s)| (t.clone(), *s))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Merges every shard's metric snapshot with the fleet's own counters
    /// (admission, quota, plan cache, per-tenant breakdown) into one
    /// [`MetricsSnapshot`] — what the fleet's `/metrics` route serves.
    ///
    /// Counters and histograms merge exactly: same-keyed scalars sum,
    /// same-keyed histograms sum bucket-wise. Shards sharing one registry
    /// (the default) are deduplicated by [`Telemetry::registry_id`] so
    /// nothing is double-counted; under
    /// [`FleetConfig::sharded_telemetry`] the registries are disjoint and
    /// every rolled-up counter equals the sum of the per-shard counters.
    pub fn metrics_rollup(&self) -> MetricsSnapshot {
        let mut seen = std::collections::HashSet::new();
        let mut snaps: Vec<MetricsSnapshot> = Vec::with_capacity(self.shards.len() + 2);
        if self.telemetry.is_enabled() && seen.insert(self.telemetry.registry_id()) {
            snaps.push(self.telemetry.snapshot());
        }
        for shard in &self.shards {
            let tel = shard.telemetry();
            if tel.is_enabled() && seen.insert(tel.registry_id()) {
                snaps.push(tel.snapshot());
            }
        }
        let mut fleet = SnapshotBuilder::new();
        let stats = self.stats();
        fleet
            .scalar("perseus_fleet_submitted_total", &[], stats.submitted as f64)
            .scalar("perseus_fleet_admitted_total", &[], stats.admitted as f64)
            .scalar(
                "perseus_fleet_rejected_quota_total",
                &[],
                stats.rejected_quota as f64,
            )
            .scalar(
                "perseus_fleet_rejected_overloaded_total",
                &[],
                stats.rejected_overloaded as f64,
            )
            .scalar(
                "perseus_fleet_rejected_other_total",
                &[],
                stats.rejected_other as f64,
            )
            .scalar(
                "perseus_fleet_lookups_rejected_total",
                &[],
                stats.lookups_rejected as f64,
            )
            .scalar(
                "perseus_fleet_cache_hits_total",
                &[],
                stats.cache.hits as f64,
            )
            .scalar(
                "perseus_fleet_cache_misses_total",
                &[],
                stats.cache.misses as f64,
            )
            .scalar(
                "perseus_fleet_cache_inserts_total",
                &[],
                stats.cache.inserts as f64,
            )
            .scalar(
                "perseus_fleet_cache_invalidations_total",
                &[],
                stats.cache.invalidations as f64,
            )
            .scalar(
                "perseus_fleet_cache_recovered_entries",
                &[],
                stats.cache.recovered_entries as f64,
            )
            .scalar(
                "perseus_fleet_cache_entries",
                &[],
                stats.cache.entries as f64,
            )
            .scalar("perseus_fleet_cache_epoch", &[], stats.cache.epoch as f64)
            .scalar("perseus_fleet_shards", &[], self.shards.len() as f64);
        // Replication posture, aggregated across shards. Gated on actual
        // replication activity so an all-leader fleet (the common case,
        // and everything the golden fixtures cover) emits byte-identical
        // rollups with or without this block.
        let mut followers = 0u64;
        let mut repl = crate::ReplicationStats::default();
        for shard in &self.shards {
            if shard.role() == crate::Role::Follower {
                followers += 1;
            }
            let s = shard.replication_stats();
            repl.shipped += s.shipped;
            repl.applied += s.applied;
            repl.lag_records += s.lag_records;
            repl.lag_bytes += s.lag_bytes;
        }
        if followers > 0 || repl != crate::ReplicationStats::default() {
            fleet
                .scalar("perseus_replication_followers", &[], followers as f64)
                .scalar(
                    "perseus_replication_shipped_records",
                    &[],
                    repl.shipped as f64,
                )
                .scalar(
                    "perseus_replication_applied_records",
                    &[],
                    repl.applied as f64,
                )
                .scalar(
                    "perseus_replication_lag_records",
                    &[],
                    repl.lag_records as f64,
                )
                .scalar("perseus_replication_lag_bytes", &[], repl.lag_bytes as f64);
        }
        for (tenant, s) in self.tenant_stats() {
            let labels = &[("tenant", tenant.as_str())];
            fleet
                .scalar(
                    "perseus_fleet_tenant_submitted_total",
                    labels,
                    s.submitted as f64,
                )
                .scalar(
                    "perseus_fleet_tenant_admitted_total",
                    labels,
                    s.admitted as f64,
                )
                .scalar(
                    "perseus_fleet_tenant_rejected_total",
                    labels,
                    s.rejected as f64,
                )
                .scalar(
                    "perseus_fleet_tenant_lookups_total",
                    labels,
                    s.lookups as f64,
                )
                .scalar(
                    "perseus_fleet_tenant_lookups_rejected_total",
                    labels,
                    s.lookups_rejected as f64,
                );
        }
        snaps.push(fleet.build());
        MetricsSnapshot::merge_all(&snaps)
    }

    /// Serves the fleet's observability over HTTP: `/metrics` is the
    /// [`FleetServer::metrics_rollup`], `/alerts` and `/slo` concatenate
    /// every shard's pipeline output (shard order, so output is stable).
    /// Bind port 0 for an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_telemetry(
        self: &Arc<Self>,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<TelemetryServer> {
        let fleet = Arc::clone(self);
        let alerts_fleet = Arc::clone(self);
        let slo_fleet = Arc::clone(self);
        let endpoints = Endpoints::default()
            .with_metrics(move || fleet.metrics_rollup().render())
            .with_alerts(move || {
                let alerts: Vec<_> = alerts_fleet
                    .shards
                    .iter()
                    .flat_map(|s| s.obs().alerts())
                    .collect();
                render_alerts_json(&alerts)
            })
            .with_slo(move || {
                let statuses: Vec<_> = slo_fleet
                    .shards
                    .iter()
                    .flat_map(|s| s.obs().slo_status())
                    .collect();
                render_slo_json(&statuses)
            });
        TelemetryServer::bind(addr, endpoints)
    }
}
