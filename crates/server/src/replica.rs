//! WAL-shipping replication and leader failover.
//!
//! The leader's write-ahead journal is already a total order over every
//! state mutation, so replication is journal shipping: a [`Replicator`]
//! reads the leader's tail past the follower's shipped watermark
//! ([`PerseusServer::replication_tail`]) and hands the records to a
//! [`FollowerServer`], which appends them to its *own* journal first
//! (ship-then-apply — a crashed follower recovers from its local WAL,
//! exactly like a crashed leader) and then applies them through the same
//! `replay_event` path recovery uses. Apply lag is bounded: the follower
//! keeps at most `max_lag` shipped-but-unapplied records, so promotion
//! replays at most that many — never from genesis.
//!
//! When the leader compacts its journal below the follower's position,
//! the gap is bridged by a checkpoint transfer
//! ([`PerseusServer::replication_checkpoint`]): the follower installs
//! the full-state snapshot at the leader's watermark and resumes
//! tailing from there. Still never from genesis.
//!
//! [`FollowerServer::promote`] applies the pending tail, attaches the
//! follower's journal + snapshot as a durable [`Store`], and flips the
//! role to [`Role::Leader`]. Because planning is deterministic in the
//! journaled inputs, the promoted server's
//! [`PerseusServer::state_fingerprint`] is bit-identical to the
//! leader's at the shipped watermark — the `ha_suite` gate.

use std::collections::VecDeque;
use std::path::Path;
use std::path::PathBuf;
use std::sync::Arc;

use perseus_store::{load_snapshot, write_snapshot, Journal, Persist, Record, StoreError};
use perseus_telemetry::Telemetry;

use crate::server::{PerseusServer, Role, ServerError};
use crate::store::{JournalEvent, ServerSnapshot, Store, JOURNAL_FILE, SNAPSHOT_FILE};

/// Journal frame overhead per record: `len:u32 + crc:u32 + seq:u64`.
const FRAME_OVERHEAD: u64 = 16;

/// How many shipped-but-unapplied records a follower tolerates before
/// applying synchronously during [`FollowerServer::receive`]. Promotion
/// replays at most this many records.
pub const DEFAULT_MAX_LAG: u64 = 64;

/// Point-in-time replication position of one follower. `shipped` and
/// `applied` are journal sequence watermarks; the lag fields describe
/// the queue between them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Highest sequence shipped into the follower's journal.
    pub shipped: u64,
    /// Highest sequence applied into the follower's in-memory state.
    pub applied: u64,
    /// Records shipped but not yet applied (`<= max_lag` after every
    /// [`FollowerServer::receive`]).
    pub lag_records: u64,
    /// Bytes (payload + frame) of the shipped-but-unapplied queue.
    pub lag_bytes: u64,
}

/// What a promotion did: how much tail it had to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionReport {
    /// Shipped-but-unapplied records replayed during promotion — bounded
    /// by the follower's `max_lag`, never the journal's full length.
    pub replayed_records: u64,
}

/// A replication follower: a read-only [`PerseusServer`] plus the local
/// journal the leader's records are shipped into. See the module docs.
pub struct FollowerServer {
    snapshot_path: PathBuf,
    journal: Journal,
    state: PerseusServer,
    /// Shipped-but-unapplied records, oldest first.
    pending: VecDeque<Record>,
    pending_bytes: u64,
    shipped_seq: u64,
    applied_seq: u64,
    max_lag: u64,
    n_workers: usize,
}

impl FollowerServer {
    /// Opens (or creates) a follower rooted at `dir` with one worker and
    /// telemetry disabled. State already in `dir` — a previous follower
    /// lifetime, including one that crashed mid-ship — is recovered from
    /// the local snapshot + journal; a torn shipped record is truncated
    /// exactly like [`Journal::open`] always does, and the next
    /// [`Replicator::sync`] re-ships the lost suffix from the leader.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] if the directory or journal is unusable.
    pub fn open(dir: impl AsRef<Path>) -> Result<FollowerServer, ServerError> {
        FollowerServer::open_with(dir, 1, Telemetry::disabled())
    }

    /// [`FollowerServer::open`] with an explicit worker count and
    /// telemetry handle (both inherited by the promoted leader).
    ///
    /// # Errors
    ///
    /// As [`FollowerServer::open`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        n_workers: usize,
        telemetry: Telemetry,
    ) -> Result<FollowerServer, ServerError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
        let (journal, records) = Journal::open(dir.join(JOURNAL_FILE))?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let state = PerseusServer::with_telemetry(n_workers, telemetry);
        state.set_role(Role::Follower);

        // Tolerate a corrupt local snapshot the same way leader recovery
        // does: fall back to journal-only replay.
        let snapshot = match load_snapshot(&snapshot_path) {
            Ok(None) => None,
            Ok(Some(bytes)) => ServerSnapshot::from_bytes(&bytes).ok(),
            Err(StoreError::Corrupt { .. }) => None,
            Err(e) => return Err(ServerError::Store(e)),
        };
        let mut applied_seq = snapshot.as_ref().map_or(0, |s| s.applied_seq);
        if let Some(snap) = snapshot {
            state.restore_snapshot(snap);
        }
        for rec in &records {
            if rec.seq <= applied_seq {
                continue;
            }
            match JournalEvent::from_bytes(&rec.payload) {
                Ok(event) => {
                    state.replay_event(event);
                    applied_seq = rec.seq;
                }
                Err(_) => break,
            }
        }
        let follower = FollowerServer {
            snapshot_path,
            journal,
            state,
            pending: VecDeque::new(),
            pending_bytes: 0,
            shipped_seq: applied_seq,
            applied_seq,
            max_lag: DEFAULT_MAX_LAG,
            n_workers,
        };
        follower.publish_stats();
        Ok(follower)
    }

    /// The follower's read-only server: statuses, frontiers, and
    /// fingerprints reflect everything applied so far; every mutation
    /// answers [`ServerError::NotLeader`].
    pub fn server(&self) -> &PerseusServer {
        &self.state
    }

    /// Bounds the shipped-but-unapplied queue (floored at 0 = apply
    /// everything synchronously on receive).
    pub fn set_max_lag(&mut self, max_lag: u64) {
        self.max_lag = max_lag;
        while self.pending.len() as u64 > self.max_lag {
            self.apply_front();
        }
        self.publish_stats();
    }

    /// The configured lag bound.
    pub fn max_lag(&self) -> u64 {
        self.max_lag
    }

    /// Where [`ServerError::NotLeader`] answers point callers.
    pub fn set_leader_hint(&mut self, hint: impl Into<String>) {
        self.state.set_leader_hint(hint.into());
    }

    /// Highest sequence shipped into the local journal.
    pub fn shipped_seq(&self) -> u64 {
        self.shipped_seq
    }

    /// Highest sequence applied into the in-memory state.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Current replication position.
    pub fn stats(&self) -> ReplicationStats {
        ReplicationStats {
            shipped: self.shipped_seq,
            applied: self.applied_seq,
            lag_records: self.pending.len() as u64,
            lag_bytes: self.pending_bytes,
        }
    }

    fn publish_stats(&self) {
        self.state.set_replication_stats(self.stats());
    }

    /// Ingests a gap-free run of leader records: each is appended to the
    /// local journal (ship), queued, and — once the queue exceeds
    /// `max_lag` — applied oldest-first until the lag bound holds again.
    /// Records at or below the shipped watermark are skipped, so
    /// re-shipping after a retry or a torn-tail resync is idempotent.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] on journal I/O failures or on a sequence
    /// gap (the caller should bootstrap via
    /// [`Replicator::sync`]'s checkpoint path).
    pub fn receive(&mut self, records: &[Record]) -> Result<ReplicationStats, ServerError> {
        for rec in records {
            if rec.seq <= self.shipped_seq {
                continue;
            }
            if rec.seq != self.shipped_seq + 1 {
                return Err(ServerError::Store(StoreError::Corrupt {
                    reason: format!(
                        "replication gap: expected sequence {}, got {}",
                        self.shipped_seq + 1,
                        rec.seq
                    ),
                }));
            }
            self.journal.append_with_seq(rec.seq, &rec.payload)?;
            self.shipped_seq = rec.seq;
            self.pending_bytes += rec.payload.len() as u64 + FRAME_OVERHEAD;
            self.pending.push_back(rec.clone());
        }
        while self.pending.len() as u64 > self.max_lag {
            self.apply_front();
        }
        self.publish_stats();
        Ok(self.stats())
    }

    /// Applies every shipped-but-unapplied record, catching the state up
    /// to the shipped watermark. Returns how many were applied.
    pub fn apply_all(&mut self) -> u64 {
        let n = self.pending.len() as u64;
        while !self.pending.is_empty() {
            self.apply_front();
        }
        self.publish_stats();
        n
    }

    fn apply_front(&mut self) {
        let Some(rec) = self.pending.pop_front() else {
            return;
        };
        self.pending_bytes = self
            .pending_bytes
            .saturating_sub(rec.payload.len() as u64 + FRAME_OVERHEAD);
        if let Ok(event) = JournalEvent::from_bytes(&rec.payload) {
            self.state.replay_event(event);
        }
        self.applied_seq = rec.seq;
    }

    /// Installs a full-state checkpoint from the leader (compaction gap
    /// bridge): the in-memory state is rebuilt from the snapshot, the
    /// snapshot is persisted locally, the local journal drops everything
    /// the checkpoint covers, and shipping resumes from the checkpoint's
    /// watermark.
    pub(crate) fn install_checkpoint(&mut self, snap: ServerSnapshot) -> Result<(), ServerError> {
        let fresh = PerseusServer::with_telemetry(self.n_workers, self.state.telemetry().clone());
        fresh.set_role(Role::Follower);
        fresh.set_leader_hint(self.state.leader_hint());
        write_snapshot(&self.snapshot_path, &snap.to_bytes())?;
        self.journal.compact_below(snap.applied_seq)?;
        self.shipped_seq = snap.applied_seq;
        self.applied_seq = snap.applied_seq;
        self.pending.clear();
        self.pending_bytes = 0;
        fresh.restore_snapshot(snap);
        self.state = fresh;
        self.publish_stats();
        Ok(())
    }

    /// Promotes this follower to leader: the pending tail (at most
    /// `max_lag` records — never the journal from genesis) is applied,
    /// the local journal + snapshot become the promoted server's durable
    /// [`Store`], and the role flips to [`Role::Leader`]. The promoted
    /// server's [`PerseusServer::state_fingerprint`] is bit-identical to
    /// the old leader's at the shipped watermark.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] if folding the promoted state into a
    /// snapshot fails (the state itself is already consistent).
    pub fn promote(mut self) -> Result<(PerseusServer, PromotionReport), ServerError> {
        let replayed_records = self.apply_all();
        let telemetry = self.state.telemetry().clone();
        let FollowerServer {
            snapshot_path,
            journal,
            mut state,
            ..
        } = self;
        let store = Arc::new(Store::new(journal, snapshot_path, telemetry));
        state.attach_store(store);
        state.set_role(Role::Leader);
        state.set_leader_hint(String::new());
        state.set_replication_stats(ReplicationStats {
            shipped: 0,
            applied: 0,
            lag_records: 0,
            lag_bytes: 0,
        });
        // Fold the promoted state into a fresh snapshot so the next open
        // of this directory recovers from it instead of the full tail.
        state.snapshot_now()?;
        Ok((state, PromotionReport { replayed_records }))
    }
}

/// Ships the leader's journal to followers. Stateless beyond the leader
/// handle — the follower owns its own position, so one replicator can
/// serve any number of followers.
pub struct Replicator {
    leader: Arc<PerseusServer>,
}

impl Replicator {
    /// A replicator shipping from `leader` (which must be durable —
    /// the journal is the shipping medium).
    pub fn new(leader: Arc<PerseusServer>) -> Replicator {
        Replicator { leader }
    }

    /// The leader this replicator ships from.
    pub fn leader(&self) -> &Arc<PerseusServer> {
        &self.leader
    }

    /// Ships everything the follower has not yet seen. If the leader has
    /// compacted past the follower's position, a checkpoint transfer
    /// bridges the gap first ([`FollowerServer::install_checkpoint`]);
    /// tailing then resumes from the checkpoint watermark. Returns the
    /// number of records shipped this call.
    ///
    /// # Errors
    ///
    /// [`ServerError::Store`] on journal I/O failures, on an in-memory
    /// leader, or if the follower reports a position ahead of the leader
    /// (divergent histories — a follower of a *different* leader).
    pub fn sync(&self, follower: &mut FollowerServer) -> Result<u64, ServerError> {
        let watermark = self.leader.replication_watermark()?;
        let from = follower.shipped_seq();
        if from > watermark {
            return Err(ServerError::Store(StoreError::Corrupt {
                reason: format!(
                    "follower at sequence {from} is ahead of leader watermark {watermark}: \
                     divergent histories"
                ),
            }));
        }
        let tail = self.leader.replication_tail(from)?;
        let contiguous = tail
            .first()
            .map_or(from >= watermark, |r| r.seq == from + 1);
        if !contiguous {
            // Compaction dropped the needed range: bridge with a
            // checkpoint, then tail from its watermark.
            let snap = self.leader.replication_checkpoint()?;
            follower.install_checkpoint(snap)?;
            let tail = self.leader.replication_tail(follower.shipped_seq())?;
            let shipped = tail.len() as u64;
            follower.receive(&tail)?;
            return Ok(shipped);
        }
        let shipped = tail.len() as u64;
        follower.receive(&tail)?;
        Ok(shipped)
    }
}
