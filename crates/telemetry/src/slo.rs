//! Declarative service-level objectives with error-budget accounting.
//!
//! An [`SloSpec`] states an objective over one tracked series — "p99
//! plan-lookup latency ≤ 50 µs", "extrinsic bloat ≤ 35% of total
//! energy", "recovery ≤ 3 iterations" — plus the error budget: the
//! fraction of evaluation ticks allowed to violate it. The [`SloEngine`]
//! evaluates every spec against the values the observability pipeline
//! feeds it each iteration, tracks violations over a sliding window and
//! over the whole run, and reports per-objective [`SloStatus`] with
//! budget-burn numbers. That report is surfaced through `JobStatus` and
//! the `/slo` endpoint.
//!
//! Evaluation is deterministic: ticks are iteration-indexed, budgets are
//! exact integer counts, and the engine never reads a clock.

use std::collections::VecDeque;
use std::fmt::Write as _;

use parking_lot::Mutex;

/// Comparison direction of an objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Healthy while `value <= target` (latencies, shares, durations).
    Lte,
    /// Healthy while `value >= target` (throughputs, hit rates).
    Gte,
}

impl SloOp {
    fn holds(self, value: f64, target: f64) -> bool {
        match self {
            SloOp::Lte => value <= target,
            SloOp::Gte => value >= target,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            SloOp::Lte => "<=",
            SloOp::Gte => ">=",
        }
    }
}

/// One declarative objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Short identifier, e.g. `lookup_latency_p99`.
    pub name: String,
    /// Series the objective reads (a pipeline series name).
    pub metric: String,
    /// Comparison direction.
    pub op: SloOp,
    /// The objective's threshold, in the metric's units.
    pub target: f64,
    /// Error budget: fraction of ticks allowed to violate (0.0–1.0).
    pub budget: f64,
    /// Sliding window (ticks) for the short-term burn rate.
    pub window: usize,
}

impl SloSpec {
    /// A spec with the default 1%-of-ticks budget over a 256-tick window.
    pub fn new(
        name: impl Into<String>,
        metric: impl Into<String>,
        op: SloOp,
        target: f64,
    ) -> SloSpec {
        SloSpec {
            name: name.into(),
            metric: metric.into(),
            op,
            target,
            budget: 0.01,
            window: 256,
        }
    }

    /// Overrides the error budget fraction.
    pub fn with_budget(mut self, budget: f64) -> SloSpec {
        self.budget = budget.clamp(0.0, 1.0);
        self
    }

    /// Overrides the sliding window width.
    pub fn with_window(mut self, window: usize) -> SloSpec {
        self.window = window.max(1);
        self
    }

    /// The HA serving staleness objective: after a profile-drift
    /// re-characterization triggers, lookups must be served from the
    /// re-characterized frontier within `max_iters` iterations. Fed by
    /// the `drift_staleness_iters` series
    /// ([`crate::pipeline::series::DRIFT_STALENESS_ITERS`]) via
    /// [`crate::ObsPipeline::observe_metric`] — one point per drift
    /// re-plan, so the zero budget means *every* re-plan must land in
    /// time. Deliberately not part of [`SloSpec::perseus_defaults`]
    /// (which golden fixtures pin); HA harnesses add it explicitly.
    pub fn drift_staleness(max_iters: f64) -> SloSpec {
        SloSpec::new(
            "drift_staleness",
            "drift_staleness_iters",
            SloOp::Lte,
            max_iters,
        )
        .with_budget(0.0)
        .with_window(64)
    }

    /// The three objectives the paper's deployment story cares about:
    /// planner lookups must stay fast, energy bloat must stay mostly
    /// intrinsic, and straggler recovery must be prompt.
    pub fn perseus_defaults() -> Vec<SloSpec> {
        vec![
            SloSpec::new(
                "lookup_latency_p99",
                "lookup_latency_p99_s",
                SloOp::Lte,
                50e-6,
            )
            .with_budget(0.01),
            SloSpec::new("extrinsic_bloat_share", "extrinsic_share", SloOp::Lte, 0.35)
                .with_budget(0.05),
            SloSpec::new("recovery_iters", "recovery_iters", SloOp::Lte, 3.0).with_budget(0.02),
        ]
    }
}

/// Rolling evaluation state for one spec.
#[derive(Debug)]
struct SloState {
    spec: SloSpec,
    ticks: u64,
    violations: u64,
    last_value: Option<f64>,
    last_violation_iter: Option<u64>,
    /// Violation flags for the newest `spec.window` ticks.
    window: VecDeque<bool>,
    window_violations: u64,
}

/// Point-in-time health of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Spec identity.
    pub name: String,
    /// Series the objective reads.
    pub metric: String,
    /// Comparison direction.
    pub op: SloOp,
    /// Objective threshold.
    pub target: f64,
    /// Most recent observed value (`None` until the series produced one).
    pub last_value: Option<f64>,
    /// Ticks evaluated so far.
    pub ticks: u64,
    /// Ticks that violated the objective, lifetime.
    pub violations: u64,
    /// Violations within the sliding window.
    pub window_violations: u64,
    /// Sliding window width.
    pub window: usize,
    /// Error budget fraction from the spec.
    pub budget: f64,
    /// Budget consumed, lifetime: `violations / (budget · ticks)`;
    /// `0.0` before any ticks, `inf` when a zero budget is violated.
    pub budget_consumed: f64,
    /// Short-term burn rate: window violation fraction over the budget
    /// fraction (1.0 = burning exactly at budget).
    pub burn_rate: f64,
    /// Iteration of the most recent violation, if any.
    pub last_violation_iter: Option<u64>,
    /// Whether the lifetime budget still has headroom.
    pub healthy: bool,
}

impl SloStatus {
    /// Stable single-line rendering (tests, logs).
    pub fn render(&self) -> String {
        format!(
            "slo={} metric={} objective={}{} last={} ticks={} violations={} budget_consumed={:.4} burn_rate={:.4} healthy={}",
            self.name,
            self.metric,
            self.op.symbol(),
            self.target,
            self.last_value
                .map(|v| format!("{v:.6}"))
                .unwrap_or_else(|| "none".to_string()),
            self.ticks,
            self.violations,
            self.budget_consumed,
            self.burn_rate,
            self.healthy,
        )
    }
}

/// Evaluates a set of [`SloSpec`]s against streaming values.
#[derive(Debug)]
pub struct SloEngine {
    states: Mutex<Vec<SloState>>,
}

impl SloEngine {
    /// An engine over `specs`.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            states: Mutex::new(
                specs
                    .into_iter()
                    .map(|spec| {
                        let cap = spec.window;
                        SloState {
                            spec,
                            ticks: 0,
                            violations: 0,
                            last_value: None,
                            last_violation_iter: None,
                            window: VecDeque::with_capacity(cap),
                            window_violations: 0,
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// The engine with [`SloSpec::perseus_defaults`].
    pub fn perseus_defaults() -> SloEngine {
        SloEngine::new(SloSpec::perseus_defaults())
    }

    /// Evaluates one tick: for each spec whose metric appears in
    /// `values`, records whether the objective held. Metrics absent this
    /// tick are skipped (no tick consumed, no budget burned) — a series
    /// that has not produced a sample yet cannot violate anything.
    pub fn evaluate(&self, iteration: u64, values: &[(&str, f64)]) {
        let mut states = self.states.lock();
        for state in states.iter_mut() {
            let Some((_, value)) = values.iter().find(|(m, _)| *m == state.spec.metric) else {
                continue;
            };
            let violated = !state.spec.op.holds(*value, state.spec.target);
            state.ticks += 1;
            state.last_value = Some(*value);
            if violated {
                state.violations += 1;
                state.last_violation_iter = Some(iteration);
            }
            if state.window.len() == state.spec.window && state.window.pop_front() == Some(true) {
                state.window_violations -= 1;
            }
            state.window.push_back(violated);
            if violated {
                state.window_violations += 1;
            }
        }
    }

    /// Point-in-time status of every objective, in spec order.
    pub fn status(&self) -> Vec<SloStatus> {
        let states = self.states.lock();
        states
            .iter()
            .map(|s| {
                let allowed = s.spec.budget * s.ticks as f64;
                let budget_consumed = if s.ticks == 0 {
                    0.0
                } else if allowed > 0.0 {
                    s.violations as f64 / allowed
                } else if s.violations == 0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                let window_len = s.window.len().max(1);
                let window_fraction = s.window_violations as f64 / window_len as f64;
                let burn_rate = if s.spec.budget > 0.0 {
                    window_fraction / s.spec.budget
                } else if s.window_violations == 0 {
                    0.0
                } else {
                    f64::INFINITY
                };
                SloStatus {
                    name: s.spec.name.clone(),
                    metric: s.spec.metric.clone(),
                    op: s.spec.op,
                    target: s.spec.target,
                    last_value: s.last_value,
                    ticks: s.ticks,
                    violations: s.violations,
                    window_violations: s.window_violations,
                    window: s.spec.window,
                    budget: s.spec.budget,
                    budget_consumed,
                    burn_rate,
                    last_violation_iter: s.last_violation_iter,
                    healthy: budget_consumed <= 1.0,
                }
            })
            .collect()
    }

    /// Whether every objective's lifetime budget has headroom.
    pub fn all_healthy(&self) -> bool {
        self.status().iter().all(|s| s.healthy)
    }
}

/// Renders SLO statuses as a JSON array (the `/slo` endpoint body).
/// Hand-rolled — names and metrics are identifier-shaped, so the only
/// escaping needed is the standard string escape applied anyway.
pub fn render_slo_json(statuses: &[SloStatus]) -> String {
    let mut out = String::from("[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{name},\"metric\":{metric},\"op\":\"{op}\",\"target\":{target},\"last_value\":{last},\"ticks\":{ticks},\"violations\":{violations},\"window_violations\":{wv},\"window\":{window},\"budget\":{budget},\"budget_consumed\":{consumed},\"burn_rate\":{burn},\"healthy\":{healthy}}}",
            name = json_string(&s.name),
            metric = json_string(&s.metric),
            op = s.op.symbol(),
            target = json_number(s.target),
            last = s
                .last_value
                .map(json_number)
                .unwrap_or_else(|| "null".to_string()),
            ticks = s.ticks,
            violations = s.violations,
            wv = s.window_violations,
            window = s.window,
            budget = json_number(s.budget),
            consumed = json_number(s.budget_consumed),
            burn = json_number(s.burn_rate),
            healthy = s.healthy,
        );
    }
    out.push(']');
    out
}

/// JSON string escape (quotes, backslashes, control characters).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON-safe number formatting: infinities and NaN (not representable in
/// JSON) render as very large sentinels / null-adjacent strings would
/// break consumers, so clamp to ±1e308; everything else uses Rust's
/// shortest-roundtrip display.
pub(crate) fn json_number(v: f64) -> String {
    if v.is_nan() {
        "0".to_string()
    } else if v == f64::INFINITY {
        "1e308".to_string()
    } else if v == f64::NEG_INFINITY {
        "-1e308".to_string()
    } else {
        crate::snapshot::format_value(v)
    }
}
