//! Hierarchical span guards. A span records its wall time and call count
//! into the registry when dropped, under a `parent/child` path maintained
//! per thread, and notifies every attached [`crate::TelemetrySink`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::sink::SpanRecord;
use crate::Inner;

thread_local! {
    /// Stack of open span paths on this thread; the top is the parent of
    /// the next span opened here.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Small dense thread ids for trace output (`std::thread::ThreadId` has no
/// stable integer form).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

struct SpanState {
    inner: Arc<Inner>,
    name: &'static str,
    /// Full `parent/child` path of this span.
    path: String,
    labels: Vec<(&'static str, String)>,
    start: Instant,
    /// Per-span custom counters, merged by key, flushed on drop.
    custom: Vec<(&'static str, u64)>,
}

/// A span guard returned by [`crate::Telemetry::span`] / the
/// [`crate::span!`] macro. Recording happens on drop; an *inert* span
/// (from disabled telemetry) carries no state and drops for free.
#[must_use = "a span records when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    pub(crate) fn inert() -> Span {
        Span { state: None }
    }

    pub(crate) fn enter(
        inner: Arc<Inner>,
        name: &'static str,
        labels: &[(&'static str, String)],
    ) -> Span {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        Span {
            state: Some(SpanState {
                inner,
                name,
                path,
                labels: labels.to_vec(),
                start: Instant::now(),
                custom: Vec::new(),
            }),
        }
    }

    /// Whether this span actually records (false for inert spans).
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// The full `parent/child` path, or `None` for inert spans.
    pub fn path(&self) -> Option<&str> {
        self.state.as_ref().map(|s| s.path.as_str())
    }

    /// Bumps a per-span custom counter; flushed on drop as a counter named
    /// `key`, labeled with this span's path and labels. No-op when inert.
    pub fn add(&mut self, key: &'static str, delta: u64) {
        if let Some(state) = &mut self.state {
            match state.custom.iter_mut().find(|(k, _)| *k == key) {
                Some((_, total)) => *total += delta,
                None => state.custom.push((key, delta)),
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let duration = state.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are LIFO in correct usage; tolerate out-of-order drops
            // by removing this path wherever it sits.
            if let Some(pos) = stack.iter().rposition(|p| *p == state.path) {
                stack.remove(pos);
            }
        });

        // `span` label + user labels, borrowed for registry lookup.
        let mut labels: Vec<(&'static str, &str)> =
            state.labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
        labels.push(("span", state.path.as_str()));

        let registry = &state.inner.registry;
        registry.counter("perseus_span_calls_total", &labels).inc();
        registry
            .float_counter("perseus_span_seconds_total", &labels)
            .add(duration.as_secs_f64());
        for (key, delta) in &state.custom {
            registry.counter(key, &labels).add(*delta);
        }

        let sinks = state.inner.sinks.read();
        if !sinks.is_empty() {
            let record = SpanRecord {
                name: state.name,
                path: state.path.clone(),
                labels: state.labels.clone(),
                custom: state.custom.clone(),
                start: state.start,
                duration,
                thread: thread_ordinal(),
            };
            for sink in sinks.iter() {
                sink.on_span(&record);
            }
        }
    }
}
