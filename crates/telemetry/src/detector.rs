//! Deterministic drift and anomaly detection over streaming metrics.
//!
//! Two complementary detectors watch each tracked series:
//!
//! * [`EwmaDetector`] — an exponentially weighted moving average with a
//!   deviation band. It learns the series' level and scale online and
//!   fires when a sample leaves `mean ± k·dev`. A *relative floor* keeps
//!   the band from collapsing on near-constant series (a flat
//!   energy-per-iteration trace must never alert on float noise).
//! * [`PageHinkley`] — the Page–Hinkley cumulative-sum test, which
//!   accumulates small persistent deviations an instantaneous band
//!   check misses: a 5% creep in iteration time fires PH long before it
//!   would ever leave the EWMA band.
//!
//! Both are pure functions of the sample sequence — no wall clock, no
//! randomness — so the same fault plan replayed twice produces
//! byte-identical alert streams (a tested invariant). Alerts carry typed
//! [`AlertEvidence`] so operators (and the SLO engine) see *why*: the
//! observed value, the learned baseline, and the threshold crossed.

use std::fmt;

/// How loud an alert is. Ordering is meaningful (`Warning < Critical`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Drift worth a look; the job is still meeting its objectives.
    Warning,
    /// Sustained or extreme deviation; intervention expected.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Critical => write!(f, "critical"),
        }
    }
}

/// Whether an alert opens or closes an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The detector crossed its threshold.
    Firing,
    /// The series returned in-band for the hysteresis window.
    Cleared,
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertState::Firing => write!(f, "firing"),
            AlertState::Cleared => write!(f, "cleared"),
        }
    }
}

/// Why a detector fired: the numbers behind the decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertEvidence {
    /// The sample that triggered the transition.
    pub observed: f64,
    /// The learned baseline (EWMA mean, or PH running mean).
    pub baseline: f64,
    /// The threshold that was crossed (band edge or PH lambda).
    pub threshold: f64,
    /// Detector-specific statistic (|z|-like deviation ratio for EWMA,
    /// the cumulative PH statistic for Page–Hinkley).
    pub statistic: f64,
}

/// One typed alert event, emitted by a detector on a state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Iteration (or caller-supplied tick) the transition happened at.
    pub iteration: u64,
    /// Series the detector watches, e.g. `energy_per_iteration_j`.
    pub metric: String,
    /// Which detector fired, e.g. `ewma` or `page_hinkley`.
    pub detector: &'static str,
    /// Firing or cleared.
    pub state: AlertState,
    pub severity: Severity,
    pub evidence: AlertEvidence,
}

impl Alert {
    /// Stable single-line rendering (used by the alert log, tests, and
    /// the `/alerts` endpoint's JSON strings).
    pub fn render(&self) -> String {
        format!(
            "iter={} metric={} detector={} state={} severity={} observed={:.6} baseline={:.6} threshold={:.6} statistic={:.6}",
            self.iteration,
            self.metric,
            self.detector,
            self.state,
            self.severity,
            self.evidence.observed,
            self.evidence.baseline,
            self.evidence.threshold,
            self.evidence.statistic,
        )
    }
}

/// Tuning for an [`EwmaDetector`].
#[derive(Debug, Clone, Copy)]
pub struct EwmaConfig {
    /// Smoothing factor for the mean (0 < alpha ≤ 1); smaller = slower.
    pub alpha: f64,
    /// Band half-width in deviation units (`k` in `mean ± k·dev`).
    pub k: f64,
    /// Deviation floor as a fraction of |mean|: the band never narrows
    /// below `rel_floor · |mean|`, so constant series cannot false-fire.
    pub rel_floor: f64,
    /// Absolute band floor, in the metric's units. Zero by default; set
    /// it for series whose healthy baseline is exactly zero (degraded
    /// lookups), where a relative floor degenerates to a zero band and
    /// the detector could never fire.
    pub abs_floor: f64,
    /// Samples to learn the baseline before the detector may fire.
    pub warmup: u64,
    /// Consecutive in-band samples required to clear a firing alert.
    pub clear_after: u64,
    /// Band multiple at which a Warning escalates to Critical.
    pub critical_k: f64,
}

impl Default for EwmaConfig {
    fn default() -> EwmaConfig {
        EwmaConfig {
            alpha: 0.1,
            k: 4.0,
            rel_floor: 0.05,
            abs_floor: 0.0,
            warmup: 24,
            clear_after: 8,
            critical_k: 8.0,
        }
    }
}

/// EWMA band detector over one series. Feed with [`EwmaDetector::update`];
/// a returned [`Alert`] is a state transition (fire or clear).
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    cfg: EwmaConfig,
    metric: String,
    mean: f64,
    /// EWMA of |sample − mean| (mean absolute deviation).
    dev: f64,
    seen: u64,
    firing: bool,
    in_band_streak: u64,
}

impl EwmaDetector {
    /// A fresh detector for `metric`.
    pub fn new(metric: impl Into<String>, cfg: EwmaConfig) -> EwmaDetector {
        EwmaDetector {
            cfg,
            metric: metric.into(),
            mean: 0.0,
            dev: 0.0,
            seen: 0,
            firing: false,
            in_band_streak: 0,
        }
    }

    /// Whether the detector currently considers the series out of band.
    pub fn is_firing(&self) -> bool {
        self.firing
    }

    /// Learned baseline mean.
    pub fn baseline(&self) -> f64 {
        self.mean
    }

    /// Feeds one sample; returns an alert on a fire/clear transition.
    ///
    /// The baseline only absorbs in-band samples once warm — an active
    /// fault must not teach the detector that broken is normal.
    pub fn update(&mut self, iteration: u64, value: f64) -> Option<Alert> {
        self.seen += 1;
        if self.seen == 1 {
            self.mean = value;
            self.dev = 0.0;
            return None;
        }
        let band = (self.cfg.k * self.dev)
            .max(self.cfg.rel_floor * self.mean.abs())
            .max(self.cfg.abs_floor);
        let deviation = (value - self.mean).abs();
        let warm = self.seen > self.cfg.warmup;
        let out_of_band = warm && band > 0.0 && deviation > band;

        let mut alert = None;
        if out_of_band {
            self.in_band_streak = 0;
            if !self.firing {
                self.firing = true;
                let critical_band = (self.cfg.critical_k * self.dev)
                    .max(self.cfg.rel_floor * self.mean.abs())
                    .max(self.cfg.abs_floor);
                alert = Some(Alert {
                    iteration,
                    metric: self.metric.clone(),
                    detector: "ewma",
                    state: AlertState::Firing,
                    severity: if deviation > critical_band {
                        Severity::Critical
                    } else {
                        Severity::Warning
                    },
                    evidence: AlertEvidence {
                        observed: value,
                        baseline: self.mean,
                        threshold: band,
                        statistic: deviation / band,
                    },
                });
            }
        } else {
            if self.firing {
                self.in_band_streak += 1;
                if self.in_band_streak >= self.cfg.clear_after {
                    self.firing = false;
                    self.in_band_streak = 0;
                    alert = Some(Alert {
                        iteration,
                        metric: self.metric.clone(),
                        detector: "ewma",
                        state: AlertState::Cleared,
                        severity: Severity::Warning,
                        evidence: AlertEvidence {
                            observed: value,
                            baseline: self.mean,
                            threshold: band,
                            statistic: if band > 0.0 { deviation / band } else { 0.0 },
                        },
                    });
                }
            }
            // Learn only from in-band (or pre-warm) samples.
            self.mean += self.cfg.alpha * (value - self.mean);
            self.dev += self.cfg.alpha * (deviation - self.dev);
        }
        alert
    }
}

/// Tuning for a [`PageHinkley`] detector.
#[derive(Debug, Clone, Copy)]
pub struct PageHinkleyConfig {
    /// Magnitude tolerance: deviations below `delta · |mean|` do not
    /// accumulate. Relative, so one config fits joules and seconds.
    pub delta: f64,
    /// Firing threshold for the cumulative statistic, as a multiple of
    /// `|mean|` (relative for the same reason).
    pub lambda: f64,
    /// Samples to learn the running mean before the test may fire.
    pub warmup: u64,
}

impl Default for PageHinkleyConfig {
    fn default() -> PageHinkleyConfig {
        PageHinkleyConfig {
            delta: 0.08,
            lambda: 0.6,
            warmup: 24,
        }
    }
}

/// Page–Hinkley cumulative-sum test for sustained upward drift (the
/// direction that matters for energy and latency). Resets after firing
/// so a recovered series can fire again on the next regression.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    cfg: PageHinkleyConfig,
    metric: String,
    mean: f64,
    seen: u64,
    /// Cumulative sum of positive deviations minus the tolerance.
    cum: f64,
    /// Running minimum of `cum` (the PH statistic is `cum - min`).
    cum_min: f64,
}

impl PageHinkley {
    /// A fresh test for `metric`.
    pub fn new(metric: impl Into<String>, cfg: PageHinkleyConfig) -> PageHinkley {
        PageHinkley {
            cfg,
            metric: metric.into(),
            mean: 0.0,
            seen: 0,
            cum: 0.0,
            cum_min: 0.0,
        }
    }

    /// Learned running mean.
    pub fn baseline(&self) -> f64 {
        self.mean
    }

    /// Feeds one sample; returns a firing alert when the cumulative
    /// statistic crosses lambda (then resets).
    pub fn update(&mut self, iteration: u64, value: f64) -> Option<Alert> {
        self.seen += 1;
        // Incremental running mean over all samples seen so far.
        self.mean += (value - self.mean) / self.seen as f64;
        let tolerance = self.cfg.delta * self.mean.abs();
        self.cum += (value - self.mean) - tolerance;
        self.cum_min = self.cum_min.min(self.cum);
        let statistic = self.cum - self.cum_min;
        let lambda = self.cfg.lambda * self.mean.abs();
        if self.seen > self.cfg.warmup && lambda > 0.0 && statistic > lambda {
            let alert = Alert {
                iteration,
                metric: self.metric.clone(),
                detector: "page_hinkley",
                state: AlertState::Firing,
                severity: Severity::Warning,
                evidence: AlertEvidence {
                    observed: value,
                    baseline: self.mean,
                    threshold: lambda,
                    statistic,
                },
            };
            self.cum = 0.0;
            self.cum_min = 0.0;
            return Some(alert);
        }
        None
    }
}

/// A bounded, append-only log of alerts — the `/alerts` endpoint's
/// backing store. Keeps the newest `capacity` alerts and a lifetime
/// count so evictions are visible.
#[derive(Debug)]
pub struct AlertLog {
    capacity: usize,
    alerts: parking_lot::Mutex<std::collections::VecDeque<Alert>>,
    total: std::sync::atomic::AtomicU64,
}

impl AlertLog {
    /// An empty log retaining at most `capacity` alerts.
    pub fn new(capacity: usize) -> AlertLog {
        AlertLog {
            capacity: capacity.max(1),
            alerts: parking_lot::Mutex::new(std::collections::VecDeque::new()),
            total: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Appends one alert.
    pub fn push(&self, alert: Alert) {
        self.total
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut alerts = self.alerts.lock();
        if alerts.len() == self.capacity {
            alerts.pop_front();
        }
        alerts.push_back(alert);
    }

    /// Retained alerts, oldest first.
    pub fn alerts(&self) -> Vec<Alert> {
        self.alerts.lock().iter().cloned().collect()
    }

    /// Alerts ever pushed (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Alerts currently in the firing state (a fire with no later clear
    /// for the same metric+detector).
    pub fn firing(&self) -> Vec<Alert> {
        let alerts = self.alerts.lock();
        let mut open: std::collections::BTreeMap<(String, &'static str), Alert> =
            std::collections::BTreeMap::new();
        for a in alerts.iter() {
            let key = (a.metric.clone(), a.detector);
            match a.state {
                AlertState::Firing => {
                    open.insert(key, a.clone());
                }
                AlertState::Cleared => {
                    open.remove(&key);
                }
            }
        }
        let mut firing: Vec<Alert> = open.into_values().collect();
        firing.sort_by_key(|a| a.iteration);
        firing
    }
}
