//! Point-in-time view of the metric registry, flattened to scalar samples
//! and rendered as stable, sorted, Prometheus-style text — the format the
//! golden fixtures under `tests/golden/` lock down.

use std::fmt::Write as _;

/// One flattened metric sample: histograms have already been expanded into
/// `_bucket`/`_sum`/`_count` scalars by the time a sample exists.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Sample {
    pub(crate) name: String,
    /// Sorted by label key (except `le`, which is appended to bucket
    /// samples in bound order).
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) value: f64,
}

/// A stable snapshot of every registered metric.
///
/// Samples are ordered by `(name, labels)` with histogram buckets kept in
/// bound order, so [`MetricsSnapshot::render`] is deterministic for a
/// deterministic workload — suitable for byte-exact golden tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// The snapshot of a disabled [`crate::Telemetry`]: no samples.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    pub(crate) fn from_samples(samples: Vec<Sample>) -> MetricsSnapshot {
        MetricsSnapshot { samples }
    }

    /// Whether the snapshot holds any samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of flattened samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Looks up a sample by name and label set (label order irrelevant).
    /// Histogram data is addressed through its expanded forms, e.g.
    /// `value_of("latency_count", &[])`.
    pub fn value_of(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort_unstable();
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == want.len()
                    && s.labels
                        .iter()
                        .zip(&want)
                        .all(|((k, v), (wk, wv))| k == wk && v == wv)
            })
            .map(|s| s.value)
    }

    /// Iterates `(name, labels, value)` in render order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(String, String)], f64)> {
        self.samples
            .iter()
            .map(|s| (s.name.as_str(), s.labels.as_slice(), s.value))
    }

    /// Renders Prometheus-style text: one `name{k="v"} value` line per
    /// sample, sorted, `\n`-terminated (empty snapshot renders to `""`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}={:?}", v);
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", format_value(s.value));
        }
        out
    }
}

/// Stable scalar formatting: integral values print without a fractional
/// part, everything else uses Rust's shortest-roundtrip `f64` display.
pub(crate) fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}
