//! Point-in-time view of the metric registry: structured entries (one per
//! registered metric) flattened to scalar samples and rendered as stable,
//! sorted, Prometheus-style text — the format the golden fixtures under
//! `tests/golden/` lock down.
//!
//! Snapshots are also the fleet's merge unit: [`MetricsSnapshot::merge`]
//! combines per-shard snapshots with *exact* counter and histogram
//! arithmetic (bucket-wise sums, quantiles recomputed from the merged
//! buckets), so a fleet rollup's counters equal the sum of its shards'
//! counters to the bit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The structured value of one registry entry, before flattening.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EntryValue {
    /// Counters, float counters, and gauges all flatten to one scalar and
    /// merge by summation.
    Scalar(f64),
    /// A histogram keeps its bucket structure so merges stay exact and
    /// quantiles can be recomputed from merged buckets.
    Histogram {
        /// Upper bounds (inclusive) of each bucket.
        bounds: Vec<f64>,
        /// Per-bucket (non-cumulative) observation counts.
        buckets: Vec<u64>,
        /// Total observations (including beyond the last bound).
        count: u64,
        /// Sum of all observations.
        sum: f64,
    },
}

/// One registry entry: a metric identity plus its structured value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Entry {
    pub(crate) name: String,
    /// Sorted by label key.
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) value: EntryValue,
}

/// One flattened metric sample: histograms have already been expanded into
/// `_bucket`/`_sum`/`_count` scalars by the time a sample exists.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Sample {
    pub(crate) name: String,
    /// Sorted by label key (except `le`, which is appended to bucket
    /// samples in bound order).
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) value: f64,
}

/// A stable snapshot of every registered metric.
///
/// Entries are canonically ordered by `(name, labels)` — a **tested
/// invariant**, not an accident of registry iteration: the constructor
/// sorts whatever order the 16 registry shards happened to yield, so
/// [`MetricsSnapshot::render`] is deterministic for a deterministic
/// workload no matter how metrics interleaved across shards or threads.
/// Histogram buckets are kept in bound order within their entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<Entry>,
    samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// The snapshot of a disabled [`crate::Telemetry`]: no samples.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Builds a snapshot from raw entries: applies the canonical
    /// `(name, labels)` sort, then flattens histograms into cumulative
    /// `_bucket{le=..}` samples plus `_sum`/`_count` and interpolated
    /// `_p50`/`_p90`/`_p99` quantiles (omitted for empty histograms).
    pub(crate) fn from_entries(mut entries: Vec<Entry>) -> MetricsSnapshot {
        entries.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        let mut samples = Vec::with_capacity(entries.len());
        for entry in &entries {
            flatten_into(entry, &mut samples);
        }
        MetricsSnapshot { entries, samples }
    }

    /// Whether the snapshot holds any samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of flattened samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Looks up a sample by name and label set (label order irrelevant).
    /// Histogram data is addressed through its expanded forms, e.g.
    /// `value_of("latency_count", &[])`.
    pub fn value_of(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort_unstable();
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == want.len()
                    && s.labels
                        .iter()
                        .zip(&want)
                        .all(|((k, v), (wk, wv))| k == wk && v == wv)
            })
            .map(|s| s.value)
    }

    /// Iterates `(name, labels, value)` in render order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(String, String)], f64)> {
        self.samples
            .iter()
            .map(|s| (s.name.as_str(), s.labels.as_slice(), s.value))
    }

    /// Merges two snapshots with exact metric arithmetic: scalars
    /// (counters, float counters, gauges) sum; histograms sum bucket-wise
    /// (`_sum`/`_count` included) and their quantiles are recomputed from
    /// the merged buckets. Entries present on only one side pass through
    /// unchanged. This is the fleet-rollup primitive: merged counters
    /// equal the sum of the inputs' counters exactly.
    ///
    /// # Panics
    ///
    /// Panics if the same `(name, labels)` identity is a scalar on one
    /// side and a histogram on the other, or if two histograms disagree
    /// on bucket bounds — both indicate a metric-identity bug upstream.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot::merge_all([self, other])
    }

    /// [`MetricsSnapshot::merge`] over any number of snapshots.
    pub fn merge_all<'a>(snaps: impl IntoIterator<Item = &'a MetricsSnapshot>) -> MetricsSnapshot {
        let mut merged: BTreeMap<(String, Vec<(String, String)>), EntryValue> = BTreeMap::new();
        for snap in snaps {
            for entry in &snap.entries {
                let key = (entry.name.clone(), entry.labels.clone());
                match merged.entry(key) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(entry.value.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        merge_value(&entry.name, slot.get_mut(), &entry.value);
                    }
                }
            }
        }
        MetricsSnapshot::from_entries(
            merged
                .into_iter()
                .map(|((name, labels), value)| Entry {
                    name,
                    labels,
                    value,
                })
                .collect(),
        )
    }

    /// Renders Prometheus-style text: one `name{k="v"} value` line per
    /// sample, sorted, `\n`-terminated (empty snapshot renders to `""`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}={:?}", v);
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", format_value(s.value));
        }
        out
    }
}

/// Accumulates `add` into `into`, with exact semantics per kind.
fn merge_value(name: &str, into: &mut EntryValue, add: &EntryValue) {
    match (into, add) {
        (EntryValue::Scalar(a), EntryValue::Scalar(b)) => *a += b,
        (
            EntryValue::Histogram {
                bounds: ab,
                buckets: abk,
                count: ac,
                sum: asum,
            },
            EntryValue::Histogram {
                bounds: bb,
                buckets: bbk,
                count: bc,
                sum: bsum,
            },
        ) => {
            assert_eq!(
                ab, bb,
                "metric {name:?}: merging histograms with different bucket bounds"
            );
            for (a, b) in abk.iter_mut().zip(bbk) {
                *a += b;
            }
            *ac += bc;
            *asum += bsum;
        }
        _ => panic!("metric {name:?}: merging a scalar with a histogram"),
    }
}

/// A builder for synthesized snapshots — counters a subsystem tracks
/// outside the registry (fleet admission accounting, per-tenant
/// breakdowns) rendered in the same stable format and mergeable with
/// registry snapshots.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    entries: Vec<Entry>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> SnapshotBuilder {
        SnapshotBuilder::default()
    }

    /// Adds one scalar sample (counter or gauge semantics are the
    /// caller's business; merges sum either way).
    pub fn scalar(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        self.entries.push(Entry {
            name: name.to_string(),
            labels,
            value: EntryValue::Scalar(value),
        });
        self
    }

    /// Finishes the snapshot (canonically sorted, like every snapshot).
    pub fn build(self) -> MetricsSnapshot {
        MetricsSnapshot::from_entries(self.entries)
    }
}

/// Flattens one entry into samples, in the canonical per-entry order:
/// buckets (bound order), `+Inf`, `_sum`, `_count`, quantiles.
fn flatten_into(entry: &Entry, samples: &mut Vec<Sample>) {
    match &entry.value {
        EntryValue::Scalar(v) => samples.push(Sample {
            name: entry.name.clone(),
            labels: entry.labels.clone(),
            value: *v,
        }),
        EntryValue::Histogram {
            bounds,
            buckets,
            count,
            sum,
        } => {
            let mut cumulative = 0u64;
            for (bound, in_bucket) in bounds.iter().zip(buckets) {
                cumulative += in_bucket;
                samples.push(Sample {
                    name: format!("{}_bucket", entry.name),
                    labels: with_le(&entry.labels, format_value(*bound)),
                    value: cumulative as f64,
                });
            }
            samples.push(Sample {
                name: format!("{}_bucket", entry.name),
                labels: with_le(&entry.labels, "+Inf".to_string()),
                value: *count as f64,
            });
            samples.push(Sample {
                name: format!("{}_sum", entry.name),
                labels: entry.labels.clone(),
                value: *sum,
            });
            samples.push(Sample {
                name: format!("{}_count", entry.name),
                labels: entry.labels.clone(),
                value: *count as f64,
            });
            for (q, suffix) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
                if let Some(value) = histogram_quantile(bounds, buckets, *count, q) {
                    samples.push(Sample {
                        name: format!("{}_{suffix}", entry.name),
                        labels: entry.labels.clone(),
                        value,
                    });
                }
            }
        }
    }
}

/// Prometheus-style quantile estimate over histogram buckets, with
/// well-defined edge cases instead of interpolating off the end:
///
/// * an **empty** histogram has no quantiles (`None` — callers omit the
///   samples entirely);
/// * when every observation landed in **one** bucket (a single sample,
///   or all-equal samples), the quantile is that bucket's upper bound —
///   the tightest true statement the buckets support, with no fictitious
///   interpolation from the bucket's lower edge;
/// * observations beyond the highest finite bound clamp to that bound
///   (the `+Inf` bucket has no width to interpolate over);
/// * otherwise: find the bucket the `q`-rank observation falls into and
///   interpolate linearly within it (the first bucket interpolates from
///   zero).
pub fn histogram_quantile(bounds: &[f64], buckets: &[u64], count: u64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let in_finite: u64 = buckets.iter().sum();
    if in_finite == 0 {
        // Everything overflowed the last finite bound.
        return bounds.last().copied();
    }
    if buckets.iter().filter(|b| **b > 0).count() == 1 && in_finite == count {
        let only = buckets.iter().position(|b| *b > 0).expect("one nonzero");
        return Some(bounds[only]);
    }
    let rank = q * count as f64;
    let mut cumulative = 0u64;
    for (i, (bound, in_bucket)) in bounds.iter().zip(buckets).enumerate() {
        let below = cumulative as f64;
        cumulative += in_bucket;
        if (cumulative as f64) >= rank && *in_bucket > 0 {
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            return Some(lower + (bound - lower) * ((rank - below) / *in_bucket as f64));
        }
    }
    // The rank lands in the +Inf bucket: clamp to the highest finite bound.
    bounds.last().copied()
}

fn with_le(labels: &[(String, String)], le: String) -> Vec<(String, String)> {
    let mut out = labels.to_vec();
    out.push(("le".to_string(), le));
    out
}

/// Stable scalar formatting: integral values print without a fractional
/// part, everything else uses Rust's shortest-roundtrip `f64` display.
pub(crate) fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}
