//! Sharded metric registry. Handles are atomics shared with call sites;
//! the shard mutexes are held only while creating a handle or taking a
//! snapshot, never on the metric hot path.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{default_bounds, Counter, FloatCounter, Gauge, Histogram, HistogramCore};
use crate::snapshot::{Entry, EntryValue, MetricsSnapshot};
use crate::Labels;

const SHARDS: usize = 16;

#[derive(PartialEq, Eq, Hash, Clone)]
struct Key {
    name: &'static str,
    /// Sorted by label key, so lookup order never matters.
    labels: Vec<(&'static str, String)>,
}

impl Key {
    fn new(name: &'static str, labels: Labels<'_>) -> Key {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
        labels.sort_unstable();
        Key { name, labels }
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    FloatCounter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::FloatCounter(_) => "float_counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

pub(crate) struct Registry {
    shards: [Mutex<HashMap<Key, Metric>>; SHARDS],
}

impl Registry {
    pub(crate) fn new() -> Registry {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn with_entry<T>(
        &self,
        name: &'static str,
        labels: Labels<'_>,
        make: impl FnOnce() -> Metric,
        open: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let key = Key::new(name, labels);
        let mut shard = self.shards[key.shard()].lock();
        let metric = shard.entry(key).or_insert_with(make);
        match open(metric) {
            Some(handle) => handle,
            None => panic!(
                "telemetry metric {name:?} already registered as a {}",
                metric.kind()
            ),
        }
    }

    pub(crate) fn counter(&self, name: &'static str, labels: Labels<'_>) -> Counter {
        self.with_entry(
            name,
            labels,
            || Metric::Counter(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Counter(cell) => Some(Counter::shared(Arc::clone(cell))),
                _ => None,
            },
        )
    }

    pub(crate) fn float_counter(&self, name: &'static str, labels: Labels<'_>) -> FloatCounter {
        self.with_entry(
            name,
            labels,
            || Metric::FloatCounter(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            |m| match m {
                Metric::FloatCounter(cell) => Some(FloatCounter::shared(Arc::clone(cell))),
                _ => None,
            },
        )
    }

    pub(crate) fn gauge(&self, name: &'static str, labels: Labels<'_>) -> Gauge {
        self.with_entry(
            name,
            labels,
            || Metric::Gauge(Arc::new(AtomicI64::new(0))),
            |m| match m {
                Metric::Gauge(cell) => Some(Gauge::shared(Arc::clone(cell))),
                _ => None,
            },
        )
    }

    pub(crate) fn histogram(&self, name: &'static str, labels: Labels<'_>) -> Histogram {
        self.with_entry(
            name,
            labels,
            || Metric::Histogram(Arc::new(HistogramCore::new(default_bounds()))),
            |m| match m {
                Metric::Histogram(core) => Some(Histogram::shared(Arc::clone(core))),
                _ => None,
            },
        )
    }

    /// Reads every metric into structured entries and hands them to the
    /// snapshot constructor, which applies the canonical `(name, labels)`
    /// sort and flattens histograms — shard iteration order never reaches
    /// the rendered output.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<Entry> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, metric) in shard.iter() {
                let value = match metric {
                    Metric::Counter(c) => EntryValue::Scalar(c.load(Ordering::Relaxed) as f64),
                    Metric::FloatCounter(c) => {
                        EntryValue::Scalar(f64::from_bits(c.load(Ordering::Relaxed)))
                    }
                    Metric::Gauge(g) => EntryValue::Scalar(g.load(Ordering::Relaxed) as f64),
                    Metric::Histogram(core) => EntryValue::Histogram {
                        bounds: core.bounds.clone(),
                        buckets: core
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: core.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                    },
                };
                entries.push(Entry {
                    name: key.name.to_string(),
                    labels: key
                        .labels
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect(),
                    value,
                });
            }
        }
        MetricsSnapshot::from_entries(entries)
    }
}
