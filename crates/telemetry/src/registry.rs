//! Sharded metric registry. Handles are atomics shared with call sites;
//! the shard mutexes are held only while creating a handle or taking a
//! snapshot, never on the metric hot path.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{default_bounds, Counter, FloatCounter, Gauge, Histogram, HistogramCore};
use crate::snapshot::{MetricsSnapshot, Sample};
use crate::Labels;

const SHARDS: usize = 16;

#[derive(PartialEq, Eq, Hash, Clone)]
struct Key {
    name: &'static str,
    /// Sorted by label key, so lookup order never matters.
    labels: Vec<(&'static str, String)>,
}

impl Key {
    fn new(name: &'static str, labels: Labels<'_>) -> Key {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
        labels.sort_unstable();
        Key { name, labels }
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    FloatCounter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::FloatCounter(_) => "float_counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

pub(crate) struct Registry {
    shards: [Mutex<HashMap<Key, Metric>>; SHARDS],
}

impl Registry {
    pub(crate) fn new() -> Registry {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn with_entry<T>(
        &self,
        name: &'static str,
        labels: Labels<'_>,
        make: impl FnOnce() -> Metric,
        open: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let key = Key::new(name, labels);
        let mut shard = self.shards[key.shard()].lock();
        let metric = shard.entry(key).or_insert_with(make);
        match open(metric) {
            Some(handle) => handle,
            None => panic!(
                "telemetry metric {name:?} already registered as a {}",
                metric.kind()
            ),
        }
    }

    pub(crate) fn counter(&self, name: &'static str, labels: Labels<'_>) -> Counter {
        self.with_entry(
            name,
            labels,
            || Metric::Counter(Arc::new(AtomicU64::new(0))),
            |m| match m {
                Metric::Counter(cell) => Some(Counter::shared(Arc::clone(cell))),
                _ => None,
            },
        )
    }

    pub(crate) fn float_counter(&self, name: &'static str, labels: Labels<'_>) -> FloatCounter {
        self.with_entry(
            name,
            labels,
            || Metric::FloatCounter(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
            |m| match m {
                Metric::FloatCounter(cell) => Some(FloatCounter::shared(Arc::clone(cell))),
                _ => None,
            },
        )
    }

    pub(crate) fn gauge(&self, name: &'static str, labels: Labels<'_>) -> Gauge {
        self.with_entry(
            name,
            labels,
            || Metric::Gauge(Arc::new(AtomicI64::new(0))),
            |m| match m {
                Metric::Gauge(cell) => Some(Gauge::shared(Arc::clone(cell))),
                _ => None,
            },
        )
    }

    pub(crate) fn histogram(&self, name: &'static str, labels: Labels<'_>) -> Histogram {
        self.with_entry(
            name,
            labels,
            || Metric::Histogram(Arc::new(HistogramCore::new(default_bounds()))),
            |m| match m {
                Metric::Histogram(core) => Some(Histogram::shared(Arc::clone(core))),
                _ => None,
            },
        )
    }

    /// Flattens every metric into sorted scalar samples. Histograms expand
    /// to cumulative `_bucket{le=..}` samples plus `_sum` and `_count`.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(Key, SnapValue)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, metric) in shard.iter() {
                let value = match metric {
                    Metric::Counter(c) => SnapValue::Scalar(c.load(Ordering::Relaxed) as f64),
                    Metric::FloatCounter(c) => {
                        SnapValue::Scalar(f64::from_bits(c.load(Ordering::Relaxed)))
                    }
                    Metric::Gauge(g) => SnapValue::Scalar(g.load(Ordering::Relaxed) as f64),
                    Metric::Histogram(core) => SnapValue::Histogram {
                        bounds: core.bounds.clone(),
                        buckets: core
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: core.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                    },
                };
                entries.push((key.clone(), value));
            }
        }
        entries.sort_unstable_by(|(a, _), (b, _)| {
            a.name.cmp(b.name).then_with(|| a.labels.cmp(&b.labels))
        });

        let mut samples = Vec::with_capacity(entries.len());
        for (key, value) in entries {
            let labels: Vec<(String, String)> = key
                .labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect();
            match value {
                SnapValue::Scalar(v) => samples.push(Sample {
                    name: key.name.to_string(),
                    labels,
                    value: v,
                }),
                SnapValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                } => {
                    let mut cumulative = 0u64;
                    for (bound, in_bucket) in bounds.iter().zip(&buckets) {
                        cumulative += in_bucket;
                        samples.push(Sample {
                            name: format!("{}_bucket", key.name),
                            labels: with_le(&labels, crate::snapshot::format_value(*bound)),
                            value: cumulative as f64,
                        });
                    }
                    samples.push(Sample {
                        name: format!("{}_bucket", key.name),
                        labels: with_le(&labels, "+Inf".to_string()),
                        value: count as f64,
                    });
                    samples.push(Sample {
                        name: format!("{}_sum", key.name),
                        labels: labels.clone(),
                        value: sum,
                    });
                    samples.push(Sample {
                        name: format!("{}_count", key.name),
                        labels: labels.clone(),
                        value: count as f64,
                    });
                    // Interpolated quantiles, Prometheus `histogram_quantile`
                    // style; omitted entirely for an empty histogram.
                    if count > 0 {
                        for (q, suffix) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
                            samples.push(Sample {
                                name: format!("{}_{suffix}", key.name),
                                labels: labels.clone(),
                                value: interpolate_quantile(&bounds, &buckets, count, q),
                            });
                        }
                    }
                }
            }
        }
        MetricsSnapshot::from_samples(samples)
    }
}

enum SnapValue {
    Scalar(f64),
    Histogram {
        bounds: Vec<f64>,
        buckets: Vec<u64>,
        count: u64,
        sum: f64,
    },
}

/// Prometheus-style quantile estimate over cumulative histogram buckets:
/// find the bucket the `q`-rank observation falls into and interpolate
/// linearly within it. Observations beyond the highest finite bound clamp
/// to that bound (the `+Inf` bucket has no width to interpolate over);
/// the first bucket interpolates from zero. `count` must be positive.
fn interpolate_quantile(bounds: &[f64], buckets: &[u64], count: u64, q: f64) -> f64 {
    let rank = q * count as f64;
    let mut cumulative = 0u64;
    for (i, (bound, in_bucket)) in bounds.iter().zip(buckets).enumerate() {
        let below = cumulative as f64;
        cumulative += in_bucket;
        if (cumulative as f64) >= rank {
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            if *in_bucket == 0 {
                return *bound;
            }
            return lower + (bound - lower) * ((rank - below) / *in_bucket as f64);
        }
    }
    // The rank lands in the +Inf bucket: clamp to the highest finite bound.
    bounds.last().copied().unwrap_or(0.0)
}

fn with_le(labels: &[(String, String)], le: String) -> Vec<(String, String)> {
    let mut out = labels.to_vec();
    out.push(("le".to_string(), le));
    out
}
