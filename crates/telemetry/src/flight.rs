//! The flight recorder: a fixed-capacity ring of per-iteration
//! time-series samples, kept cheap enough to run always-on and dumped as
//! a JSON post-mortem when something goes wrong (a chaos fault fires, a
//! characterization panics and is contained).
//!
//! The recorder deliberately stores plain numbers rather than typed
//! energy structures: telemetry sits below the planner crates in the
//! dependency order, so the producer (the chaos harness, the server)
//! flattens its `EnergyBreakdown` into the sample at record time.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::snapshot::format_value;

/// One iteration of the recorded time series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationSample {
    /// Iteration index (monotone within one run).
    pub iteration: u64,
    /// Synchronized iteration time, seconds.
    pub sync_time_s: f64,
    /// Useful joules of the iteration (slack-filling alternative).
    pub useful_j: f64,
    /// Intrinsic-bloat joules (stage imbalance inside one pipeline).
    pub intrinsic_j: f64,
    /// Extrinsic-bloat joules (gradient-sync straggler wait).
    pub extrinsic_j: f64,
    /// Lowest frequency the deployed schedule assigns, MHz (0 when the
    /// schedule assigns no frequencies at all).
    pub freq_min_mhz: u32,
    /// Highest frequency the deployed schedule assigns, MHz.
    pub freq_max_mhz: u32,
    /// Whether the serving job was in degraded mode during the iteration.
    pub degraded: bool,
    /// Degraded frontier lookups this iteration (delta of the
    /// `degraded_lookups` counter, not its running total).
    pub degraded_lookups: u64,
    /// Faults injected during this iteration.
    pub faults: u64,
}

impl IterationSample {
    /// Total energy of the sample, joules.
    pub fn total_j(&self) -> f64 {
        self.useful_j + self.intrinsic_j + self.extrinsic_j
    }
}

/// Compact description of a [`FlightSnapshot`], cheap enough to embed in
/// every `JobStatus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightSummary {
    /// Samples currently retained in the ring.
    pub samples: usize,
    /// Samples evicted because the ring was full.
    pub dropped: u64,
    /// Retained samples recorded in degraded mode.
    pub degraded_samples: usize,
    /// Faults across the retained samples.
    pub faults: u64,
    /// Iteration index of the newest sample, if any.
    pub last_iteration: Option<u64>,
}

/// A point-in-time copy of the recorder's ring, oldest sample first.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSnapshot {
    /// Ring capacity of the recorder this was taken from.
    pub capacity: usize,
    /// Samples evicted before this snapshot was taken.
    pub dropped: u64,
    /// Retained samples, oldest first.
    pub samples: Vec<IterationSample>,
}

impl FlightSnapshot {
    /// An empty snapshot (what a fresh recorder returns).
    pub fn empty(capacity: usize) -> FlightSnapshot {
        FlightSnapshot {
            capacity,
            dropped: 0,
            samples: Vec::new(),
        }
    }

    /// Retained samples recorded while the job was degraded.
    pub fn degraded_samples(&self) -> usize {
        self.samples.iter().filter(|s| s.degraded).count()
    }

    /// Sum of the per-sample degraded-lookup deltas — equals the
    /// `degraded_lookups` telemetry counter when the ring kept every
    /// iteration of the run.
    pub fn degraded_lookups(&self) -> u64 {
        self.samples.iter().map(|s| s.degraded_lookups).sum()
    }

    /// Faults across the retained samples.
    pub fn faults(&self) -> u64 {
        self.samples.iter().map(|s| s.faults).sum()
    }

    /// The compact summary of this snapshot.
    pub fn summary(&self) -> FlightSummary {
        FlightSummary {
            samples: self.samples.len(),
            dropped: self.dropped,
            degraded_samples: self.degraded_samples(),
            faults: self.faults(),
            last_iteration: self.samples.last().map(|s| s.iteration),
        }
    }

    /// Renders the snapshot as a self-contained JSON document — the
    /// post-mortem artifact [`FlightRecorder::dump_to`] writes. Numbers
    /// use the same stable formatting as the metrics renderer (no
    /// exponents, shortest roundtrip), so the output is both
    /// deterministic and standards-compliant JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"capacity\": {},\n", self.capacity));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str(&format!(
            "  \"degraded_samples\": {},\n",
            self.degraded_samples()
        ));
        out.push_str(&format!("  \"faults\": {},\n", self.faults()));
        out.push_str("  \"samples\": [");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"iteration\": {}, \"sync_time_s\": {}, \"useful_j\": {}, \
                 \"intrinsic_j\": {}, \"extrinsic_j\": {}, \"freq_min_mhz\": {}, \
                 \"freq_max_mhz\": {}, \"degraded\": {}, \"degraded_lookups\": {}, \
                 \"faults\": {}}}",
                s.iteration,
                format_value(s.sync_time_s),
                format_value(s.useful_j),
                format_value(s.intrinsic_j),
                format_value(s.extrinsic_j),
                s.freq_min_mhz,
                s.freq_max_mhz,
                s.degraded,
                s.degraded_lookups,
                s.faults,
            ));
        }
        if !self.samples.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// A fixed-capacity per-iteration flight recorder.
///
/// Recording is a short critical section on a ring buffer (no
/// allocation once the ring is warm); snapshots copy the ring out.
/// Shared freely via `Arc` — all methods take `&self`.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<IterationSample>>,
    dropped: AtomicU64,
    dumps: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no sample has been recorded (or all were evicted — which
    /// cannot happen, eviction implies a newer sample).
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Post-mortem dumps written so far via [`FlightRecorder::dump_to`].
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Records one iteration, evicting the oldest sample when full.
    pub fn record(&self, sample: IterationSample) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(sample);
    }

    /// Copies the ring out, oldest sample first.
    pub fn snapshot(&self) -> FlightSnapshot {
        let ring = self.ring.lock();
        FlightSnapshot {
            capacity: self.capacity,
            dropped: self.dropped.load(Ordering::Relaxed),
            samples: ring.iter().copied().collect(),
        }
    }

    /// The summary of the current ring contents.
    pub fn summary(&self) -> FlightSummary {
        self.snapshot().summary()
    }

    /// Writes the current snapshot as a JSON post-mortem to `path`,
    /// creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.snapshot().to_json().as_bytes())?;
        self.dumps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}
