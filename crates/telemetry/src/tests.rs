use std::sync::Arc;
use std::time::Duration;

use crate::{span, Telemetry, TelemetrySink, TraceWriter};

#[test]
fn counters_register_and_accumulate() {
    let tel = Telemetry::enabled();
    let c = tel.counter("requests_total");
    c.inc();
    c.add(4);
    assert_eq!(c.get(), 5);
    // Same name+labels returns the same underlying atomic.
    let again = tel.counter("requests_total");
    again.inc();
    assert_eq!(c.get(), 6);
    assert_eq!(tel.snapshot().value_of("requests_total", &[]), Some(6.0));
}

#[test]
fn labels_are_order_insensitive() {
    let tel = Telemetry::enabled();
    tel.counter_with("hits", &[("a", "1"), ("b", "2")]).inc();
    tel.counter_with("hits", &[("b", "2"), ("a", "1")]).inc();
    let snap = tel.snapshot();
    assert_eq!(snap.len(), 1);
    assert_eq!(snap.value_of("hits", &[("b", "2"), ("a", "1")]), Some(2.0));
}

#[test]
fn float_counter_and_gauge() {
    let tel = Telemetry::enabled();
    let f = tel.float_counter("busy_seconds_total");
    f.add(0.25);
    f.add(0.5);
    assert!((f.get() - 0.75).abs() < 1e-12);
    let g = tel.gauge("occupancy");
    g.add(3);
    g.add(-1);
    assert_eq!(g.get(), 2);
    g.set(7);
    let snap = tel.snapshot();
    assert_eq!(snap.value_of("occupancy", &[]), Some(7.0));
    assert_eq!(snap.value_of("busy_seconds_total", &[]), Some(0.75));
}

#[test]
fn histogram_buckets_are_cumulative() {
    let tel = Telemetry::enabled();
    let h = tel.histogram("latency_seconds");
    h.observe(0.5e-6); // first bucket (1e-6)
    h.observe(3e-6); // 5e-6 bucket
    h.observe(100.0); // beyond every bound: only +Inf
    h.observe_duration(Duration::from_micros(2)); // 2.5e-6 bucket
    assert_eq!(h.count(), 4);
    let snap = tel.snapshot();
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.000001")]),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.0000025")]),
        Some(2.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.000005")]),
        Some(3.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "+Inf")]),
        Some(4.0)
    );
    assert_eq!(snap.value_of("latency_seconds_count", &[]), Some(4.0));
    let sum = snap.value_of("latency_seconds_sum", &[]).unwrap();
    assert!((sum - 100.0000055).abs() < 1e-9, "sum = {sum}");
}

#[test]
fn spans_nest_into_paths_and_flush_custom_counters() {
    let tel = Telemetry::enabled();
    {
        let outer = span!(tel, "characterize", job = "gpt3");
        assert_eq!(outer.path(), Some("characterize"));
        {
            let mut inner = span!(tel, "cut");
            assert_eq!(inner.path(), Some("characterize/cut"));
            inner.add("resolves", 2);
            inner.add("resolves", 1);
        }
    }
    let snap = tel.snapshot();
    assert_eq!(
        snap.value_of(
            "perseus_span_calls_total",
            &[("job", "gpt3"), ("span", "characterize")]
        ),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("perseus_span_calls_total", &[("span", "characterize/cut")]),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("resolves", &[("span", "characterize/cut")]),
        Some(3.0)
    );
    // Wall time was recorded (monotonic clocks: non-negative is all we
    // can assert portably).
    assert!(
        snap.value_of(
            "perseus_span_seconds_total",
            &[("span", "characterize/cut")]
        )
        .unwrap()
            >= 0.0
    );
}

#[test]
fn disabled_telemetry_is_inert_but_usable() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    assert!(tel.now().is_none());
    let c = tel.counter("ignored");
    c.inc();
    assert_eq!(c.get(), 1); // detached handles still count locally
    let mut s = span!(tel, "lookup", job = "gpt3");
    assert!(!s.is_recording());
    assert_eq!(s.path(), None);
    s.add("anything", 10);
    drop(s);
    let snap = tel.snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.render(), "");
}

#[test]
fn render_is_sorted_and_stable() {
    let tel = Telemetry::enabled();
    tel.counter_with("zeta", &[("k", "1")]).add(3);
    tel.counter("alpha").add(1);
    tel.gauge_with("zeta", &[("k", "0")]).set(-2);
    let rendered = tel.snapshot().render();
    assert_eq!(rendered, "alpha 1\nzeta{k=\"0\"} -2\nzeta{k=\"1\"} 3\n");
    // A second snapshot of the unchanged registry renders identically.
    assert_eq!(tel.snapshot().render(), rendered);
}

#[test]
#[should_panic(expected = "already registered")]
fn kind_mismatch_panics() {
    let tel = Telemetry::enabled();
    tel.counter("metric").inc();
    tel.gauge("metric");
}

struct CountingSink(std::sync::atomic::AtomicUsize);

impl TelemetrySink for CountingSink {
    fn on_span(&self, record: &crate::SpanRecord) {
        assert!(!record.path.is_empty());
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[test]
fn sinks_receive_every_closed_span() {
    let tel = Telemetry::enabled();
    let sink = Arc::new(CountingSink(std::sync::atomic::AtomicUsize::new(0)));
    tel.add_sink(Arc::clone(&sink) as _);
    drop(tel.span("a"));
    drop(tel.span("b"));
    assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 2);
}

#[test]
fn trace_writer_emits_chrome_json() {
    let tel = Telemetry::enabled();
    let trace = Arc::new(TraceWriter::new());
    tel.add_sink(Arc::clone(&trace) as _);
    {
        let mut s = span!(tel, "lookup", job = "chaos");
        s.add("faults", 1);
    }
    assert_eq!(trace.len(), 1);
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"name\":\"lookup\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains("\"job\":\"chaos\""), "{json}");
    assert!(json.contains("\"faults\":\"1\""), "{json}");
    assert!(json.ends_with("]}"), "{json}");
}

#[test]
fn spans_on_other_threads_do_not_inherit_this_path() {
    let tel = Telemetry::enabled();
    let _outer = tel.span("main");
    let tel2 = tel.clone();
    std::thread::spawn(move || {
        let s = tel2.span("worker");
        assert_eq!(s.path(), Some("worker"));
    })
    .join()
    .unwrap();
}
