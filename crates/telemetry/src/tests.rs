use std::sync::Arc;
use std::time::Duration;

use crate::{Telemetry, TelemetrySink, TraceWriter};

#[test]
fn counters_register_and_accumulate() {
    let tel = Telemetry::enabled();
    let c = tel.counter("requests_total");
    c.inc();
    c.add(4);
    assert_eq!(c.get(), 5);
    // Same name+labels returns the same underlying atomic.
    let again = tel.counter("requests_total");
    again.inc();
    assert_eq!(c.get(), 6);
    assert_eq!(tel.snapshot().value_of("requests_total", &[]), Some(6.0));
}

#[test]
fn labels_are_order_insensitive() {
    let tel = Telemetry::enabled();
    tel.counter_with("hits", &[("a", "1"), ("b", "2")]).inc();
    tel.counter_with("hits", &[("b", "2"), ("a", "1")]).inc();
    let snap = tel.snapshot();
    assert_eq!(snap.len(), 1);
    assert_eq!(snap.value_of("hits", &[("b", "2"), ("a", "1")]), Some(2.0));
}

#[test]
fn float_counter_and_gauge() {
    let tel = Telemetry::enabled();
    let f = tel.float_counter("busy_seconds_total");
    f.add(0.25);
    f.add(0.5);
    assert!((f.get() - 0.75).abs() < 1e-12);
    let g = tel.gauge("occupancy");
    g.add(3);
    g.add(-1);
    assert_eq!(g.get(), 2);
    g.set(7);
    let snap = tel.snapshot();
    assert_eq!(snap.value_of("occupancy", &[]), Some(7.0));
    assert_eq!(snap.value_of("busy_seconds_total", &[]), Some(0.75));
}

#[test]
fn histogram_buckets_are_cumulative() {
    let tel = Telemetry::enabled();
    let h = tel.histogram("latency_seconds");
    h.observe(0.5e-6); // first bucket (1e-6)
    h.observe(3e-6); // 5e-6 bucket
    h.observe(100.0); // beyond every bound: only +Inf
    h.observe_duration(Duration::from_micros(2)); // 2.5e-6 bucket
    assert_eq!(h.count(), 4);
    let snap = tel.snapshot();
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.000001")]),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.0000025")]),
        Some(2.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.000005")]),
        Some(3.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "+Inf")]),
        Some(4.0)
    );
    assert_eq!(snap.value_of("latency_seconds_count", &[]), Some(4.0));
    let sum = snap.value_of("latency_seconds_sum", &[]).unwrap();
    assert!((sum - 100.0000055).abs() < 1e-9, "sum = {sum}");
}

#[test]
fn spans_nest_into_paths_and_flush_custom_counters() {
    let tel = Telemetry::enabled();
    {
        let outer = span!(tel, "characterize", job = "gpt3");
        assert_eq!(outer.path(), Some("characterize"));
        {
            let mut inner = span!(tel, "cut");
            assert_eq!(inner.path(), Some("characterize/cut"));
            inner.add("resolves", 2);
            inner.add("resolves", 1);
        }
    }
    let snap = tel.snapshot();
    assert_eq!(
        snap.value_of(
            "perseus_span_calls_total",
            &[("job", "gpt3"), ("span", "characterize")]
        ),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("perseus_span_calls_total", &[("span", "characterize/cut")]),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("resolves", &[("span", "characterize/cut")]),
        Some(3.0)
    );
    // Wall time was recorded (monotonic clocks: non-negative is all we
    // can assert portably).
    assert!(
        snap.value_of(
            "perseus_span_seconds_total",
            &[("span", "characterize/cut")]
        )
        .unwrap()
            >= 0.0
    );
}

#[test]
fn disabled_telemetry_is_inert_but_usable() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    assert!(tel.now().is_none());
    let c = tel.counter("ignored");
    c.inc();
    assert_eq!(c.get(), 1); // detached handles still count locally
    let mut s = span!(tel, "lookup", job = "gpt3");
    assert!(!s.is_recording());
    assert_eq!(s.path(), None);
    s.add("anything", 10);
    drop(s);
    let snap = tel.snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.render(), "");
}

#[test]
fn render_is_sorted_and_stable() {
    let tel = Telemetry::enabled();
    tel.counter_with("zeta", &[("k", "1")]).add(3);
    tel.counter("alpha").add(1);
    tel.gauge_with("zeta", &[("k", "0")]).set(-2);
    let rendered = tel.snapshot().render();
    assert_eq!(rendered, "alpha 1\nzeta{k=\"0\"} -2\nzeta{k=\"1\"} 3\n");
    // A second snapshot of the unchanged registry renders identically.
    assert_eq!(tel.snapshot().render(), rendered);
}

#[test]
#[should_panic(expected = "already registered")]
fn kind_mismatch_panics() {
    let tel = Telemetry::enabled();
    tel.counter("metric").inc();
    tel.gauge("metric");
}

struct CountingSink(std::sync::atomic::AtomicUsize);

impl TelemetrySink for CountingSink {
    fn on_span(&self, record: &crate::SpanRecord) {
        assert!(!record.path.is_empty());
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[test]
fn sinks_receive_every_closed_span() {
    let tel = Telemetry::enabled();
    let sink = Arc::new(CountingSink(std::sync::atomic::AtomicUsize::new(0)));
    tel.add_sink(Arc::clone(&sink) as _);
    drop(tel.span("a"));
    drop(tel.span("b"));
    assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 2);
}

#[test]
fn trace_writer_emits_chrome_json() {
    let tel = Telemetry::enabled();
    let trace = Arc::new(TraceWriter::new());
    tel.add_sink(Arc::clone(&trace) as _);
    {
        let mut s = span!(tel, "lookup", job = "chaos");
        s.add("faults", 1);
    }
    assert_eq!(trace.len(), 1);
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"name\":\"lookup\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains("\"job\":\"chaos\""), "{json}");
    assert!(json.contains("\"faults\":\"1\""), "{json}");
    assert!(json.ends_with("]}"), "{json}");
}

#[test]
fn spans_on_other_threads_do_not_inherit_this_path() {
    let tel = Telemetry::enabled();
    let _outer = tel.span("main");
    let tel2 = tel.clone();
    std::thread::spawn(move || {
        let s = tel2.span("worker");
        assert_eq!(s.path(), Some("worker"));
    })
    .join()
    .unwrap();
}

mod flight {
    use crate::{FlightRecorder, IterationSample};

    fn sample(iteration: u64, degraded: bool) -> IterationSample {
        IterationSample {
            iteration,
            sync_time_s: 0.5 + iteration as f64 * 0.01,
            useful_j: 100.0,
            intrinsic_j: 7.5,
            extrinsic_j: if degraded { 12.0 } else { 0.0 },
            freq_min_mhz: 990,
            freq_max_mhz: 1410,
            degraded,
            degraded_lookups: u64::from(degraded),
            faults: u64::from(degraded),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        for i in 0..10 {
            rec.record(sample(i, false));
        }
        assert_eq!(rec.len(), 4);
        let snap = rec.snapshot();
        assert_eq!(snap.dropped, 6);
        let kept: Vec<u64> = snap.samples.iter().map(|s| s.iteration).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest first, newest retained");
        let summary = snap.summary();
        assert_eq!(summary.samples, 4);
        assert_eq!(summary.dropped, 6);
        assert_eq!(summary.last_iteration, Some(9));
    }

    #[test]
    fn snapshot_counts_degraded_and_faults() {
        let rec = FlightRecorder::new(16);
        for i in 0..8 {
            rec.record(sample(i, i % 3 == 0));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.degraded_samples(), 3); // iterations 0, 3, 6
        assert_eq!(snap.degraded_lookups(), 3);
        assert_eq!(snap.faults(), 3);
        assert_eq!(snap.summary().degraded_samples, 3);
        assert!((snap.samples[0].total_j() - 119.5).abs() < 1e-12);
    }

    #[test]
    fn dump_writes_valid_json_post_mortem() {
        let rec = FlightRecorder::new(8);
        for i in 0..5 {
            rec.record(sample(i, i == 2));
        }
        let dir = std::env::temp_dir().join(format!(
            "perseus-flight-test-{}-{:p}",
            std::process::id(),
            &rec
        ));
        let path = dir.join("nested").join("postmortem.json");
        let _ = std::fs::remove_dir_all(&dir);
        rec.dump_to(&path).unwrap();
        assert_eq!(rec.dumps(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let value = super::json::parse(&text).expect("dump must be valid JSON");
        let obj = value.as_object().unwrap();
        assert_eq!(obj["capacity"].as_f64(), Some(8.0));
        assert_eq!(obj["degraded_samples"].as_f64(), Some(1.0));
        assert_eq!(obj["faults"].as_f64(), Some(1.0));
        let samples = obj["samples"].as_array().unwrap();
        assert_eq!(samples.len(), 5);
        let third = samples[2].as_object().unwrap();
        assert_eq!(third["iteration"].as_f64(), Some(2.0));
        assert_eq!(third["degraded"], super::json::Value::Bool(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_recorder_snapshots_empty() {
        let rec = FlightRecorder::new(0); // clamps to 1
        assert_eq!(rec.capacity(), 1);
        let snap = rec.snapshot();
        assert!(snap.samples.is_empty());
        assert_eq!(snap.summary().last_iteration, None);
        super::json::parse(&snap.to_json()).expect("empty dump is still valid JSON");
    }
}

mod quantiles {
    use crate::Telemetry;

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("latency_seconds");
        // 100 observations right at 0.15s: they land in the (0.1, 0.25]
        // bucket, so every quantile interpolates inside it.
        for _ in 0..100 {
            h.observe(0.15);
        }
        let snap = tel.snapshot();
        for q in ["p50", "p90", "p99"] {
            let v = snap
                .value_of(&format!("latency_seconds_{q}"), &[])
                .unwrap_or_else(|| panic!("missing {q}"));
            assert!(
                (0.1..=0.25).contains(&v),
                "{q} = {v} outside the observed bucket"
            );
        }
        // Higher quantiles never undercut lower ones.
        let p50 = snap.value_of("latency_seconds_p50", &[]).unwrap();
        let p90 = snap.value_of("latency_seconds_p90", &[]).unwrap();
        let p99 = snap.value_of("latency_seconds_p99", &[]).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn quantiles_split_across_buckets() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("split_seconds");
        // Half the mass at ~1ms, half at ~1s: the median sits at the
        // boundary region while p90/p99 live in the slow mode.
        for _ in 0..50 {
            h.observe(1e-3);
        }
        for _ in 0..50 {
            h.observe(1.0);
        }
        let snap = tel.snapshot();
        let p50 = snap.value_of("split_seconds_p50", &[]).unwrap();
        let p99 = snap.value_of("split_seconds_p99", &[]).unwrap();
        assert!(p50 <= 1e-3 + 1e-12, "median in the fast mode, got {p50}");
        assert!(p99 > 0.5, "p99 in the slow mode, got {p99}");
    }

    #[test]
    fn overflow_clamps_to_highest_finite_bound() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("huge_seconds");
        for _ in 0..10 {
            h.observe(1e6); // beyond every finite bound
        }
        let snap = tel.snapshot();
        let p99 = snap.value_of("huge_seconds_p99", &[]).unwrap();
        assert_eq!(p99, 10.0, "+Inf bucket clamps to the last finite bound");
    }

    #[test]
    fn empty_histogram_emits_no_quantiles() {
        let tel = Telemetry::enabled();
        let _ = tel.histogram("idle_seconds");
        let snap = tel.snapshot();
        assert_eq!(snap.value_of("idle_seconds_p50", &[]), None);
        assert_eq!(snap.value_of("idle_seconds_count", &[]), Some(0.0));
    }
}

/// A minimal recursive-descent JSON parser — just enough to
/// parse-validate what `TraceWriter` and the flight recorder emit,
/// keeping the crate dependency-free.
pub(crate) mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = utf8_len(bytes[*pos]);
                    let s = std::str::from_utf8(&bytes[*pos..*pos + ch_len])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos += ch_len;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn utf8_len(b: u8) -> usize {
        match b {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            map.insert(key, parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

mod chrome_trace_roundtrip {
    use std::sync::Arc;

    use super::json;
    use crate::{Telemetry, TraceWriter};

    /// Satellite fix: `TraceWriter`'s output was never parse-validated.
    /// Round-trip it through the minimal parser and check both the JSON
    /// shape and that per-thread span intervals nest properly.
    #[test]
    fn emitted_chrome_trace_parses_and_nests() {
        let tel = Telemetry::enabled();
        let trace = Arc::new(TraceWriter::new());
        tel.add_sink(Arc::clone(&trace) as _);
        {
            let mut outer = span!(tel, "characterize", job = "gpt3\"quoted\"");
            outer.add("cut_solves", 2);
            for _ in 0..3 {
                drop(span!(tel, "pd_iteration"));
            }
        }
        drop(span!(tel, "lookup"));

        let text = trace.to_chrome_json();
        let value = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = value
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(|v| v.as_array())
            .expect("top level is {\"traceEvents\": [...]}")
            .to_vec();
        assert_eq!(events.len(), 5);

        // Every event is a complete-phase slice with the required keys.
        let mut by_tid: std::collections::BTreeMap<i64, Vec<(f64, f64, String)>> =
            std::collections::BTreeMap::new();
        for ev in &events {
            let obj = ev.as_object().expect("event is an object");
            assert_eq!(obj["ph"].as_str(), Some("X"));
            assert_eq!(obj["pid"].as_f64(), Some(1.0));
            let name = obj["name"].as_str().expect("name is a string").to_string();
            let ts = obj["ts"].as_f64().expect("ts is a number");
            let dur = obj["dur"].as_f64().expect("dur is a number");
            assert!(ts >= 0.0 && dur >= 0.0);
            by_tid
                .entry(obj["tid"].as_f64().expect("tid") as i64)
                .or_default()
                .push((ts, ts + dur, name));
        }
        // The quoted label survived escaping and parsing.
        let outer = events
            .iter()
            .filter_map(|e| e.as_object())
            .find(|o| o["name"].as_str() == Some("characterize"))
            .expect("outer span present");
        let args = outer["args"].as_object().expect("args object");
        assert_eq!(args["job"].as_str(), Some("gpt3\"quoted\""));
        assert_eq!(args["cut_solves"].as_str(), Some("2"));
        // Nested spans record under their hierarchical path.
        assert!(events
            .iter()
            .filter_map(|e| e.as_object())
            .any(|o| o["name"].as_str() == Some("characterize/pd_iteration")));

        // Well-formed nesting per thread: any two spans either nest or
        // are disjoint — intervals never partially overlap.
        for spans in by_tid.values() {
            for (i, a) in spans.iter().enumerate() {
                for b in spans.iter().skip(i + 1) {
                    let disjoint = a.1 <= b.0 || b.1 <= a.0;
                    let a_in_b = b.0 <= a.0 && a.1 <= b.1;
                    let b_in_a = a.0 <= b.0 && b.1 <= a.1;
                    assert!(
                        disjoint || a_in_b || b_in_a,
                        "spans {:?} and {:?} partially overlap",
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let trace = TraceWriter::new();
        let value = json::parse(&trace.to_chrome_json()).unwrap();
        assert_eq!(
            value.as_object().unwrap()["traceEvents"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }
}
