use std::sync::Arc;
use std::time::Duration;

use crate::{Telemetry, TelemetrySink, TraceWriter};

#[test]
fn counters_register_and_accumulate() {
    let tel = Telemetry::enabled();
    let c = tel.counter("requests_total");
    c.inc();
    c.add(4);
    assert_eq!(c.get(), 5);
    // Same name+labels returns the same underlying atomic.
    let again = tel.counter("requests_total");
    again.inc();
    assert_eq!(c.get(), 6);
    assert_eq!(tel.snapshot().value_of("requests_total", &[]), Some(6.0));
}

#[test]
fn labels_are_order_insensitive() {
    let tel = Telemetry::enabled();
    tel.counter_with("hits", &[("a", "1"), ("b", "2")]).inc();
    tel.counter_with("hits", &[("b", "2"), ("a", "1")]).inc();
    let snap = tel.snapshot();
    assert_eq!(snap.len(), 1);
    assert_eq!(snap.value_of("hits", &[("b", "2"), ("a", "1")]), Some(2.0));
}

#[test]
fn float_counter_and_gauge() {
    let tel = Telemetry::enabled();
    let f = tel.float_counter("busy_seconds_total");
    f.add(0.25);
    f.add(0.5);
    assert!((f.get() - 0.75).abs() < 1e-12);
    let g = tel.gauge("occupancy");
    g.add(3);
    g.add(-1);
    assert_eq!(g.get(), 2);
    g.set(7);
    let snap = tel.snapshot();
    assert_eq!(snap.value_of("occupancy", &[]), Some(7.0));
    assert_eq!(snap.value_of("busy_seconds_total", &[]), Some(0.75));
}

#[test]
fn histogram_buckets_are_cumulative() {
    let tel = Telemetry::enabled();
    let h = tel.histogram("latency_seconds");
    h.observe(0.5e-6); // first bucket (1e-6)
    h.observe(3e-6); // 5e-6 bucket
    h.observe(100.0); // beyond every bound: only +Inf
    h.observe_duration(Duration::from_micros(2)); // 2.5e-6 bucket
    assert_eq!(h.count(), 4);
    let snap = tel.snapshot();
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.000001")]),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.0000025")]),
        Some(2.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "0.000005")]),
        Some(3.0)
    );
    assert_eq!(
        snap.value_of("latency_seconds_bucket", &[("le", "+Inf")]),
        Some(4.0)
    );
    assert_eq!(snap.value_of("latency_seconds_count", &[]), Some(4.0));
    let sum = snap.value_of("latency_seconds_sum", &[]).unwrap();
    assert!((sum - 100.0000055).abs() < 1e-9, "sum = {sum}");
}

#[test]
fn spans_nest_into_paths_and_flush_custom_counters() {
    let tel = Telemetry::enabled();
    {
        let outer = span!(tel, "characterize", job = "gpt3");
        assert_eq!(outer.path(), Some("characterize"));
        {
            let mut inner = span!(tel, "cut");
            assert_eq!(inner.path(), Some("characterize/cut"));
            inner.add("resolves", 2);
            inner.add("resolves", 1);
        }
    }
    let snap = tel.snapshot();
    assert_eq!(
        snap.value_of(
            "perseus_span_calls_total",
            &[("job", "gpt3"), ("span", "characterize")]
        ),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("perseus_span_calls_total", &[("span", "characterize/cut")]),
        Some(1.0)
    );
    assert_eq!(
        snap.value_of("resolves", &[("span", "characterize/cut")]),
        Some(3.0)
    );
    // Wall time was recorded (monotonic clocks: non-negative is all we
    // can assert portably).
    assert!(
        snap.value_of(
            "perseus_span_seconds_total",
            &[("span", "characterize/cut")]
        )
        .unwrap()
            >= 0.0
    );
}

#[test]
fn disabled_telemetry_is_inert_but_usable() {
    let tel = Telemetry::disabled();
    assert!(!tel.is_enabled());
    assert!(tel.now().is_none());
    let c = tel.counter("ignored");
    c.inc();
    assert_eq!(c.get(), 1); // detached handles still count locally
    let mut s = span!(tel, "lookup", job = "gpt3");
    assert!(!s.is_recording());
    assert_eq!(s.path(), None);
    s.add("anything", 10);
    drop(s);
    let snap = tel.snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.render(), "");
}

#[test]
fn render_is_sorted_and_stable() {
    let tel = Telemetry::enabled();
    tel.counter_with("zeta", &[("k", "1")]).add(3);
    tel.counter("alpha").add(1);
    tel.gauge_with("zeta", &[("k", "0")]).set(-2);
    let rendered = tel.snapshot().render();
    assert_eq!(rendered, "alpha 1\nzeta{k=\"0\"} -2\nzeta{k=\"1\"} 3\n");
    // A second snapshot of the unchanged registry renders identically.
    assert_eq!(tel.snapshot().render(), rendered);
}

#[test]
#[should_panic(expected = "already registered")]
fn kind_mismatch_panics() {
    let tel = Telemetry::enabled();
    tel.counter("metric").inc();
    tel.gauge("metric");
}

struct CountingSink(std::sync::atomic::AtomicUsize);

impl TelemetrySink for CountingSink {
    fn on_span(&self, record: &crate::SpanRecord) {
        assert!(!record.path.is_empty());
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[test]
fn sinks_receive_every_closed_span() {
    let tel = Telemetry::enabled();
    let sink = Arc::new(CountingSink(std::sync::atomic::AtomicUsize::new(0)));
    tel.add_sink(Arc::clone(&sink) as _);
    drop(tel.span("a"));
    drop(tel.span("b"));
    assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 2);
}

#[test]
fn trace_writer_emits_chrome_json() {
    let tel = Telemetry::enabled();
    let trace = Arc::new(TraceWriter::new());
    tel.add_sink(Arc::clone(&trace) as _);
    {
        let mut s = span!(tel, "lookup", job = "chaos");
        s.add("faults", 1);
    }
    assert_eq!(trace.len(), 1);
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"name\":\"lookup\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains("\"job\":\"chaos\""), "{json}");
    assert!(json.contains("\"faults\":\"1\""), "{json}");
    assert!(json.ends_with("]}"), "{json}");
}

#[test]
fn spans_on_other_threads_do_not_inherit_this_path() {
    let tel = Telemetry::enabled();
    let _outer = tel.span("main");
    let tel2 = tel.clone();
    std::thread::spawn(move || {
        let s = tel2.span("worker");
        assert_eq!(s.path(), Some("worker"));
    })
    .join()
    .unwrap();
}

mod flight {
    use crate::{FlightRecorder, IterationSample};

    fn sample(iteration: u64, degraded: bool) -> IterationSample {
        IterationSample {
            iteration,
            sync_time_s: 0.5 + iteration as f64 * 0.01,
            useful_j: 100.0,
            intrinsic_j: 7.5,
            extrinsic_j: if degraded { 12.0 } else { 0.0 },
            freq_min_mhz: 990,
            freq_max_mhz: 1410,
            degraded,
            degraded_lookups: u64::from(degraded),
            faults: u64::from(degraded),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        for i in 0..10 {
            rec.record(sample(i, false));
        }
        assert_eq!(rec.len(), 4);
        let snap = rec.snapshot();
        assert_eq!(snap.dropped, 6);
        let kept: Vec<u64> = snap.samples.iter().map(|s| s.iteration).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest first, newest retained");
        let summary = snap.summary();
        assert_eq!(summary.samples, 4);
        assert_eq!(summary.dropped, 6);
        assert_eq!(summary.last_iteration, Some(9));
    }

    #[test]
    fn snapshot_counts_degraded_and_faults() {
        let rec = FlightRecorder::new(16);
        for i in 0..8 {
            rec.record(sample(i, i % 3 == 0));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.degraded_samples(), 3); // iterations 0, 3, 6
        assert_eq!(snap.degraded_lookups(), 3);
        assert_eq!(snap.faults(), 3);
        assert_eq!(snap.summary().degraded_samples, 3);
        assert!((snap.samples[0].total_j() - 119.5).abs() < 1e-12);
    }

    #[test]
    fn dump_writes_valid_json_post_mortem() {
        let rec = FlightRecorder::new(8);
        for i in 0..5 {
            rec.record(sample(i, i == 2));
        }
        let dir = std::env::temp_dir().join(format!(
            "perseus-flight-test-{}-{:p}",
            std::process::id(),
            &rec
        ));
        let path = dir.join("nested").join("postmortem.json");
        let _ = std::fs::remove_dir_all(&dir);
        rec.dump_to(&path).unwrap();
        assert_eq!(rec.dumps(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let value = super::json::parse(&text).expect("dump must be valid JSON");
        let obj = value.as_object().unwrap();
        assert_eq!(obj["capacity"].as_f64(), Some(8.0));
        assert_eq!(obj["degraded_samples"].as_f64(), Some(1.0));
        assert_eq!(obj["faults"].as_f64(), Some(1.0));
        let samples = obj["samples"].as_array().unwrap();
        assert_eq!(samples.len(), 5);
        let third = samples[2].as_object().unwrap();
        assert_eq!(third["iteration"].as_f64(), Some(2.0));
        assert_eq!(third["degraded"], super::json::Value::Bool(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_recorder_snapshots_empty() {
        let rec = FlightRecorder::new(0); // clamps to 1
        assert_eq!(rec.capacity(), 1);
        let snap = rec.snapshot();
        assert!(snap.samples.is_empty());
        assert_eq!(snap.summary().last_iteration, None);
        super::json::parse(&snap.to_json()).expect("empty dump is still valid JSON");
    }
}

mod quantiles {
    use crate::Telemetry;

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("latency_seconds");
        // 100 observations right at 0.15s: they all land in the
        // (0.1, 0.25] bucket, so every quantile reports that bucket's
        // upper bound (the all-in-one-bucket edge-case rule).
        for _ in 0..100 {
            h.observe(0.15);
        }
        let snap = tel.snapshot();
        for q in ["p50", "p90", "p99"] {
            let v = snap
                .value_of(&format!("latency_seconds_{q}"), &[])
                .unwrap_or_else(|| panic!("missing {q}"));
            assert!(
                (0.1..=0.25).contains(&v),
                "{q} = {v} outside the observed bucket"
            );
        }
        // Higher quantiles never undercut lower ones.
        let p50 = snap.value_of("latency_seconds_p50", &[]).unwrap();
        let p90 = snap.value_of("latency_seconds_p90", &[]).unwrap();
        let p99 = snap.value_of("latency_seconds_p99", &[]).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn quantiles_split_across_buckets() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("split_seconds");
        // Half the mass at ~1ms, half at ~1s: the median sits at the
        // boundary region while p90/p99 live in the slow mode.
        for _ in 0..50 {
            h.observe(1e-3);
        }
        for _ in 0..50 {
            h.observe(1.0);
        }
        let snap = tel.snapshot();
        let p50 = snap.value_of("split_seconds_p50", &[]).unwrap();
        let p99 = snap.value_of("split_seconds_p99", &[]).unwrap();
        assert!(p50 <= 1e-3 + 1e-12, "median in the fast mode, got {p50}");
        assert!(p99 > 0.5, "p99 in the slow mode, got {p99}");
    }

    #[test]
    fn overflow_clamps_to_highest_finite_bound() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("huge_seconds");
        for _ in 0..10 {
            h.observe(1e6); // beyond every finite bound
        }
        let snap = tel.snapshot();
        let p99 = snap.value_of("huge_seconds_p99", &[]).unwrap();
        assert_eq!(p99, 10.0, "+Inf bucket clamps to the last finite bound");
    }

    #[test]
    fn empty_histogram_emits_no_quantiles() {
        let tel = Telemetry::enabled();
        let _ = tel.histogram("idle_seconds");
        let snap = tel.snapshot();
        assert_eq!(snap.value_of("idle_seconds_p50", &[]), None);
        assert_eq!(snap.value_of("idle_seconds_count", &[]), Some(0.0));
    }
}

/// A minimal recursive-descent JSON parser — just enough to
/// parse-validate what `TraceWriter` and the flight recorder emit,
/// keeping the crate dependency-free.
pub(crate) mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = utf8_len(bytes[*pos]);
                    let s = std::str::from_utf8(&bytes[*pos..*pos + ch_len])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos += ch_len;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn utf8_len(b: u8) -> usize {
        match b {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            map.insert(key, parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

mod chrome_trace_roundtrip {
    use std::sync::Arc;

    use super::json;
    use crate::{Telemetry, TraceWriter};

    /// Satellite fix: `TraceWriter`'s output was never parse-validated.
    /// Round-trip it through the minimal parser and check both the JSON
    /// shape and that per-thread span intervals nest properly.
    #[test]
    fn emitted_chrome_trace_parses_and_nests() {
        let tel = Telemetry::enabled();
        let trace = Arc::new(TraceWriter::new());
        tel.add_sink(Arc::clone(&trace) as _);
        {
            let mut outer = span!(tel, "characterize", job = "gpt3\"quoted\"");
            outer.add("cut_solves", 2);
            for _ in 0..3 {
                drop(span!(tel, "pd_iteration"));
            }
        }
        drop(span!(tel, "lookup"));

        let text = trace.to_chrome_json();
        let value = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = value
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(|v| v.as_array())
            .expect("top level is {\"traceEvents\": [...]}")
            .to_vec();
        assert_eq!(events.len(), 5);

        // Every event is a complete-phase slice with the required keys.
        let mut by_tid: std::collections::BTreeMap<i64, Vec<(f64, f64, String)>> =
            std::collections::BTreeMap::new();
        for ev in &events {
            let obj = ev.as_object().expect("event is an object");
            assert_eq!(obj["ph"].as_str(), Some("X"));
            assert_eq!(obj["pid"].as_f64(), Some(1.0));
            let name = obj["name"].as_str().expect("name is a string").to_string();
            let ts = obj["ts"].as_f64().expect("ts is a number");
            let dur = obj["dur"].as_f64().expect("dur is a number");
            assert!(ts >= 0.0 && dur >= 0.0);
            by_tid
                .entry(obj["tid"].as_f64().expect("tid") as i64)
                .or_default()
                .push((ts, ts + dur, name));
        }
        // The quoted label survived escaping and parsing.
        let outer = events
            .iter()
            .filter_map(|e| e.as_object())
            .find(|o| o["name"].as_str() == Some("characterize"))
            .expect("outer span present");
        let args = outer["args"].as_object().expect("args object");
        assert_eq!(args["job"].as_str(), Some("gpt3\"quoted\""));
        assert_eq!(args["cut_solves"].as_str(), Some("2"));
        // Nested spans record under their hierarchical path.
        assert!(events
            .iter()
            .filter_map(|e| e.as_object())
            .any(|o| o["name"].as_str() == Some("characterize/pd_iteration")));

        // Well-formed nesting per thread: any two spans either nest or
        // are disjoint — intervals never partially overlap.
        for spans in by_tid.values() {
            for (i, a) in spans.iter().enumerate() {
                for b in spans.iter().skip(i + 1) {
                    let disjoint = a.1 <= b.0 || b.1 <= a.0;
                    let a_in_b = b.0 <= a.0 && a.1 <= b.1;
                    let b_in_a = a.0 <= b.0 && b.1 <= a.1;
                    assert!(
                        disjoint || a_in_b || b_in_a,
                        "spans {:?} and {:?} partially overlap",
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let trace = TraceWriter::new();
        let value = json::parse(&trace.to_chrome_json()).unwrap();
        assert_eq!(
            value.as_object().unwrap()["traceEvents"]
                .as_array()
                .unwrap()
                .len(),
            0
        );
    }
}

mod snapshot_invariants {
    use crate::{MetricsSnapshot, SnapshotBuilder, Telemetry};

    /// Satellite: render order is a tested invariant — stable sort by
    /// metric name then label set, independent of registration order.
    #[test]
    fn render_order_is_independent_of_registration_order() {
        let forward = Telemetry::enabled();
        let reverse = Telemetry::enabled();
        let metrics: Vec<(&'static str, &'static str)> = vec![
            ("zeta_total", "b"),
            ("alpha_total", "z"),
            ("mid_total", "m"),
            ("alpha_total", "a"),
            ("zeta_total", "a"),
        ];
        for (name, label) in &metrics {
            forward.counter_with(name, &[("shard", label)]).inc();
        }
        for (name, label) in metrics.iter().rev() {
            reverse.counter_with(name, &[("shard", label)]).inc();
        }
        let rendered = forward.snapshot().render();
        assert_eq!(rendered, reverse.snapshot().render());
        // And the order is the canonical (name, labels) sort.
        let lines: Vec<&str> = rendered.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "render output is sorted");
    }

    #[test]
    fn render_order_is_stable_under_threaded_registration() {
        let tel = Telemetry::enabled();
        let mut handles = Vec::new();
        for t in 0..8 {
            let tel = tel.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..16 {
                    let shard = format!("{}", (t * 16 + i) % 7);
                    tel.counter_with("threaded_total", &[("shard", &shard)])
                        .inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let rendered = tel.snapshot().render();
        let lines: Vec<&str> = rendered.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "threaded registration still renders sorted");
        assert_eq!(lines.len(), 7);
    }

    /// Tentpole: merged counters equal the sum of the inputs' counters
    /// exactly, and histograms merge bucket-wise.
    #[test]
    fn merge_sums_scalars_and_histograms_exactly() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        a.counter("requests_total").add(3);
        b.counter("requests_total").add(39);
        a.counter_with("only_a_total", &[("k", "v")]).add(7);
        b.float_counter("joules_total").add(0.125);
        let ha = a.histogram("lat_seconds");
        let hb = b.histogram("lat_seconds");
        for _ in 0..10 {
            ha.observe(1e-3);
        }
        for _ in 0..30 {
            hb.observe(0.9);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.value_of("requests_total", &[]), Some(42.0));
        assert_eq!(merged.value_of("only_a_total", &[("k", "v")]), Some(7.0));
        assert_eq!(merged.value_of("joules_total", &[]), Some(0.125));
        assert_eq!(merged.value_of("lat_seconds_count", &[]), Some(40.0));
        let sum = merged.value_of("lat_seconds_sum", &[]).unwrap();
        assert!((sum - (10.0 * 1e-3 + 30.0 * 0.9)).abs() < 1e-9);
        // Quantiles are recomputed from the merged buckets: 3/4 of the
        // mass sits at 0.9, so the median lives in the slow mode.
        let p50 = merged.value_of("lat_seconds_p50", &[]).unwrap();
        assert!(p50 > 0.25, "median of merged mass in the slow mode: {p50}");
    }

    #[test]
    fn merge_all_equals_pairwise_merges() {
        let tels: Vec<Telemetry> = (0..4).map(|_| Telemetry::enabled()).collect();
        for (i, tel) in tels.iter().enumerate() {
            tel.counter("shard_total").add(i as u64 + 1);
        }
        let snaps: Vec<MetricsSnapshot> = tels.iter().map(|t| t.snapshot()).collect();
        let all = MetricsSnapshot::merge_all(snaps.iter());
        let pairwise = snaps[0].merge(&snaps[1]).merge(&snaps[2]).merge(&snaps[3]);
        assert_eq!(all.render(), pairwise.render());
        assert_eq!(all.value_of("shard_total", &[]), Some(10.0));
    }

    #[test]
    fn builder_snapshots_merge_with_registry_snapshots() {
        let tel = Telemetry::enabled();
        tel.counter("requests_total").add(5);
        let mut builder = SnapshotBuilder::new();
        builder.scalar("requests_total", &[], 7.0).scalar(
            "fleet_admitted_total",
            &[("tenant", "a")],
            3.0,
        );
        let merged = tel.snapshot().merge(&builder.build());
        assert_eq!(merged.value_of("requests_total", &[]), Some(12.0));
        assert_eq!(
            merged.value_of("fleet_admitted_total", &[("tenant", "a")]),
            Some(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "merging a scalar with a histogram")]
    fn merge_panics_on_kind_mismatch() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        a.counter("m").inc();
        b.histogram("m").observe(1.0);
        let _ = a.snapshot().merge(&b.snapshot());
    }
}

mod quantile_edges {
    use crate::{histogram_quantile, Telemetry};

    /// Satellite: empty, single-sample, and all-equal histograms return
    /// well-defined quantiles.
    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(histogram_quantile(&[1.0, 2.0], &[0, 0], 0, 0.99), None);
        let tel = Telemetry::enabled();
        let h = tel.histogram("idle_seconds");
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_sample_reports_its_bucket_bound() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("one_seconds");
        h.observe(0.15); // lands in the (0.1, 0.25] bucket
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), Some(0.25), "q={q}");
        }
        let snap = tel.snapshot();
        assert_eq!(snap.value_of("one_seconds_p50", &[]), Some(0.25));
        assert_eq!(snap.value_of("one_seconds_p99", &[]), Some(0.25));
    }

    #[test]
    fn all_equal_samples_report_their_bucket_bound() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("const_seconds");
        for _ in 0..1000 {
            h.observe(2e-3); // all in the (1e-3, 2.5e-3] bucket
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), Some(2.5e-3), "q={q}");
        }
    }

    #[test]
    fn all_overflow_clamps_to_last_finite_bound() {
        assert_eq!(
            histogram_quantile(&[1.0, 5.0, 10.0], &[0, 0, 0], 4, 0.5),
            Some(10.0)
        );
    }

    #[test]
    fn mixed_mass_still_interpolates() {
        // 2 obs in (0,1], 2 in (1,5]: the median is the first bucket's
        // upper bound, p99 interpolates inside the second bucket.
        let bounds = [1.0, 5.0];
        let buckets = [2, 2];
        let p50 = histogram_quantile(&bounds, &buckets, 4, 0.5).unwrap();
        assert!((p50 - 1.0).abs() < 1e-12);
        let p99 = histogram_quantile(&bounds, &buckets, 4, 0.99).unwrap();
        assert!(p99 > 4.0 && p99 <= 5.0, "p99 = {p99}");
    }
}

mod timeseries {
    use crate::timeseries::{SeriesConfig, TieredSeries, TimeSeriesStore};

    fn cfg(capacity: usize, tiers: usize, factor: usize) -> SeriesConfig {
        SeriesConfig {
            capacity,
            tiers,
            factor,
        }
    }

    #[test]
    fn raw_ring_evicts_oldest() {
        let mut s = TieredSeries::new(cfg(4, 1, 2));
        for i in 0..10 {
            s.push(i as f64, i as f64);
        }
        assert_eq!(s.pushed(), 10);
        assert_eq!(s.dropped(), 6);
        let raw = s.tier(0);
        let values: Vec<f64> = raw.iter().map(|b| b.mean).collect();
        assert_eq!(values, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(s.last(), Some(9.0));
    }

    #[test]
    fn tiers_fold_mean_min_max_count() {
        let mut s = TieredSeries::new(cfg(16, 2, 4));
        for i in 0..8 {
            s.push(i as f64, i as f64);
        }
        let t1 = s.tier(1);
        assert_eq!(t1.len(), 2, "8 points / factor 4 = 2 folded bins");
        assert_eq!(t1[0].count, 4);
        assert!((t1[0].mean - 1.5).abs() < 1e-12); // mean of 0..=3
        assert_eq!(t1[0].min, 0.0);
        assert_eq!(t1[0].max, 3.0);
        assert!((t1[1].mean - 5.5).abs() < 1e-12); // mean of 4..=7
        assert_eq!(t1[1].t, 7.0, "bin keeps its newest timestamp");
    }

    #[test]
    fn third_tier_folds_tier_one_bins() {
        let mut s = TieredSeries::new(cfg(64, 3, 2));
        for i in 0..8 {
            s.push(i as f64, 1.0);
        }
        // 8 raw → 4 tier-1 bins (factor 2) → 2 tier-2 bins.
        assert_eq!(s.tier(1).len(), 4);
        assert_eq!(s.tier(2).len(), 2);
        assert_eq!(s.tier(2)[0].count, 4, "tier-2 bins cover 4 raw points");
    }

    #[test]
    fn window_stats_cover_newest_points() {
        let mut s = TieredSeries::new(cfg(128, 1, 2));
        for i in 0..100 {
            s.push(i as f64, if i < 90 { 1.0 } else { 11.0 });
        }
        let w = s.window(10).unwrap();
        assert_eq!(w.count, 10);
        assert_eq!(w.min, 11.0, "newest 10 points are all 11.0");
        assert_eq!(w.max, 11.0);
        assert_eq!(w.p50, 11.0);
        assert_eq!(w.p99, 11.0);
        let wide = s.window(100).unwrap();
        assert_eq!(wide.min, 1.0);
        assert!((wide.mean - (90.0 * 1.0 + 10.0 * 11.0) / 100.0).abs() < 1e-12);
        assert_eq!(wide.p50, 1.0);
        assert_eq!(wide.p99, 11.0);
    }

    #[test]
    fn empty_series_has_no_window() {
        let s = TieredSeries::new(cfg(8, 1, 2));
        assert!(s.window(4).is_none());
        assert_eq!(s.last(), None);
    }

    #[test]
    fn store_creates_series_on_first_push() {
        let store = TimeSeriesStore::new(cfg(8, 1, 2));
        assert!(store.is_empty());
        store.push("a", 0.0, 1.0);
        store.push("b", 0.0, 2.0);
        store.push("a", 1.0, 3.0);
        assert_eq!(store.len(), 2);
        assert_eq!(store.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(store.last("a"), Some(3.0));
        assert_eq!(store.window("a", 8).unwrap().count, 2);
        assert!(store.window("missing", 8).is_none());
    }

    #[test]
    fn store_ingests_registry_snapshots_skipping_buckets() {
        let tel = crate::Telemetry::enabled();
        tel.counter("requests_total").add(4);
        tel.counter_with("hits_total", &[("job", "a")]).add(2);
        tel.histogram("lat_seconds").observe(1e-3);
        let store = TimeSeriesStore::default();
        store.ingest_snapshot(0.0, &tel.snapshot());
        tel.counter("requests_total").add(1);
        store.ingest_snapshot(1.0, &tel.snapshot());
        assert_eq!(store.last("requests_total"), Some(5.0));
        assert_eq!(store.last("hits_total{job=\"a\"}"), Some(2.0));
        assert_eq!(store.last("lat_seconds_count"), Some(1.0));
        assert!(
            store.names().iter().all(|n| !n.contains("_bucket")),
            "bucket samples are not ingested: {:?}",
            store.names()
        );
    }
}

mod detectors {
    use crate::detector::{
        AlertState, EwmaConfig, EwmaDetector, PageHinkley, PageHinkleyConfig, Severity,
    };

    #[test]
    fn ewma_fires_on_step_and_clears_on_recovery() {
        let mut d = EwmaDetector::new("energy", EwmaConfig::default());
        let mut alerts = Vec::new();
        // 100 in-band iterations, then a 3x spike for 20, then recovery.
        for i in 0..100u64 {
            let v = 100.0 + (i % 5) as f64; // small periodic wobble
            if let Some(a) = d.update(i, v) {
                alerts.push(a);
            }
        }
        assert!(alerts.is_empty(), "no false positives in-band: {alerts:?}");
        for i in 100..120u64 {
            if let Some(a) = d.update(i, 300.0) {
                alerts.push(a);
            }
        }
        assert_eq!(alerts.len(), 1, "one firing transition: {alerts:?}");
        assert_eq!(alerts[0].state, AlertState::Firing);
        assert_eq!(alerts[0].severity, Severity::Critical);
        assert!(d.is_firing());
        for i in 120..160u64 {
            if let Some(a) = d.update(i, 100.0 + (i % 5) as f64) {
                alerts.push(a);
            }
        }
        assert_eq!(alerts.len(), 2, "then one cleared transition");
        assert_eq!(alerts[1].state, AlertState::Cleared);
        assert!(!d.is_firing());
    }

    #[test]
    fn ewma_never_fires_on_constant_series() {
        let mut d = EwmaDetector::new("flat", EwmaConfig::default());
        for i in 0..10_000u64 {
            assert!(d.update(i, 42.0).is_none(), "constant series fired at {i}");
        }
    }

    #[test]
    fn ewma_abs_floor_gates_zero_baseline_series() {
        let cfg = EwmaConfig {
            abs_floor: 0.5,
            ..EwmaConfig::default()
        };
        let mut d = EwmaDetector::new("degraded_rate", cfg);
        for i in 0..100u64 {
            assert!(d.update(i, 0.0).is_none());
        }
        let alert = d
            .update(100, 3.0)
            .expect("jump past the absolute floor fires");
        assert_eq!(alert.state, AlertState::Firing);
    }

    #[test]
    fn page_hinkley_catches_slow_creep() {
        let mut ph = PageHinkley::new("time", PageHinkleyConfig::default());
        let mut fired_at = None;
        for i in 0..400u64 {
            // 1.0 baseline for 100 iters, then a persistent +20% creep —
            // small enough to stay inside an EWMA band scaled by larger
            // wobble, but PH accumulates it.
            let v = if i < 100 { 1.0 } else { 1.2 };
            if let Some(a) = ph.update(i, v) {
                fired_at = Some(a.iteration);
                break;
            }
        }
        let at = fired_at.expect("PH fires on sustained creep");
        assert!(
            at >= 100,
            "no false positive before the creep, fired at {at}"
        );
        assert!(at < 200, "fires within 100 iterations of onset, at {at}");
    }

    #[test]
    fn page_hinkley_quiet_on_stationary_noise() {
        let mut ph = PageHinkley::new("noise", PageHinkleyConfig::default());
        // Deterministic bounded zig-zag around 1.0.
        for i in 0..10_000u64 {
            let v = 1.0 + 0.02 * ((i % 7) as f64 - 3.0);
            assert!(ph.update(i, v).is_none(), "stationary noise fired at {i}");
        }
    }

    /// Satellite: the same sample sequence replayed twice produces
    /// byte-identical alert streams.
    #[test]
    fn detector_replay_is_byte_identical() {
        let run = || {
            let mut d = EwmaDetector::new("energy", EwmaConfig::default());
            let mut ph = PageHinkley::new("energy", PageHinkleyConfig::default());
            let mut log = String::new();
            for i in 0..600u64 {
                // Piecewise series with two drift episodes.
                let v = match i {
                    0..=199 => 100.0 + (i % 4) as f64,
                    200..=259 => 260.0,
                    260..=449 => 100.0 + (i % 4) as f64,
                    _ => 130.0,
                };
                if let Some(a) = d.update(i, v) {
                    log.push_str(&a.render());
                    log.push('\n');
                }
                if let Some(a) = ph.update(i, v) {
                    log.push_str(&a.render());
                    log.push('\n');
                }
            }
            log
        };
        let first = run();
        let second = run();
        assert!(!first.is_empty(), "the drift episodes produce alerts");
        assert_eq!(first, second, "replay is byte-identical");
    }

    #[test]
    fn alert_log_retains_newest_and_reports_firing() {
        use crate::detector::{Alert, AlertEvidence, AlertLog};
        let log = AlertLog::new(2);
        let mk = |iter: u64, state: AlertState| Alert {
            iteration: iter,
            metric: "m".to_string(),
            detector: "ewma",
            state,
            severity: Severity::Warning,
            evidence: AlertEvidence {
                observed: 1.0,
                baseline: 0.5,
                threshold: 0.2,
                statistic: 2.5,
            },
        };
        log.push(mk(1, AlertState::Firing));
        log.push(mk(2, AlertState::Cleared));
        log.push(mk(3, AlertState::Firing));
        assert_eq!(log.total(), 3);
        let kept = log.alerts();
        assert_eq!(kept.len(), 2, "capacity bound holds");
        assert_eq!(kept[0].iteration, 2);
        let firing = log.firing();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].iteration, 3);
    }
}

mod slo {
    use super::json;
    use crate::slo::{render_slo_json, SloEngine, SloOp, SloSpec};

    #[test]
    fn budgets_track_violations_exactly() {
        let engine = SloEngine::new(vec![SloSpec::new("latency", "p99_s", SloOp::Lte, 1.0)
            .with_budget(0.1)
            .with_window(4)]);
        // 10 ticks, 2 violations: exactly 2x the 10% budget.
        for i in 0..10u64 {
            let v = if i == 3 || i == 7 { 5.0 } else { 0.5 };
            engine.evaluate(i, &[("p99_s", v)]);
        }
        let status = &engine.status()[0];
        assert_eq!(status.ticks, 10);
        assert_eq!(status.violations, 2);
        assert!((status.budget_consumed - 2.0).abs() < 1e-12);
        assert!(!status.healthy);
        assert_eq!(status.last_violation_iter, Some(7));
        // Window of 4 saw one violation (iter 7) → burn rate 2.5x.
        assert_eq!(status.window_violations, 1);
        assert!((status.burn_rate - 2.5).abs() < 1e-12);
        assert!(!engine.all_healthy());
    }

    #[test]
    fn absent_metrics_consume_no_budget() {
        let engine = SloEngine::new(vec![SloSpec::new("rec", "recovery_iters", SloOp::Lte, 3.0)]);
        for i in 0..100u64 {
            engine.evaluate(i, &[("other_metric", 1.0)]);
        }
        let status = &engine.status()[0];
        assert_eq!(status.ticks, 0);
        assert_eq!(status.budget_consumed, 0.0);
        assert!(status.healthy);
        assert_eq!(status.last_value, None);
    }

    #[test]
    fn gte_objectives_hold_above_target() {
        let engine = SloEngine::new(vec![SloSpec::new("tput", "iters_per_s", SloOp::Gte, 10.0)]);
        engine.evaluate(0, &[("iters_per_s", 12.0)]);
        engine.evaluate(1, &[("iters_per_s", 8.0)]);
        let status = &engine.status()[0];
        assert_eq!(status.violations, 1);
    }

    #[test]
    fn slo_json_is_valid_and_complete() {
        let engine = SloEngine::perseus_defaults();
        engine.evaluate(0, &[("extrinsic_share", 0.2), ("recovery_iters", 1.0)]);
        let text = render_slo_json(&engine.status());
        let value = json::parse(&text).expect("/slo body is valid JSON");
        let arr = value.as_array().unwrap();
        assert_eq!(arr.len(), 3, "three default objectives");
        let first = arr[0].as_object().unwrap();
        assert!(first.contains_key("name"));
        assert!(first.contains_key("budget_consumed"));
        assert!(first.contains_key("healthy"));
        // The never-evaluated latency objective serializes its null.
        let latency = arr
            .iter()
            .filter_map(|v| v.as_object())
            .find(|o| o["name"].as_str() == Some("lookup_latency_p99"))
            .unwrap();
        assert_eq!(latency["last_value"], json::Value::Null);
    }
}

mod pipeline {
    use super::json;
    use crate::pipeline::{render_alerts_json, series, ObsPipeline};
    use crate::{IterationSample, Telemetry};

    fn sample(iteration: u64, sync_time_s: f64, extrinsic_j: f64) -> IterationSample {
        IterationSample {
            iteration,
            sync_time_s,
            useful_j: 100.0,
            intrinsic_j: 8.0,
            extrinsic_j,
            freq_min_mhz: 990,
            freq_max_mhz: 1410,
            degraded: false,
            degraded_lookups: 0,
            faults: 0,
        }
    }

    #[test]
    fn pipeline_builds_series_and_catches_drift() {
        let pipeline = ObsPipeline::default();
        let mut alerts = Vec::new();
        for i in 0..200u64 {
            alerts.extend(pipeline.ingest(&sample(i, 0.5 + (i % 3) as f64 * 0.001, 2.0)));
        }
        assert!(
            alerts.is_empty(),
            "healthy run produces no alerts: {alerts:?}"
        );
        // Sustained straggler: sync time and extrinsic joules triple.
        let mut fired_at = None;
        for i in 200..260u64 {
            let fired = pipeline.ingest(&sample(i, 1.6, 160.0));
            if fired_at.is_none() && !fired.is_empty() {
                fired_at = Some(i);
            }
        }
        let at = fired_at.expect("drift fires an alert");
        assert!(at <= 210, "alert within 10 iterations of onset, got {at}");
        assert!(!pipeline.firing().is_empty());
        assert_eq!(pipeline.ingested(), 260);
        // Derived series exist with the documented names.
        for name in [
            series::ENERGY_PER_ITERATION_J,
            series::SYNC_TIME_S,
            series::EXTRINSIC_SHARE,
            series::DEGRADED_LOOKUP_RATE,
        ] {
            assert!(
                pipeline.store().last(name).is_some(),
                "series {name} missing"
            );
        }
        let w = pipeline.window(series::SYNC_TIME_S, 16).unwrap();
        assert!(w.max >= 1.6);
    }

    #[test]
    fn recovery_episodes_feed_the_slo_engine() {
        let pipeline = ObsPipeline::default();
        for i in 0..50u64 {
            let mut s = sample(i, 0.5, 2.0);
            s.degraded = (10..=14).contains(&i); // a 5-iteration episode
            pipeline.ingest(&s);
        }
        assert_eq!(pipeline.store().last(series::RECOVERY_ITERS), Some(5.0));
        let status = pipeline.slo_status();
        let recovery = status.iter().find(|s| s.name == "recovery_iters").unwrap();
        assert_eq!(recovery.ticks, 1, "one recovery episode evaluated");
        assert_eq!(recovery.violations, 1, "5 iters > the 3-iter objective");
    }

    #[test]
    fn lookup_latency_histogram_feeds_p99_objective() {
        let tel = Telemetry::enabled();
        let hist = tel.histogram("perseus_server_lookup_seconds");
        let pipeline = ObsPipeline::default();
        pipeline.attach_lookup_latency(hist.clone());
        hist.observe(2e-6);
        pipeline.ingest(&sample(0, 0.5, 2.0));
        let status = pipeline.slo_status();
        let latency = status
            .iter()
            .find(|s| s.name == "lookup_latency_p99")
            .unwrap();
        assert_eq!(latency.ticks, 1);
        assert_eq!(latency.violations, 0, "2 µs is inside the 50 µs objective");
        assert!(pipeline
            .store()
            .last(series::LOOKUP_LATENCY_P99_S)
            .is_some());
    }

    /// Satellite: no-fault soak — 10k healthy iterations, zero alerts.
    #[test]
    fn ten_thousand_iteration_soak_produces_zero_alerts() {
        let pipeline = ObsPipeline::default();
        // Deterministic small jitter from SplitMix64 (seeded, no RNG dep).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        for i in 0..10_000u64 {
            let jitter = next() * 0.02 - 0.01; // ±1%
            let fired = pipeline.ingest(&sample(i, 0.5 * (1.0 + jitter), 2.0 * (1.0 + jitter)));
            assert!(fired.is_empty(), "soak fired at iteration {i}: {fired:?}");
        }
        assert_eq!(pipeline.alert_log().total(), 0);
        assert!(pipeline.slo_healthy());
    }

    #[test]
    fn alerts_json_is_valid() {
        let pipeline = ObsPipeline::default();
        for i in 0..120u64 {
            pipeline.ingest(&sample(i, 0.5, 2.0));
        }
        for i in 120..140u64 {
            pipeline.ingest(&sample(i, 2.5, 200.0));
        }
        let text = pipeline.alerts_json();
        let value = json::parse(&text).expect("/alerts body is valid JSON");
        let arr = value.as_array().unwrap();
        assert!(!arr.is_empty());
        let first = arr[0].as_object().unwrap();
        assert_eq!(first["state"].as_str(), Some("firing"));
        assert!(first.contains_key("observed"));
        assert!(first.contains_key("baseline"));
        // Empty log renders an empty array.
        assert_eq!(render_alerts_json(&[]), "[]");
    }
}

mod http_server {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    use super::json;
    use crate::pipeline::ObsPipeline;
    use crate::{Endpoints, IterationSample, Telemetry, TelemetryServer};

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a blank line");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_alerts_slo_and_health() {
        let tel = Telemetry::enabled();
        tel.counter("requests_total").add(3);
        let pipeline = Arc::new(ObsPipeline::default());
        pipeline.ingest(&IterationSample {
            iteration: 0,
            sync_time_s: 0.5,
            useful_j: 100.0,
            intrinsic_j: 8.0,
            extrinsic_j: 2.0,
            ..IterationSample::default()
        });
        let server = TelemetryServer::bind(
            "127.0.0.1:0",
            Endpoints::from_telemetry(tel.clone()).with_pipeline(Arc::clone(&pipeline)),
        )
        .unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain"), "{head}");
        assert_eq!(body, tel.snapshot().render(), "/metrics serves the render");

        let (head, body) = get(addr, "/alerts");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("application/json"));
        json::parse(&body).expect("/alerts is valid JSON");

        let (head, body) = get(addr, "/slo");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        let value = json::parse(&body).expect("/slo is valid JSON");
        assert_eq!(value.as_array().unwrap().len(), 3);

        let (head, body) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        // After shutdown the port stops accepting (bind it again to prove
        // the listener is gone).
        std::net::TcpListener::bind(addr).expect("port released after shutdown");
    }

    #[test]
    fn metrics_reflect_live_updates() {
        let tel = Telemetry::enabled();
        let server =
            TelemetryServer::bind("127.0.0.1:0", Endpoints::from_telemetry(tel.clone())).unwrap();
        let addr = server.addr();
        let (_, body) = get(addr, "/metrics");
        assert_eq!(body, "");
        tel.counter("live_total").add(7);
        let (_, body) = get(addr, "/metrics");
        assert_eq!(body, "live_total 7\n", "scrape reflects the update");
    }

    #[test]
    fn custom_metrics_source_overrides_default() {
        let server = TelemetryServer::bind(
            "127.0.0.1:0",
            Endpoints::default().with_metrics(|| "rollup_total 42\n".to_string()),
        )
        .unwrap();
        let (_, body) = get(server.addr(), "/metrics");
        assert_eq!(body, "rollup_total 42\n");
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = TelemetryServer::bind("127.0.0.1:0", Endpoints::default()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
