//! Perseus observability: hierarchical spans, typed metrics, and pluggable
//! sinks — the introspection layer behind the paper's §6 overhead results
//! (planner lookup and re-characterization cost are first-class numbers,
//! so the repro must be able to measure them without perturbing them).
//!
//! # Design
//!
//! * [`Telemetry`] is a cheap cloneable handle. [`Telemetry::disabled`]
//!   is the production default for hot paths that were not asked to
//!   report: every operation is a branch-predictable no-op (one
//!   `Option` check, no clock reads, no allocation), so instrumented and
//!   uninstrumented code paths produce byte-identical planner output —
//!   verified by the golden-trace gates.
//! * Metrics live in a sharded registry: handles ([`Counter`],
//!   [`FloatCounter`], [`Gauge`], [`Histogram`]) are atomics shared
//!   between the registry and the instrumented call site, so the hot
//!   path never holds a lock — shard mutexes guard only handle
//!   creation and snapshotting.
//! * [`span!`] opens a hierarchical [`Span`]: wall time and call counts
//!   are recorded on drop, per-span custom counters via [`Span::add`].
//!   Nesting is tracked per thread, so a span opened inside another
//!   span records under `parent/child`.
//! * [`MetricsSnapshot`] renders the registry to a stable, sorted,
//!   Prometheus-style text format — suitable for golden-testing.
//! * [`TelemetrySink`] is the one pipe everything emits through: the
//!   in-memory registry is the default sink, and extra sinks such as
//!   the Chrome-trace [`TraceWriter`] can be attached with
//!   [`Telemetry::add_sink`].
//!
//! # Examples
//!
//! ```
//! use perseus_telemetry::{span, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! {
//!     let mut span = span!(tel, "characterize", job = "gpt3-xl");
//!     span.add("cut_solves", 3);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(
//!     snap.value_of("perseus_span_calls_total", &[("job", "gpt3-xl"), ("span", "characterize")]),
//!     Some(1.0)
//! );
//! ```

pub mod detector;
mod flight;
pub mod http;
mod metrics;
pub mod pipeline;
mod registry;
mod sink;
pub mod slo;
mod snapshot;
mod span;
pub mod timeseries;

pub use detector::{Alert, AlertEvidence, AlertLog, AlertState, Severity};
pub use flight::{FlightRecorder, FlightSnapshot, FlightSummary, IterationSample};
pub use http::{Endpoints, TelemetryServer};
pub use metrics::{Counter, FloatCounter, Gauge, Histogram};
pub use pipeline::{ObsPipeline, PipelineConfig};
pub use sink::{SpanRecord, TelemetrySink, TraceWriter};
pub use slo::{SloEngine, SloOp, SloSpec, SloStatus};
pub use snapshot::{histogram_quantile, MetricsSnapshot, SnapshotBuilder};
pub use span::Span;
pub use timeseries::{SeriesConfig, TieredSeries, TimeSeriesStore, WindowStats};

use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use registry::Registry;

/// Label set of a metric: `(key, value)` pairs, sorted by the registry so
/// lookup order never matters.
pub type Labels<'a> = &'a [(&'static str, &'a str)];

pub(crate) struct Inner {
    pub(crate) registry: Registry,
    pub(crate) sinks: RwLock<Vec<Arc<dyn TelemetrySink>>>,
}

/// A telemetry handle: either a live recorder backed by a shared metric
/// registry, or the disabled no-op. Cloning shares the registry.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// The no-op handle: every operation is a single predictable branch.
    /// Handles returned by the metric constructors are *detached* — they
    /// still count (so code can read its own counters back) but are never
    /// registered and never appear in a snapshot.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A live handle with a fresh empty registry as its default sink.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::new(),
                sinks: RwLock::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Identity of the backing registry: two enabled handles share one
    /// registry iff their ids are equal (`None` when disabled). The fleet
    /// rollup dedups shard snapshots by this, so shards sharing a
    /// telemetry handle are not double-counted.
    pub fn registry_id(&self) -> Option<usize> {
        self.inner.as_ref().map(|a| Arc::as_ptr(a) as usize)
    }

    /// Attaches an extra sink (for example a [`TraceWriter`]); span
    /// records are delivered to every attached sink in attachment order.
    /// No-op when disabled.
    pub fn add_sink(&self, sink: Arc<dyn TelemetrySink>) {
        if let Some(inner) = &self.inner {
            inner.sinks.write().push(sink);
        }
    }

    /// The current instant, or `None` when disabled — lets hot paths skip
    /// the clock read entirely when nobody is listening.
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// A monotonically increasing counter registered under `name`.
    /// Repeated calls with the same name and labels return handles to the
    /// same underlying atomic.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, &[])
    }

    /// A labeled [`Telemetry::counter`].
    pub fn counter_with(&self, name: &'static str, labels: Labels<'_>) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name, labels),
            None => Counter::detached(),
        }
    }

    /// A float-valued accumulator (seconds of busy time, joules, …).
    pub fn float_counter(&self, name: &'static str) -> FloatCounter {
        self.float_counter_with(name, &[])
    }

    /// A labeled [`Telemetry::float_counter`].
    pub fn float_counter_with(&self, name: &'static str, labels: Labels<'_>) -> FloatCounter {
        match &self.inner {
            Some(inner) => inner.registry.float_counter(name, labels),
            None => FloatCounter::detached(),
        }
    }

    /// A gauge (instantaneous level: worker-pool occupancy, queue depth).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// A labeled [`Telemetry::gauge`].
    pub fn gauge_with(&self, name: &'static str, labels: Labels<'_>) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name, labels),
            None => Gauge::detached(),
        }
    }

    /// A latency histogram with the default exponential bucket bounds
    /// (1 µs … 10 s).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// A labeled [`Telemetry::histogram`].
    pub fn histogram_with(&self, name: &'static str, labels: Labels<'_>) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, labels),
            None => Histogram::detached(),
        }
    }

    /// Opens a hierarchical span named `name`; prefer the [`span!`] macro,
    /// which also captures labels. Wall time and call count are recorded
    /// when the returned guard drops. Disabled handles return an inert
    /// guard without reading the clock.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, &[])
    }

    /// A labeled [`Telemetry::span`].
    pub fn span_with(&self, name: &'static str, labels: &[(&'static str, String)]) -> Span {
        match &self.inner {
            Some(inner) => Span::enter(Arc::clone(inner), name, labels),
            None => Span::inert(),
        }
    }

    /// Snapshots every registered metric into a stable, sorted form.
    /// Disabled handles snapshot to an empty set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::empty(),
        }
    }
}

/// Opens a [`Span`] on a [`Telemetry`] handle, optionally with labels:
///
/// ```
/// use perseus_telemetry::{span, Telemetry};
/// let tel = Telemetry::enabled();
/// let job = "gpt3";
/// let _guard = span!(tel, "characterize", job = job);
/// ```
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        $tel.span($name)
    };
    ($tel:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $tel.span_with($name, &[$((stringify!($key), ::std::string::ToString::to_string(&$value))),+])
    };
}

#[cfg(test)]
mod tests;
