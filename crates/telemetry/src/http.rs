//! A zero-dependency HTTP/1.1 endpoint for live observability.
//!
//! [`TelemetryServer`] serves four read-only routes from a background
//! thread on a plain [`std::net::TcpListener`]:
//!
//! * `GET /metrics` — the Prometheus text rendering of the registry
//!   snapshot (exactly what `--metrics` prints to stderr);
//! * `GET /alerts` — the alert log as a JSON array;
//! * `GET /slo` — per-objective SLO status as a JSON array;
//! * `GET /health` — `200 ok` while the process is up.
//!
//! No HTTP library, no async runtime: the accept loop is nonblocking
//! with a short sleep, each request is read with a socket timeout, and
//! every response closes its connection — the simplest protocol subset
//! a Prometheus scraper or `curl` needs. Scrape handlers snapshot on
//! demand; nothing here touches the planner hot path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::pipeline::ObsPipeline;
use crate::Telemetry;

/// What the server serves: three closures, one per data route. Build
/// from a [`Telemetry`] handle (plus optionally an [`ObsPipeline`]) or
/// supply custom sources (the fleet points `/metrics` at its rollup).
#[derive(Clone)]
pub struct Endpoints {
    metrics: Arc<dyn Fn() -> String + Send + Sync>,
    alerts: Arc<dyn Fn() -> String + Send + Sync>,
    slo: Arc<dyn Fn() -> String + Send + Sync>,
}

impl std::fmt::Debug for Endpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoints").finish_non_exhaustive()
    }
}

impl Default for Endpoints {
    /// Endpoints that serve empty documents.
    fn default() -> Endpoints {
        Endpoints {
            metrics: Arc::new(String::new),
            alerts: Arc::new(|| "[]".to_string()),
            slo: Arc::new(|| "[]".to_string()),
        }
    }
}

impl Endpoints {
    /// `/metrics` renders `telemetry`'s registry snapshot; the JSON
    /// routes serve empty arrays until a pipeline is attached.
    pub fn from_telemetry(telemetry: Telemetry) -> Endpoints {
        Endpoints {
            metrics: Arc::new(move || telemetry.snapshot().render()),
            ..Endpoints::default()
        }
    }

    /// Points `/alerts` and `/slo` at `pipeline`.
    pub fn with_pipeline(mut self, pipeline: Arc<ObsPipeline>) -> Endpoints {
        let alerts = Arc::clone(&pipeline);
        self.alerts = Arc::new(move || alerts.alerts_json());
        self.slo = Arc::new(move || pipeline.slo_json());
        self
    }

    /// Overrides the `/metrics` source (e.g. a fleet rollup).
    pub fn with_metrics(
        mut self,
        metrics: impl Fn() -> String + Send + Sync + 'static,
    ) -> Endpoints {
        self.metrics = Arc::new(metrics);
        self
    }

    /// Overrides the `/alerts` source with a custom JSON producer.
    pub fn with_alerts(mut self, alerts: impl Fn() -> String + Send + Sync + 'static) -> Endpoints {
        self.alerts = Arc::new(alerts);
        self
    }

    /// Overrides the `/slo` source with a custom JSON producer.
    pub fn with_slo(mut self, slo: impl Fn() -> String + Send + Sync + 'static) -> Endpoints {
        self.slo = Arc::new(slo);
        self
    }
}

/// A running telemetry HTTP server. Shuts down (and joins its thread)
/// on [`TelemetryServer::shutdown`] or drop.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        endpoints: Endpoints,
    ) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("perseus-telemetry-http".to_string())
            .spawn(move || accept_loop(listener, endpoints, stop_loop))
            .expect("spawn telemetry http thread");
        Ok(TelemetryServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `http://…` base URL of the server.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, endpoints: Endpoints, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: requests are tiny and responses are
                // bounded, so one connection at a time keeps the server
                // to a single thread with no pool to manage.
                let _ = serve_connection(stream, &endpoints);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(mut stream: TcpStream, endpoints: &Endpoints) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = read_request_head(&mut stream)?;
    let (status, content_type, body) = match parse_request_line(&request) {
        Some(("GET", "/metrics")) => ("200 OK", "text/plain; version=0.0.4", (endpoints.metrics)()),
        Some(("GET", "/alerts")) => ("200 OK", "application/json", (endpoints.alerts)()),
        Some(("GET", "/slo")) => ("200 OK", "application/json", (endpoints.slo)()),
        Some(("GET", "/health")) => ("200 OK", "text/plain; version=0.0.4", "ok\n".to_string()),
        Some(("GET", _)) => (
            "404 Not Found",
            "text/plain; version=0.0.4",
            "not found\n".to_string(),
        ),
        Some(_) => (
            "405 Method Not Allowed",
            "text/plain; version=0.0.4",
            "method not allowed\n".to_string(),
        ),
        None => (
            "400 Bad Request",
            "text/plain; version=0.0.4",
            "bad request\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n{body}",
        len = body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads until the end of the request head (`\r\n\r\n`), bounded at 8 KiB
/// — these routes never need a body.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

/// Splits `GET /path HTTP/1.1` into `(method, path)`; query strings are
/// dropped (no route takes parameters).
fn parse_request_line(request: &str) -> Option<(&str, &str)> {
    let line = request.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}
