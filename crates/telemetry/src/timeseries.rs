//! Streaming time-series storage: fixed-capacity per-metric ring series
//! with tiered downsampling and windowed aggregates.
//!
//! Point-in-time snapshots answer "what is the counter now"; re-planning
//! needs "how has energy-per-iteration moved over the last thousand
//! iterations". A [`TimeSeriesStore`] keeps that history bounded: every
//! metric gets a [`TieredSeries`] — a raw ring of the most recent points
//! plus coarser tiers where each bin folds `factor` bins of the tier
//! below into `(mean, min, max, count)` — so an hour of history costs the
//! same memory as a minute, just at lower resolution (the classic
//! RRD/Gorilla layout, hand-rolled to stay zero-dependency).
//!
//! Everything here is deterministic: points are keyed by caller-supplied
//! timestamps (iteration indices in the emulator, seconds in a live
//! deployment), no wall clock is ever read, and aggregates are pure
//! functions of the retained points — which is what lets the drift
//! detectors downstream be golden-tested.

use std::collections::{BTreeMap, VecDeque};

use parking_lot::Mutex;

/// One retained bin of a series tier. Tier 0 bins are raw points
/// (`count == 1`, `mean == min == max`); higher tiers fold `factor`
/// lower-tier bins each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesBin {
    /// Timestamp of the newest point folded into this bin.
    pub t: f64,
    /// Mean of the folded points.
    pub mean: f64,
    /// Minimum of the folded points.
    pub min: f64,
    /// Maximum of the folded points.
    pub max: f64,
    /// Raw points folded into this bin.
    pub count: u64,
}

impl SeriesBin {
    fn raw(t: f64, value: f64) -> SeriesBin {
        SeriesBin {
            t,
            mean: value,
            min: value,
            max: value,
            count: 1,
        }
    }

    /// Folds `other` into `self` (weighted mean, min/max envelope).
    fn fold(&mut self, other: &SeriesBin) {
        let total = self.count + other.count;
        self.mean =
            (self.mean * self.count as f64 + other.mean * other.count as f64) / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
        self.t = self.t.max(other.t);
    }
}

/// Windowed aggregates over the newest raw points of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Points the window actually covered (≤ the requested width).
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (lower-nearest-rank over the sorted window).
    pub p50: f64,
    /// 99th percentile (lower-nearest-rank over the sorted window).
    pub p99: f64,
}

/// One ring of bins with a fixed capacity.
#[derive(Debug, Clone)]
struct Ring {
    capacity: usize,
    bins: VecDeque<SeriesBin>,
    /// Bins evicted because the ring was full.
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            capacity,
            bins: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    fn push(&mut self, bin: SeriesBin) {
        if self.bins.len() == self.capacity {
            self.bins.pop_front();
            self.dropped += 1;
        }
        self.bins.push_back(bin);
    }
}

/// Shape of a [`TieredSeries`]: ring capacity per tier, number of tiers,
/// and the downsampling factor between adjacent tiers.
#[derive(Debug, Clone, Copy)]
pub struct SeriesConfig {
    /// Bins retained per tier (minimum 2).
    pub capacity: usize,
    /// Tiers including the raw tier (minimum 1).
    pub tiers: usize,
    /// Lower-tier bins folded into one bin of the next tier (minimum 2).
    pub factor: usize,
}

impl Default for SeriesConfig {
    /// 1024 bins × 3 tiers at factor 16: ~1k iterations raw, ~16k at
    /// tier 1, ~262k at tier 2 — a full training segment in three rings.
    fn default() -> SeriesConfig {
        SeriesConfig {
            capacity: 1024,
            tiers: 3,
            factor: 16,
        }
    }
}

impl SeriesConfig {
    fn clamped(self) -> SeriesConfig {
        SeriesConfig {
            capacity: self.capacity.max(2),
            tiers: self.tiers.max(1),
            factor: self.factor.max(2),
        }
    }
}

/// A fixed-memory series for one metric: a raw ring plus downsampled
/// tiers. All mutation goes through [`TieredSeries::push`]; reads copy.
#[derive(Debug, Clone)]
pub struct TieredSeries {
    cfg: SeriesConfig,
    tiers: Vec<Ring>,
    /// Per-tier fold-in-progress: the bin accumulating the next `factor`
    /// lower-tier bins (index 0 accumulates raw points for tier 1).
    pending: Vec<Option<(SeriesBin, usize)>>,
    /// Total raw points ever pushed.
    pushed: u64,
}

impl TieredSeries {
    /// An empty series shaped by `cfg`.
    pub fn new(cfg: SeriesConfig) -> TieredSeries {
        let cfg = cfg.clamped();
        TieredSeries {
            cfg,
            tiers: (0..cfg.tiers).map(|_| Ring::new(cfg.capacity)).collect(),
            pending: vec![None; cfg.tiers.saturating_sub(1)],
            pushed: 0,
        }
    }

    /// Appends one raw point and cascades completed folds up the tiers.
    pub fn push(&mut self, t: f64, value: f64) {
        self.pushed += 1;
        let mut bin = SeriesBin::raw(t, value);
        self.tiers[0].push(bin);
        for tier in 1..self.cfg.tiers {
            let slot = &mut self.pending[tier - 1];
            match slot {
                None => *slot = Some((bin, 1)),
                Some((acc, n)) => {
                    acc.fold(&bin);
                    *n += 1;
                }
            }
            let full = matches!(slot, Some((_, n)) if *n >= self.cfg.factor);
            if !full {
                break;
            }
            let (acc, _) = slot.take().expect("pending fold present");
            self.tiers[tier].push(acc);
            bin = acc;
        }
    }

    /// Total raw points ever pushed (retained or evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Retained bins of `tier` (0 = raw), oldest first.
    pub fn tier(&self, tier: usize) -> Vec<SeriesBin> {
        self.tiers
            .get(tier)
            .map(|r| r.bins.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of tiers (including raw).
    pub fn n_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Raw bins evicted from tier 0 so far.
    pub fn dropped(&self) -> u64 {
        self.tiers[0].dropped
    }

    /// The newest raw value, if any.
    pub fn last(&self) -> Option<f64> {
        self.tiers[0].bins.back().map(|b| b.mean)
    }

    /// Aggregates over the newest `window` raw points (fewer when the
    /// ring holds fewer). `None` when the series is empty. Quantiles use
    /// lower-nearest-rank over the sorted window — exact, deterministic,
    /// and free of interpolation artifacts on small windows.
    pub fn window(&self, window: usize) -> Option<WindowStats> {
        let bins = &self.tiers[0].bins;
        if bins.is_empty() || window == 0 {
            return None;
        }
        let take = window.min(bins.len());
        let mut values: Vec<f64> = bins.iter().rev().take(take).map(|b| b.mean).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("series values are never NaN"));
        let n = values.len();
        let rank = |q: f64| values[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
        Some(WindowStats {
            count: n,
            mean: values.iter().sum::<f64>() / n as f64,
            min: values[0],
            max: values[n - 1],
            p50: rank(0.50),
            p99: rank(0.99),
        })
    }
}

/// A named collection of [`TieredSeries`], the store behind the streaming
/// observability pipeline. Cheap to share (`&self` everywhere, one mutex
/// around the map); series are created on first push.
#[derive(Debug)]
pub struct TimeSeriesStore {
    cfg: SeriesConfig,
    series: Mutex<BTreeMap<String, TieredSeries>>,
}

impl Default for TimeSeriesStore {
    fn default() -> TimeSeriesStore {
        TimeSeriesStore::new(SeriesConfig::default())
    }
}

impl TimeSeriesStore {
    /// An empty store; every new series inherits `cfg`.
    pub fn new(cfg: SeriesConfig) -> TimeSeriesStore {
        TimeSeriesStore {
            cfg: cfg.clamped(),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Appends a point to `metric`'s series, creating it on first use.
    pub fn push(&self, metric: &str, t: f64, value: f64) {
        let mut series = self.series.lock();
        series
            .entry(metric.to_string())
            .or_insert_with(|| TieredSeries::new(self.cfg))
            .push(t, value);
    }

    /// The registry adapter: appends every non-bucket scalar sample of a
    /// [`crate::MetricsSnapshot`] as a point at time `t`. Cumulative
    /// `_bucket` samples are skipped — their per-le label sets would
    /// explode the store without adding trend signal; `_sum`/`_count`
    /// and the quantile samples carry the history that matters.
    pub fn ingest_snapshot(&self, t: f64, snap: &crate::MetricsSnapshot) {
        let mut series = self.series.lock();
        for (name, labels, value) in snap.iter() {
            if name.ends_with("_bucket") {
                continue;
            }
            let key = series_key(name, labels);
            series
                .entry(key)
                .or_insert_with(|| TieredSeries::new(self.cfg))
                .push(t, value);
        }
    }

    /// Registered series names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.series.lock().keys().cloned().collect()
    }

    /// A copy of `metric`'s series, if it exists.
    pub fn series(&self, metric: &str) -> Option<TieredSeries> {
        self.series.lock().get(metric).cloned()
    }

    /// Windowed aggregates over the newest `window` points of `metric`.
    pub fn window(&self, metric: &str, window: usize) -> Option<WindowStats> {
        self.series
            .lock()
            .get(metric)
            .and_then(|s| s.window(window))
    }

    /// The newest value of `metric`, if any.
    pub fn last(&self, metric: &str) -> Option<f64> {
        self.series.lock().get(metric).and_then(|s| s.last())
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.lock().len()
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.lock().is_empty()
    }
}

/// Flattens a labeled sample into one stable series key:
/// `name{k="v",..}` (labels are already sorted by the snapshot).
fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(v);
        key.push('"');
    }
    key.push('}');
    key
}
