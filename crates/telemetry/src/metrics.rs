//! Typed metric handles: atomics shared between the registry and the
//! instrumented call site. Every operation is lock-free; the registry's
//! shard mutexes are only taken to create or snapshot handles.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (what disabled telemetry hands
    /// out): it still counts, it just never reaches a snapshot.
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    pub(crate) fn shared(cell: Arc<AtomicU64>) -> Counter {
        Counter(cell)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A float-valued accumulator (`f64` bits in an atomic, CAS-added): busy
/// seconds, joules — quantities that sum but are not integer counts.
#[derive(Debug, Clone)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    /// An unregistered handle (see [`Counter::detached`]).
    pub fn detached() -> FloatCounter {
        FloatCounter(Arc::new(AtomicU64::new(0.0f64.to_bits())))
    }

    pub(crate) fn shared(cell: Arc<AtomicU64>) -> FloatCounter {
        FloatCounter(cell)
    }

    /// Adds `delta` (compare-and-swap loop; uncontended in practice).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// An instantaneous level: worker-pool occupancy, queue depth.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// An unregistered handle (see [`Counter::detached`]).
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    pub(crate) fn shared(cell: Arc<AtomicI64>) -> Gauge {
        Gauge(cell)
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bounds: exponential decades 1 µs … 10 s, three
/// points per decade — wide enough for queue latencies and characterization
/// times alike.
pub(crate) fn default_bounds() -> Vec<f64> {
    // Spelled as literals (not computed) so each bound's shortest-roundtrip
    // display is the clean decimal the snapshot format promises.
    vec![
        1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
        2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    ]
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Upper bounds (inclusive) of each bucket; a final implicit `+Inf`
    /// bucket is the total count.
    pub(crate) bounds: Vec<f64>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (latencies in seconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// An unregistered handle (see [`Counter::detached`]).
    pub fn detached() -> Histogram {
        Histogram(Arc::new(HistogramCore::new(default_bounds())))
    }

    pub(crate) fn shared(core: Arc<HistogramCore>) -> Histogram {
        Histogram(core)
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &*self.0;
        // First bucket whose bound admits the value; beyond the last bound
        // only the +Inf total count advances.
        if let Some(i) = core.bounds.iter().position(|b| value <= *b) {
            core.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Quantile estimate over the recorded buckets (`0.0 < q <= 1.0`),
    /// with the well-defined edge cases of
    /// [`crate::histogram_quantile`]: `None` when empty, a bucket's
    /// upper bound when every observation landed in that one bucket,
    /// clamped to the last finite bound for overflow. This is the handle
    /// the SLO engine reads p99 latency through without snapshotting the
    /// whole registry.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let core = &*self.0;
        let buckets: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        crate::snapshot::histogram_quantile(
            &core.bounds,
            &buckets,
            core.count.load(Ordering::Relaxed),
            q,
        )
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

impl HistogramCore {
    pub(crate) fn new(bounds: Vec<f64>) -> HistogramCore {
        let buckets = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}
