//! The streaming observability pipeline: registry/flight samples in,
//! series + alerts + SLO budgets out.
//!
//! Data flow (DESIGN.md §5e):
//!
//! ```text
//! IterationSample ─┬─▶ TimeSeriesStore (ring series, tiers, windows)
//!                  ├─▶ EwmaDetector / PageHinkley ─▶ AlertLog
//!                  └─▶ SloEngine (error budgets) ─▶ JobStatus / /slo
//! ```
//!
//! One [`ObsPipeline`] watches one job. [`ObsPipeline::ingest`] is the
//! single entry point — the server, the chaos harness, and the cluster
//! emulator all feed the same per-iteration sample they already hand the
//! flight recorder, so enabling the pipeline changes *observation only*:
//! planner outputs stay byte-identical (golden-gated).
//!
//! Everything downstream of `ingest` is deterministic in the sample
//! sequence: same samples in, byte-identical alert stream and SLO report
//! out. That is what the replay test locks down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::detector::{Alert, AlertLog, EwmaConfig, EwmaDetector, PageHinkley, PageHinkleyConfig};
use crate::slo::{render_slo_json, SloEngine, SloSpec, SloStatus};
use crate::timeseries::{SeriesConfig, TimeSeriesStore, WindowStats};
use crate::{Histogram, IterationSample};

/// Series names the pipeline derives from each [`IterationSample`].
pub mod series {
    /// Total joules of the iteration (useful + intrinsic + extrinsic).
    pub const ENERGY_PER_ITERATION_J: &str = "energy_per_iteration_j";
    /// Synchronized iteration time, seconds.
    pub const SYNC_TIME_S: &str = "sync_time_s";
    /// Extrinsic-bloat joules as a share of total energy.
    pub const EXTRINSIC_SHARE: &str = "extrinsic_share";
    /// Degraded frontier lookups in the iteration.
    pub const DEGRADED_LOOKUP_RATE: &str = "degraded_lookup_rate";
    /// Iterations a just-ended degraded episode lasted (one point per
    /// recovery).
    pub const RECOVERY_ITERS: &str = "recovery_iters";
    /// p99 of the attached lookup-latency histogram, seconds.
    pub const LOOKUP_LATENCY_P99_S: &str = "lookup_latency_p99_s";
    /// Iterations between a drift re-characterization trigger and the
    /// first lookup served from the re-characterized frontier (one point
    /// per drift re-plan, fed via [`crate::ObsPipeline::observe_metric`]).
    pub const DRIFT_STALENESS_ITERS: &str = "drift_staleness_iters";
}

/// Tuning for an [`ObsPipeline`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Shape of every series ring.
    pub series: SeriesConfig,
    /// EWMA band config for the energy and time detectors.
    pub ewma: EwmaConfig,
    /// Page–Hinkley config for the energy and time drift tests.
    pub page_hinkley: PageHinkleyConfig,
    /// Objectives the SLO engine evaluates.
    pub slos: Vec<SloSpec>,
    /// Alerts retained by the log.
    pub alert_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            series: SeriesConfig::default(),
            ewma: EwmaConfig::default(),
            page_hinkley: PageHinkleyConfig::default(),
            slos: SloSpec::perseus_defaults(),
            alert_capacity: 1024,
        }
    }
}

/// Detector pair watching one derived series.
#[derive(Debug)]
struct Watch {
    ewma: EwmaDetector,
    page_hinkley: Option<PageHinkley>,
}

impl Watch {
    fn update(&mut self, iteration: u64, value: f64, out: &mut Vec<Alert>) {
        if let Some(alert) = self.ewma.update(iteration, value) {
            out.push(alert);
        }
        if let Some(ph) = &mut self.page_hinkley {
            if let Some(alert) = ph.update(iteration, value) {
                out.push(alert);
            }
        }
    }
}

/// Mutable single-writer state behind the pipeline's ingest lock.
#[derive(Debug)]
struct PipelineState {
    energy: Watch,
    sync_time: Watch,
    degraded_rate: Watch,
    /// Length of the in-progress degraded episode, iterations.
    degraded_streak: u64,
    /// Histogram whose p99 the SLO engine reads each tick.
    lookup_latency: Option<Histogram>,
}

/// The per-job streaming observability pipeline. Share via `Arc`; ingest
/// from the iteration loop, read from status endpoints.
#[derive(Debug)]
pub struct ObsPipeline {
    store: TimeSeriesStore,
    alerts: AlertLog,
    slo: SloEngine,
    state: Mutex<PipelineState>,
    ingested: AtomicU64,
}

impl Default for ObsPipeline {
    fn default() -> ObsPipeline {
        ObsPipeline::new(PipelineConfig::default())
    }
}

impl ObsPipeline {
    /// A fresh pipeline shaped by `cfg`.
    pub fn new(cfg: PipelineConfig) -> ObsPipeline {
        // The degraded-lookup watch needs an absolute floor: its healthy
        // baseline is exactly zero, where relative bands have no width.
        let degraded_ewma = EwmaConfig {
            abs_floor: 0.5,
            ..cfg.ewma
        };
        ObsPipeline {
            store: TimeSeriesStore::new(cfg.series),
            alerts: AlertLog::new(cfg.alert_capacity),
            slo: SloEngine::new(cfg.slos),
            state: Mutex::new(PipelineState {
                energy: Watch {
                    ewma: EwmaDetector::new(series::ENERGY_PER_ITERATION_J, cfg.ewma),
                    page_hinkley: Some(PageHinkley::new(
                        series::ENERGY_PER_ITERATION_J,
                        cfg.page_hinkley,
                    )),
                },
                sync_time: Watch {
                    ewma: EwmaDetector::new(series::SYNC_TIME_S, cfg.ewma),
                    page_hinkley: Some(PageHinkley::new(series::SYNC_TIME_S, cfg.page_hinkley)),
                },
                degraded_rate: Watch {
                    ewma: EwmaDetector::new(series::DEGRADED_LOOKUP_RATE, degraded_ewma),
                    page_hinkley: None,
                },
                degraded_streak: 0,
                lookup_latency: None,
            }),
            ingested: AtomicU64::new(0),
        }
    }

    /// The pipeline with default tuning and the Perseus SLO set.
    pub fn perseus_defaults() -> Arc<ObsPipeline> {
        Arc::new(ObsPipeline::default())
    }

    /// Attaches the lookup-latency histogram whose p99 the SLO engine
    /// evaluates each tick (typically the server's
    /// `perseus_server_lookup_seconds` handle).
    pub fn attach_lookup_latency(&self, histogram: Histogram) {
        self.state.lock().lookup_latency = Some(histogram);
    }

    /// Feeds one iteration through store, detectors, and SLO engine.
    /// Returns the alerts this sample transitioned (usually none).
    pub fn ingest(&self, sample: &IterationSample) -> Vec<Alert> {
        self.ingested.fetch_add(1, Ordering::Relaxed);
        let t = sample.iteration as f64;
        let total_j = sample.total_j();
        let extrinsic_share = if total_j > 0.0 {
            sample.extrinsic_j / total_j
        } else {
            0.0
        };
        let degraded_rate = sample.degraded_lookups as f64;

        self.store.push(series::ENERGY_PER_ITERATION_J, t, total_j);
        self.store.push(series::SYNC_TIME_S, t, sample.sync_time_s);
        self.store.push(series::EXTRINSIC_SHARE, t, extrinsic_share);
        self.store
            .push(series::DEGRADED_LOOKUP_RATE, t, degraded_rate);

        let mut fired = Vec::new();
        let mut slo_values: Vec<(&str, f64)> = vec![(series::EXTRINSIC_SHARE, extrinsic_share)];

        let mut state = self.state.lock();
        state.energy.update(sample.iteration, total_j, &mut fired);
        state
            .sync_time
            .update(sample.iteration, sample.sync_time_s, &mut fired);
        state
            .degraded_rate
            .update(sample.iteration, degraded_rate, &mut fired);

        if sample.degraded {
            state.degraded_streak += 1;
        } else if state.degraded_streak > 0 {
            let recovery = state.degraded_streak as f64;
            state.degraded_streak = 0;
            self.store.push(series::RECOVERY_ITERS, t, recovery);
            slo_values.push((series::RECOVERY_ITERS, recovery));
        }

        if let Some(p99) = state.lookup_latency.as_ref().and_then(|h| h.quantile(0.99)) {
            self.store.push(series::LOOKUP_LATENCY_P99_S, t, p99);
            slo_values.push((series::LOOKUP_LATENCY_P99_S, p99));
        }
        drop(state);

        self.slo.evaluate(sample.iteration, &slo_values);
        for alert in &fired {
            self.alerts.push(alert.clone());
        }
        fired
    }

    /// Records one point of an out-of-band metric — a series not derived
    /// from [`IterationSample`], e.g.
    /// [`series::DRIFT_STALENESS_ITERS`] — into the store and evaluates
    /// any SLOs reading it. Detectors are untouched: out-of-band metrics
    /// are sparse (one point per event), which is exactly the shape
    /// streaming change detectors mis-read.
    pub fn observe_metric(&self, iteration: u64, metric: &str, value: f64) {
        self.store.push(metric, iteration as f64, value);
        self.slo.evaluate(iteration, &[(metric, value)]);
    }

    /// Samples ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ingested.load(Ordering::Relaxed)
    }

    /// The time-series store (for window queries and series dumps).
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// Windowed aggregates of a derived series.
    pub fn window(&self, metric: &str, window: usize) -> Option<WindowStats> {
        self.store.window(metric, window)
    }

    /// The alert log.
    pub fn alert_log(&self) -> &AlertLog {
        &self.alerts
    }

    /// All retained alerts, oldest first.
    pub fn alerts(&self) -> Vec<Alert> {
        self.alerts.alerts()
    }

    /// Currently-firing alerts.
    pub fn firing(&self) -> Vec<Alert> {
        self.alerts.firing()
    }

    /// Per-objective SLO statuses, in spec order.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        self.slo.status()
    }

    /// Whether every SLO budget has headroom.
    pub fn slo_healthy(&self) -> bool {
        self.slo.all_healthy()
    }

    /// The `/alerts` endpoint body: retained alerts as a JSON array.
    pub fn alerts_json(&self) -> String {
        render_alerts_json(&self.alerts())
    }

    /// The `/slo` endpoint body: objective statuses as a JSON array.
    pub fn slo_json(&self) -> String {
        render_slo_json(&self.slo_status())
    }
}

/// Renders alerts as a JSON array (used by `/alerts`).
pub fn render_alerts_json(alerts: &[Alert]) -> String {
    use crate::slo::{json_number, json_string};
    use std::fmt::Write as _;

    let mut out = String::from("[");
    for (i, a) in alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"iteration\":{iter},\"metric\":{metric},\"detector\":\"{det}\",\"state\":\"{state}\",\"severity\":\"{sev}\",\"observed\":{obs},\"baseline\":{base},\"threshold\":{thr},\"statistic\":{stat}}}",
            iter = a.iteration,
            metric = json_string(&a.metric),
            det = a.detector,
            state = a.state,
            sev = a.severity,
            obs = json_number(a.evidence.observed),
            base = json_number(a.evidence.baseline),
            thr = json_number(a.evidence.threshold),
            stat = json_number(a.evidence.statistic),
        );
    }
    out.push(']');
    out
}
