//! The one pipe everything emits through: [`TelemetrySink`] receives a
//! [`SpanRecord`] for every closed span. The in-memory registry is the
//! implicit default sink; [`TraceWriter`] additionally collects records
//! into Chrome-trace JSON (`chrome://tracing` / Perfetto) for the viz
//! tooling.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Everything known about one closed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The span's own name (last path component).
    pub name: &'static str,
    /// Full `parent/child` path.
    pub path: String,
    /// Labels captured at open time.
    pub labels: Vec<(&'static str, String)>,
    /// Custom counters accumulated via [`crate::Span::add`].
    pub custom: Vec<(&'static str, u64)>,
    /// When the span opened.
    pub start: Instant,
    /// How long it stayed open.
    pub duration: Duration,
    /// Dense per-process ordinal of the recording thread.
    pub thread: u64,
}

/// A consumer of closed spans. Implementations must be cheap and
/// non-blocking: `on_span` runs inline in the instrumented thread while a
/// read lock on the sink list is held.
pub trait TelemetrySink: Send + Sync {
    /// Called once per closed span, after its metrics are registered.
    fn on_span(&self, record: &SpanRecord);
}

struct TraceEvent {
    name: String,
    ts_us: f64,
    dur_us: f64,
    thread: u64,
    args: Vec<(String, String)>,
}

/// A [`TelemetrySink`] that buffers spans and serializes them as Chrome
/// trace-event JSON (complete `"ph": "X"` events).
///
/// ```
/// use std::sync::Arc;
/// use perseus_telemetry::{span, Telemetry, TraceWriter};
///
/// let tel = Telemetry::enabled();
/// let trace = Arc::new(TraceWriter::new());
/// tel.add_sink(Arc::clone(&trace) as _);
/// drop(span!(tel, "lookup"));
/// assert!(trace.to_chrome_json().contains("\"name\":\"lookup\""));
/// ```
pub struct TraceWriter {
    /// Zero point of the trace's microsecond timeline.
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceWriter {
    fn default() -> TraceWriter {
        TraceWriter::new()
    }
}

impl TraceWriter {
    /// An empty trace whose timeline starts now.
    pub fn new() -> TraceWriter {
        TraceWriter {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Number of spans captured so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no spans have been captured.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Serializes the captured spans as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
    /// Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                escape_json(&ev.name),
                ev.thread,
                ev.ts_us,
                ev.dur_us,
            );
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl TelemetrySink for TraceWriter {
    fn on_span(&self, record: &SpanRecord) {
        let ts = record.start.saturating_duration_since(self.origin);
        let mut args: Vec<(String, String)> = record
            .labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        for (k, v) in &record.custom {
            args.push(((*k).to_string(), v.to_string()));
        }
        self.events.lock().push(TraceEvent {
            name: record.path.clone(),
            ts_us: ts.as_secs_f64() * 1e6,
            dur_us: record.duration.as_secs_f64() * 1e6,
            thread: record.thread,
            args,
        });
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
