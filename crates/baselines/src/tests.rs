use perseus_core::{
    characterize, EnergySchedule, FrontierOptions, PlanContext, PlanOutput, Planner,
};
use perseus_gpu::{GpuSpec, Workload};
use perseus_models::StageWorkloads;
use perseus_pipeline::{PipelineBuilder, PipelineDag, ScheduleKind};

use crate::{potential_savings, AllMaxFreq, EnvPipe, MinEnergyOracle, ZeusGlobal, ZeusPerStage};

fn stages_with_scales(scales: &[f64]) -> Vec<StageWorkloads> {
    scales
        .iter()
        .map(|&k| StageWorkloads {
            fwd: Workload::new(40.0 * k, 0.004 * k, 0.85),
            bwd: Workload::new(80.0 * k, 0.008 * k, 0.92),
        })
        .collect()
}

fn build_pipe(n: usize, m: usize) -> PipelineDag {
    PipelineBuilder::new(ScheduleKind::OneFOneB, n, m)
        .build()
        .unwrap()
}

/// Plans with `p` and selects the no-straggler deployment schedule.
fn plan_schedule(p: &dyn Planner, ctx: &PlanContext<'_>) -> EnergySchedule {
    p.plan(ctx).unwrap().select(None).clone()
}

/// Plans with `p` and returns the raw candidate sweep.
fn plan_sweep(p: &dyn Planner, ctx: &PlanContext<'_>) -> Vec<EnergySchedule> {
    p.plan(ctx)
        .unwrap()
        .as_sweep()
        .expect("sweep planner")
        .to_vec()
}

#[test]
fn all_max_freq_uses_max_clock_everywhere() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 4);
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0; 3])).unwrap();
    let s = plan_schedule(&AllMaxFreq, &ctx);
    for id in pipe.dag.node_ids() {
        if let Some(f) = s.freq_of(id) {
            assert_eq!(f, gpu.max_freq());
        }
    }
}

#[test]
fn oracle_saves_but_slows() {
    let gpu = GpuSpec::a40();
    let pipe = build_pipe(4, 6);
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.1, 0.9, 1.2]))
            .unwrap();
    let base = plan_schedule(&AllMaxFreq, &ctx).energy_report(&ctx, None);
    let oracle = plan_schedule(&MinEnergyOracle, &ctx).energy_report(&ctx, None);
    assert!(oracle.total_j() < base.total_j());
    assert!(oracle.iter_time_s > base.iter_time_s);
    let p = potential_savings(&ctx).unwrap();
    assert!(p > 0.05 && p < 0.6, "potential savings {p}");
}

#[test]
fn zeus_global_frontier_shape() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 4);
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.15, 0.95]))
            .unwrap();
    let points = plan_sweep(&ZeusGlobal, &ctx);
    assert!(points.len() > 10);
    // First point is all-max; times increase as the cap deepens.
    assert!(points.first().unwrap().time_s <= points.last().unwrap().time_s);
    // Energy at the last (deepest useful) cap is below the first.
    let first = points.first().unwrap().energy_report(&ctx, None);
    let last = points.last().unwrap().energy_report(&ctx, None);
    assert!(last.total_j() < first.total_j());
}

#[test]
fn perseus_pareto_dominates_zeus_global() {
    // §6.4 / Figure 9: for any ZeusGlobal point there is a Perseus frontier
    // point no slower and no hungrier (modulo tiny numerical slack).
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.15, 0.9, 1.25]))
            .unwrap();
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    let zeus = plan_sweep(&ZeusGlobal, &ctx);
    for z in &zeus {
        let zr = z.energy_report(&ctx, None);
        let p = frontier.lookup(zr.iter_time_s);
        let pr = p.schedule.energy_report(&ctx, None);
        assert!(
            pr.total_j() <= zr.total_j() * 1.005,
            "Perseus {} J at {} s vs Zeus {} J at {} s",
            pr.total_j(),
            pr.iter_time_s,
            zr.total_j(),
            zr.iter_time_s
        );
    }
}

#[test]
fn zeus_per_stage_balances_forward_times() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.2, 0.9, 1.1]))
            .unwrap();
    let points = plan_sweep(&ZeusPerStage, &ctx);
    assert!(points.len() > 10);
    // At deep targets, per-stage forward durations converge toward the
    // target: the spread between stages shrinks versus all-max.
    let spread = |s: &perseus_core::EnergySchedule| {
        let mut per_stage = [0.0f64; 4];
        for (id, c) in pipe.computations() {
            if c.kind == perseus_pipeline::CompKind::Forward && c.microbatch == 0 {
                per_stage[c.stage] = s.realized_dur[id.index()];
            }
        }
        let max = per_stage.iter().copied().fold(f64::MIN, f64::max);
        let min = per_stage.iter().copied().fold(f64::MAX, f64::min);
        max / min
    };
    let unbalanced = spread(&plan_schedule(&AllMaxFreq, &ctx));
    let first = spread(points.first().unwrap());
    let mid = spread(&points[points.len() / 2]);
    assert!(
        first < unbalanced,
        "balancing should shrink the spread: {first} vs {unbalanced}"
    );
    assert!(
        mid < unbalanced,
        "balancing should persist across the sweep: {mid} vs {unbalanced}"
    );
}

#[test]
fn envpipe_keeps_last_stage_at_max() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 6);
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.1, 0.95, 1.2]))
            .unwrap();
    let s = plan_schedule(&EnvPipe::default(), &ctx);
    for (id, c) in pipe.computations() {
        if c.stage == 3 {
            assert_eq!(
                s.freq_of(id),
                Some(gpu.max_freq()),
                "last stage must stay at max"
            );
        }
    }
}

#[test]
fn envpipe_saves_energy_within_tolerance() {
    let gpu = GpuSpec::a40();
    let pipe = build_pipe(4, 8);
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.1, 0.9, 1.25]))
            .unwrap();
    let base = plan_schedule(&AllMaxFreq, &ctx).energy_report(&ctx, None);
    let ep = plan_schedule(&EnvPipe::default(), &ctx).energy_report(&ctx, None);
    let savings = 1.0 - ep.total_j() / base.total_j();
    let slowdown = ep.iter_time_s / base.iter_time_s - 1.0;
    assert!(savings > 0.01, "EnvPipe should save something: {savings}");
    assert!(
        slowdown <= 0.0055,
        "EnvPipe slowdown within tolerance: {slowdown}"
    );
}

#[test]
fn perseus_beats_envpipe_when_last_stage_is_light() {
    // §6.2: EnvPipe's "last stage is heaviest" assumption fails when the
    // bottleneck is elsewhere — Perseus can also slow the last stage.
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(4, 8);
    // Heaviest stage is stage 1; last stage is light.
    let ctx =
        PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.3, 1.0, 0.75]))
            .unwrap();
    let base = plan_schedule(&AllMaxFreq, &ctx).energy_report(&ctx, None);
    let frontier = characterize(&ctx, &FrontierOptions::default()).unwrap();
    let perseus = frontier.fastest().schedule.energy_report(&ctx, None);
    let ep = plan_schedule(&EnvPipe::default(), &ctx).energy_report(&ctx, None);
    let s_perseus = 1.0 - perseus.total_j() / base.total_j();
    let s_envpipe = 1.0 - ep.total_j() / base.total_j();
    assert!(
        s_perseus > s_envpipe,
        "Perseus {s_perseus:.4} should beat EnvPipe {s_envpipe:.4} here"
    );
}

#[test]
fn every_policy_is_reachable_through_the_planner_trait() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 4);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.1, 0.9]))
        .unwrap();
    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(AllMaxFreq),
        Box::new(MinEnergyOracle),
        Box::new(EnvPipe::default()),
        Box::new(ZeusGlobal),
        Box::new(ZeusPerStage),
        Box::new(perseus_core::Perseus::default()),
    ];
    for p in &planners {
        let out = p.plan(&ctx).unwrap();
        let s = out.select(None);
        assert!(
            s.time_s > 0.0 && s.compute_j > 0.0,
            "{} produced a schedule",
            p.name()
        );
    }
}

#[test]
fn sweep_selection_honors_the_straggler_deadline() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 4);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.1, 0.9]))
        .unwrap();
    let out = ZeusGlobal.plan(&ctx).unwrap();
    let sweep = out.as_sweep().unwrap();
    let fastest = sweep.iter().map(|s| s.time_s).fold(f64::INFINITY, f64::min);
    let slowest = sweep.iter().map(|s| s.time_s).fold(0.0f64, f64::max);

    // No straggler: never slower than the all-max baseline.
    let no_straggler = out.select(None);
    assert!(no_straggler.time_s <= fastest * (1.0 + 1e-9));

    // Relaxed deadline: picks the lowest-energy candidate meeting it.
    let deadline = (fastest + slowest) / 2.0;
    let picked = out.select(Some(deadline));
    assert!(picked.time_s <= deadline);
    for s in sweep {
        if s.time_s <= deadline {
            assert!(picked.compute_j <= s.compute_j + 1e-9);
        }
    }
}

#[test]
fn planner_trait_outputs_are_deterministic() {
    // The Planner trait is the only baseline entry point now that the
    // pre-trait free functions are gone; planning the same context twice
    // must yield identical schedules (the property the retired
    // wrapper-equivalence test actually pinned).
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 4);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.2, 0.9]))
        .unwrap();
    let a = plan_schedule(&AllMaxFreq, &ctx);
    let b = plan_schedule(&AllMaxFreq, &ctx);
    assert_eq!(a.time_s, b.time_s);
    assert_eq!(a.compute_j, b.compute_j);

    let sweep_a = plan_sweep(&ZeusGlobal, &ctx);
    let sweep_b = plan_sweep(&ZeusGlobal, &ctx);
    assert_eq!(sweep_a.len(), sweep_b.len());

    let ep_a = plan_schedule(&EnvPipe::default(), &ctx);
    let ep_b = plan_schedule(&EnvPipe::default(), &ctx);
    assert_eq!(ep_a.time_s, ep_b.time_s);
}

#[test]
fn plan_output_select_matches_variant_semantics() {
    let gpu = GpuSpec::a100_pcie();
    let pipe = build_pipe(3, 4);
    let ctx = PlanContext::from_model_profiles(&pipe, &gpu, &stages_with_scales(&[1.0, 1.1, 0.9]))
        .unwrap();

    // Schedule: straggler-unaware.
    let out = EnvPipe::default().plan(&ctx).unwrap();
    assert_eq!(out.select(None).time_s, out.select(Some(1e9)).time_s);
    assert!(out.as_schedule().is_some());
    assert!(out.as_frontier().is_none());

    // Frontier: a relaxed deadline moves down the frontier.
    let out = perseus_core::Perseus::default().plan(&ctx).unwrap();
    let frontier = out.as_frontier().unwrap();
    let fast = out.select(None).clone();
    let slow = out.select(Some(frontier.t_star() * 2.0)).clone();
    assert!(slow.time_s >= fast.time_s);
    assert!(slow.compute_j <= fast.compute_j);

    match out {
        PlanOutput::Frontier(_) => {}
        _ => panic!("perseus plans a frontier"),
    }
}
