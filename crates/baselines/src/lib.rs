//! Baseline energy policies the paper compares Perseus against (§6.1).
//!
//! Every policy implements [`perseus_core::Planner`], so the cluster
//! emulator and planning server dispatch them interchangeably with
//! Perseus itself:
//!
//! * [`AllMaxFreq`] — the default mode of operation: every computation at
//!   the maximum SM clock. All savings percentages are relative to this.
//! * [`MinEnergyOracle`] — every computation at its minimum-energy
//!   frequency: the §2.4 upper bound on possible savings (it slows the
//!   iteration, so it is a bound, not a policy).
//! * [`ZeusGlobal`] — (§6.4) scan one global frequency cap for all stages.
//!   Unaware of stage imbalance, it cannot remove intrinsic bloat.
//! * [`ZeusPerStage`] — (§6.4) per-stage frequencies that balance
//!   *forward* computation time. Unaware of the critical path, it slows
//!   critical computations too.
//! * [`EnvPipe`] — [Choi et al., ATC'23] re-implemented from the paper's
//!   description: the final stage is assumed heaviest and kept at maximum
//!   frequency, while earlier stages' forward/backward clocks are greedily
//!   lowered along the envelope as long as the iteration time stays within
//!   a small tolerance. Two structural handicaps reproduce the paper's
//!   findings: (1) stage-uniform frequencies cannot slow warmup/flush
//!   microbatches individually, and (2) the tolerance-based acceptance can
//!   degrade iteration time when the last stage is *not* the bottleneck.
//!
//! The [`Planner`] trait is the only entry point: the pre-trait free
//! functions (`all_max_freq`, `min_energy_oracle`, `zeus_global_frontier`,
//! `zeus_per_stage_frontier`, `envpipe`) have been removed.

use perseus_core::{CoreError, EnergySchedule, PlanContext, PlanOutput, Planner};
use perseus_gpu::FreqMHz;
use perseus_pipeline::{node_start_times, CompKind};

// ---------------------------------------------------------------------------
// Policy logic (shared by the planners and the deprecated wrappers).
// ---------------------------------------------------------------------------

fn all_max_schedule(ctx: &PlanContext<'_>) -> Result<EnergySchedule, CoreError> {
    EnergySchedule::realize(ctx, ctx.fastest_durations())
}

fn min_energy_schedule(ctx: &PlanContext<'_>) -> Result<EnergySchedule, CoreError> {
    EnergySchedule::realize(ctx, ctx.min_energy_durations())
}

/// The deadline a Zeus-style sweep honors when no straggler is known: the
/// pipeline's own all-max iteration time (with a hair of tolerance for
/// floating-point ties), so the policy never slows training unprompted —
/// it still banks the near-free top-clock savings.
fn no_straggler_deadline(ctx: &PlanContext<'_>) -> Result<f64, CoreError> {
    Ok(all_max_schedule(ctx)?.time_s * (1.0 + 1e-9))
}

/// Plans every computation at frequency `cap` (clamped per computation to
/// its profiled range) and realizes the schedule.
fn schedule_at_cap(ctx: &PlanContext<'_>, cap: FreqMHz) -> Result<EnergySchedule, CoreError> {
    let mut planned = ctx.fastest_durations();
    for id in ctx.pipe.dag.node_ids() {
        if ctx.info(id).is_some() {
            let profile = ctx.profile_of(id).expect("comp has profile");
            if let Some(entry) = profile.entry_at(cap) {
                planned[id.index()] = entry.time_s;
            } else {
                // Cap below the profiled range: Zeus stops at the
                // minimum-energy frequency, like the §5 sweep.
                planned[id.index()] = profile.t_max();
            }
        }
    }
    EnergySchedule::realize(ctx, planned)
}

fn zeus_global_sweep(ctx: &PlanContext<'_>) -> Result<Vec<EnergySchedule>, CoreError> {
    let mut out = Vec::new();
    for f in ctx.gpu.frequencies().into_iter().rev() {
        out.push(schedule_at_cap(ctx, f)?);
        // Stop once every computation has saturated at its min-energy
        // duration (deeper caps change nothing).
        let all_saturated = ctx.pipe.dag.node_ids().all(|id| match ctx.info(id) {
            Some(info) => {
                out.last().expect("just pushed").planned[id.index()] >= info.t_max - 1e-12
            }
            None => true,
        });
        if all_saturated {
            break;
        }
    }
    Ok(out)
}

fn zeus_per_stage_sweep(ctx: &PlanContext<'_>) -> Result<Vec<EnergySchedule>, CoreError> {
    // Per-stage forward profiles define the sweep range: from the slowest
    // stage's fastest forward to the slowest stage's min-energy forward.
    let n_stages = ctx.pipe.n_stages;
    let mut fwd_tmin = vec![0.0f64; n_stages];
    let mut fwd_tmax = vec![0.0f64; n_stages];
    for (id, c) in ctx.pipe.computations() {
        if c.kind == CompKind::Forward {
            let info = ctx.info(id).expect("comp");
            fwd_tmin[c.stage] = info.t_min;
            fwd_tmax[c.stage] = info.t_max;
        }
    }
    let lo = fwd_tmin.iter().copied().fold(0.0, f64::max);
    let hi = fwd_tmax.iter().copied().fold(0.0, f64::max);
    let steps = 60;
    let mut out = Vec::with_capacity(steps + 1);
    for i in 0..=steps {
        let target = lo + (hi - lo) * i as f64 / steps as f64;
        // Pick per-stage clocks off the forward profiles.
        let mut stage_freq: Vec<Option<FreqMHz>> = vec![None; n_stages];
        for (id, c) in ctx.pipe.computations() {
            if c.kind == CompKind::Forward && stage_freq[c.stage].is_none() {
                let profile = ctx.profile_of(id).expect("comp");
                let entry = profile
                    .slowest_within(target.max(profile.t_min()))
                    .expect("target clamped to profiled range");
                stage_freq[c.stage] = Some(entry.freq);
            }
        }
        // Apply the stage clock to every computation on that stage.
        let mut planned = ctx.fastest_durations();
        for (id, c) in ctx.pipe.computations() {
            let profile = ctx.profile_of(id).expect("comp");
            let f = stage_freq[c.stage].expect("every stage has forwards");
            let t = profile
                .entry_at(f)
                .map_or_else(|| profile.t_max(), |e| e.time_s);
            planned[id.index()] = t;
        }
        out.push(EnergySchedule::realize(ctx, planned)?);
    }
    Ok(out)
}

fn envpipe_schedule(
    ctx: &PlanContext<'_>,
    opts: EnvPipeOptions,
) -> Result<EnergySchedule, CoreError> {
    let n_stages = ctx.pipe.n_stages;
    let spec = ctx.gpu;
    let fastest = ctx.fastest_durations();
    let (_, t0) = node_start_times(&ctx.pipe.dag, |id, _| fastest[id.index()]);
    let budget = t0 * (1.0 + opts.tolerance);

    // State: per (stage, kind) clock, initialized to maximum.
    let kinds = [CompKind::Forward, CompKind::Backward, CompKind::Recompute];
    let kidx = |k: CompKind| match k {
        CompKind::Forward => 0usize,
        CompKind::Backward => 1,
        CompKind::Recompute => 2,
    };
    let mut clock = vec![[spec.max_freq(); 3]; n_stages];

    let planned_for = |clock: &Vec<[FreqMHz; 3]>, ctx: &PlanContext<'_>| -> Vec<f64> {
        let mut planned = ctx.fastest_durations();
        for (id, c) in ctx.pipe.computations() {
            let profile = ctx.profile_of(id).expect("comp");
            let f = clock[c.stage][kidx(c.kind)];
            planned[id.index()] = profile
                .entry_at(f)
                .map_or_else(|| profile.t_max(), |e| e.time_s);
        }
        planned
    };

    // Greedy outer loop: sweep stages from first to second-to-last (the
    // envelope order), lowering each knob while the iteration time stays
    // within budget. The last stage is never touched (EnvPipe's core
    // assumption).
    let mut improved = true;
    while improved {
        improved = false;
        for s in 0..n_stages.saturating_sub(1) {
            for k in kinds {
                let cur = clock[s][kidx(k)];
                if cur == spec.min_freq() {
                    continue;
                }
                let next = FreqMHz(cur.0 - spec.step_mhz);
                if !spec.supports(next) {
                    continue;
                }
                clock[s][kidx(k)] = next;
                let planned = planned_for(&clock, ctx);
                let (_, t) = node_start_times(&ctx.pipe.dag, |id, _| planned[id.index()]);
                if t <= budget {
                    improved = true;
                } else {
                    clock[s][kidx(k)] = cur; // revert
                }
            }
        }
    }
    EnergySchedule::realize(ctx, planned_for(&clock, ctx))
}

// ---------------------------------------------------------------------------
// Planner implementations.
// ---------------------------------------------------------------------------

/// Every computation at maximum frequency — the savings baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllMaxFreq;

impl Planner for AllMaxFreq {
    fn name(&self) -> &'static str {
        "all_max_freq"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError> {
        Ok(PlanOutput::Schedule(all_max_schedule(ctx)?))
    }
}

/// Every computation at its minimum-energy frequency: the largest possible
/// savings under the problem setting (§2.4), at the cost of slowdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinEnergyOracle;

impl Planner for MinEnergyOracle {
    fn name(&self) -> &'static str {
        "min_energy_oracle"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError> {
        Ok(PlanOutput::Schedule(min_energy_schedule(ctx)?))
    }
}

/// ZeusGlobal: one candidate schedule per global frequency cap, descending
/// from the maximum clock to the deepest cap any computation's profile
/// covers; selection picks the lowest-energy candidate meeting the
/// straggler deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeusGlobal;

impl Planner for ZeusGlobal {
    fn name(&self) -> &'static str {
        "zeus_global"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError> {
        Ok(PlanOutput::Sweep {
            schedules: zeus_global_sweep(ctx)?,
            no_straggler_deadline_s: no_straggler_deadline(ctx)?,
        })
    }
}

/// ZeusPerStage: for each target forward latency (swept over the feasible
/// range), every stage picks the slowest frequency whose *forward* time
/// meets the target; the stage's backward runs at the same clock (one
/// power knob per GPU). Balances forward times but ignores the critical
/// path.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeusPerStage;

impl Planner for ZeusPerStage {
    fn name(&self) -> &'static str {
        "zeus_per_stage"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError> {
        Ok(PlanOutput::Sweep {
            schedules: zeus_per_stage_sweep(ctx)?,
            no_straggler_deadline_s: no_straggler_deadline(ctx)?,
        })
    }
}

/// Tuning for the EnvPipe re-implementation.
#[derive(Debug, Clone, Copy)]
pub struct EnvPipeOptions {
    /// Relative iteration-time inflation EnvPipe tolerates while lowering
    /// clocks (its envelope slack check is locally greedy, not exact).
    pub tolerance: f64,
}

impl Default for EnvPipeOptions {
    fn default() -> Self {
        EnvPipeOptions { tolerance: 0.005 }
    }
}

/// EnvPipe: greedy stage-uniform frequency reduction keeping the last
/// stage at maximum clock. See the module docs for the modeling notes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnvPipe {
    /// Tuning knobs (tolerance).
    pub opts: EnvPipeOptions,
}

impl EnvPipe {
    /// An EnvPipe planner with the given options.
    pub fn new(opts: EnvPipeOptions) -> EnvPipe {
        EnvPipe { opts }
    }
}

impl Planner for EnvPipe {
    fn name(&self) -> &'static str {
        "envpipe"
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> Result<PlanOutput, CoreError> {
        Ok(PlanOutput::Schedule(envpipe_schedule(ctx, self.opts)?))
    }
}

// ---------------------------------------------------------------------------
// Derived quantities and deprecated pre-trait entry points.
// ---------------------------------------------------------------------------

/// §2.4 potential-savings bound: relative per-iteration energy reduction of
/// the min-energy oracle versus all-max (each evaluated at its own
/// iteration time, no straggler).
///
/// # Errors
///
/// Propagates realization errors.
pub fn potential_savings(ctx: &PlanContext<'_>) -> Result<f64, CoreError> {
    let base = all_max_schedule(ctx)?.energy_report(ctx, None);
    let oracle = min_energy_schedule(ctx)?.energy_report(ctx, None);
    Ok(1.0 - oracle.total_j() / base.total_j())
}

#[cfg(test)]
mod tests;
