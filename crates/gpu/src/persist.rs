//! [`Persist`] implementations for the GPU model types that ride in the
//! server's write-ahead journal and snapshots.

use std::sync::Mutex;

use perseus_store::{ByteReader, ByteWriter, Persist, StoreError};

use crate::model::{FreqMHz, GpuSpec};
use crate::power_state::{PowerState, PowerStateModel};

impl Persist for FreqMHz {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(FreqMHz(r.get_u32()?))
    }
}

/// Resolves a decoded spec name to a `&'static str`.
///
/// The built-in specs resolve to their canonical static names; unknown
/// names (custom specs) are interned once into a process-global pool, so
/// decoding the same custom spec repeatedly leaks its name exactly once.
fn intern_name(name: String) -> &'static str {
    for spec in [
        GpuSpec::a100_pcie(),
        GpuSpec::a100_sxm(),
        GpuSpec::a40(),
        GpuSpec::h100_sxm(),
        GpuSpec::v100(),
    ] {
        if spec.name == name {
            return spec.name;
        }
    }
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().expect("name pool lock");
    if let Some(existing) = pool.iter().find(|n| **n == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.push(leaked);
    leaked
}

impl Persist for PowerState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self.name);
        w.put_f64(self.power_w);
        w.put_f64(self.entry_s);
        w.put_f64(self.exit_s);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let name = intern_name(r.get_str()?);
        let power_w = r.get_f64()?;
        let entry_s = r.get_f64()?;
        let exit_s = r.get_f64()?;
        if !power_w.is_finite() || power_w < 0.0 {
            return Err(StoreError::corrupt(format!(
                "invalid power-state draw {power_w} W for {name:?}"
            )));
        }
        if !entry_s.is_finite() || !exit_s.is_finite() || entry_s < 0.0 || exit_s < 0.0 {
            return Err(StoreError::corrupt(format!(
                "invalid power-state latency {entry_s}/{exit_s} s for {name:?}"
            )));
        }
        Ok(PowerState {
            name,
            power_w,
            entry_s,
            exit_s,
        })
    }
}

impl Persist for PowerStateModel {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.states.len());
        for s in &self.states {
            s.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let n = r.get_len(8)?;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(PowerState::decode(r)?);
        }
        Ok(PowerStateModel { states })
    }
}

impl Persist for GpuSpec {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self.name);
        w.put_u32(self.min_freq_mhz);
        w.put_u32(self.max_freq_mhz);
        w.put_u32(self.step_mhz);
        w.put_f64(self.tdp_w);
        w.put_f64(self.static_w);
        w.put_f64(self.blocking_w);
        w.put_f64(self.alpha);
        w.put_f64(self.flops_per_mhz_s);
        w.put_f64(self.cap_knee);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let name = intern_name(r.get_str()?);
        let min_freq_mhz = r.get_u32()?;
        let max_freq_mhz = r.get_u32()?;
        let step_mhz = r.get_u32()?;
        if step_mhz == 0 || min_freq_mhz > max_freq_mhz {
            return Err(StoreError::corrupt(format!(
                "invalid GPU frequency range {min_freq_mhz}..{max_freq_mhz} step {step_mhz}"
            )));
        }
        Ok(GpuSpec {
            name,
            min_freq_mhz,
            max_freq_mhz,
            step_mhz,
            tdp_w: r.get_f64()?,
            static_w: r.get_f64()?,
            blocking_w: r.get_f64()?,
            alpha: r.get_f64()?,
            flops_per_mhz_s: r.get_f64()?,
            cap_knee: r.get_f64()?,
        })
    }
}
