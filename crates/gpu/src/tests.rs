use crate::{
    DeviceError, FreqMHz, GpuSpec, NoiseModel, PowerState, PowerStateError, PowerStateModel,
    SimGpu, Workload,
};

fn sample_workload() -> Workload {
    // Roughly a GPT-scale forward computation: ~50 ms at max A100 clock.
    Workload::new(60.0, 0.008, 0.9)
}

#[test]
fn frequency_tables_match_hardware() {
    let a100 = GpuSpec::a100_pcie();
    assert_eq!(a100.min_freq(), FreqMHz(210));
    assert_eq!(a100.max_freq(), FreqMHz(1410));
    let freqs = a100.frequencies();
    assert_eq!(freqs.first(), Some(&FreqMHz(210)));
    assert_eq!(freqs.last(), Some(&FreqMHz(1410)));
    assert_eq!(freqs[1].0 - freqs[0].0, 15);
    // A40 has a wider range than A100 — the driver of its larger savings.
    assert!(GpuSpec::a40().max_freq_mhz > a100.max_freq_mhz);
    assert!(GpuSpec::h100_sxm().max_freq_mhz > GpuSpec::a40().max_freq_mhz);
}

#[test]
fn supports_and_clamp() {
    let a100 = GpuSpec::a100_pcie();
    assert!(a100.supports(FreqMHz(210)));
    assert!(a100.supports(FreqMHz(1410)));
    assert!(!a100.supports(FreqMHz(211)));
    assert!(!a100.supports(FreqMHz(1425)));
    assert_eq!(a100.clamp_freq(FreqMHz(1)), FreqMHz(210));
    assert_eq!(a100.clamp_freq(FreqMHz(5000)), FreqMHz(1410));
    assert_eq!(a100.clamp_freq(FreqMHz(852)), FreqMHz(855));
}

#[test]
fn time_monotone_decreasing_in_frequency() {
    let a100 = GpuSpec::a100_pcie();
    let w = sample_workload();
    let freqs = a100.frequencies();
    for pair in freqs.windows(2) {
        assert!(a100.time(&w, pair[0]) > a100.time(&w, pair[1]));
    }
}

#[test]
fn mem_time_is_frequency_insensitive() {
    let a100 = GpuSpec::a100_pcie();
    let w = Workload::new(0.0, 0.02, 0.5);
    assert_eq!(
        a100.time(&w, a100.min_freq()),
        a100.time(&w, a100.max_freq())
    );
}

#[test]
fn power_within_envelope() {
    let a100 = GpuSpec::a100_pcie();
    for f in a100.frequencies() {
        let p = a100.power(f, 1.0);
        assert!(p >= a100.static_w);
        assert!(p <= a100.tdp_w + 1e-9);
    }
    assert!((a100.power(a100.max_freq(), 1.0) - a100.tdp_w).abs() < 1e-9);
}

#[test]
fn min_energy_frequency_is_interior() {
    // §5: sweeping down from max frequency, energy decreases then
    // increases; the optimum must be strictly between min and max.
    for spec in [
        GpuSpec::a100_pcie(),
        GpuSpec::a40(),
        GpuSpec::h100_sxm(),
        GpuSpec::v100(),
    ] {
        let w = sample_workload();
        let f_opt = spec.min_energy_freq(&w);
        assert!(f_opt > spec.min_freq(), "{}: optimum at floor", spec.name);
        assert!(f_opt < spec.max_freq(), "{}: optimum at ceiling", spec.name);
    }
}

#[test]
fn energy_unimodal_around_optimum() {
    let a100 = GpuSpec::a100_pcie();
    let w = sample_workload();
    let f_opt = a100.min_energy_freq(&w);
    let e_opt = a100.energy(&w, f_opt);
    assert!(a100.energy(&w, a100.min_freq()) > e_opt);
    assert!(a100.energy(&w, a100.max_freq()) > e_opt);
}

#[test]
fn pareto_points_strictly_tradeoff() {
    let a100 = GpuSpec::a100_pcie();
    let w = sample_workload();
    let pts = a100.pareto_points(&w);
    assert!(pts.len() > 5);
    for pair in pts.windows(2) {
        assert!(pair[0].time_s < pair[1].time_s);
        assert!(pair[0].energy_j > pair[1].energy_j);
    }
    // Fastest Pareto point is the max frequency; slowest is the min-energy
    // frequency.
    assert_eq!(pts.first().unwrap().freq, a100.max_freq());
    assert_eq!(pts.last().unwrap().freq, a100.min_energy_freq(&w));
}

#[test]
fn slowest_freq_within_deadline() {
    let a100 = GpuSpec::a100_pcie();
    let w = sample_workload();
    let t_at = |f| a100.time(&w, f);
    // Deadline exactly achievable.
    let f = a100.slowest_freq_within(&w, t_at(FreqMHz(900))).unwrap();
    assert_eq!(f, FreqMHz(900));
    // Slightly tighter deadline requires the next faster clock.
    let f = a100
        .slowest_freq_within(&w, t_at(FreqMHz(900)) - 1e-6)
        .unwrap();
    assert_eq!(f, FreqMHz(915));
    // Generous deadline -> the floor clock.
    assert_eq!(a100.slowest_freq_within(&w, 1e9), Some(a100.min_freq()));
    // Impossible deadline.
    assert_eq!(a100.slowest_freq_within(&w, 1e-9), None);
}

#[test]
fn workload_fusion_adds_work() {
    let a = Workload::new(10.0, 0.001, 0.8);
    let b = Workload::new(20.0, 0.002, 1.0);
    let f = a.fused(&b);
    assert_eq!(f.compute, 30.0);
    assert!((f.mem_time - 0.003).abs() < 1e-12);
    assert!(f.util > 0.8 && f.util < 1.0);
}

#[test]
fn device_runs_and_accumulates() {
    let mut gpu = SimGpu::new(GpuSpec::a100_pcie());
    let w = sample_workload();
    let (t, e) = gpu.run(&w);
    assert!((gpu.clock_s() - t).abs() < 1e-12);
    assert!((gpu.energy_counter_j() - e).abs() < 1e-12);
    gpu.block(0.5);
    assert!((gpu.clock_s() - t - 0.5).abs() < 1e-12);
    assert!((gpu.energy_counter_j() - e - 75.0 * 0.5).abs() < 1e-9);
}

#[test]
fn device_frequency_lock() {
    let mut gpu = SimGpu::new(GpuSpec::a100_pcie());
    assert_eq!(gpu.locked_freq(), FreqMHz(1410));
    gpu.set_frequency(FreqMHz(900)).unwrap();
    assert_eq!(gpu.locked_freq(), FreqMHz(900));
    assert_eq!(gpu.freq_set_count(), 1);
    // Redundant set is free.
    gpu.set_frequency(FreqMHz(900)).unwrap();
    assert_eq!(gpu.freq_set_count(), 1);
    assert!(matches!(
        gpu.set_frequency(FreqMHz(907)),
        Err(DeviceError::UnsupportedFrequency(_))
    ));
}

#[test]
fn device_throttling_slows_execution() {
    let w = sample_workload();
    let mut gpu = SimGpu::new(GpuSpec::a100_pcie());
    let (t_free, _) = gpu.run(&w);
    gpu.set_throttle_cap(Some(FreqMHz(705)));
    assert_eq!(gpu.effective_freq(), FreqMHz(705));
    let (t_throttled, _) = gpu.run(&w);
    assert!(t_throttled > t_free);
    gpu.set_throttle_cap(None);
    assert_eq!(gpu.effective_freq(), FreqMHz(1410));
}

#[test]
fn device_noise_is_reproducible() {
    let w = sample_workload();
    let run = |seed| {
        let mut gpu = SimGpu::new(GpuSpec::a100_pcie()).with_noise(NoiseModel::realistic(seed));
        gpu.run(&w)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn device_reset_counters() {
    let mut gpu = SimGpu::new(GpuSpec::a100_pcie());
    gpu.run(&sample_workload());
    gpu.reset_counters();
    assert_eq!(gpu.clock_s(), 0.0);
    assert_eq!(gpu.energy_counter_j(), 0.0);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_workload() -> impl Strategy<Value = Workload> {
        (0.1f64..500.0, 0.0f64..0.05, 0.3f64..1.0).prop_map(|(c, m, u)| Workload::new(c, m, u))
    }

    proptest! {
        #[test]
        fn pareto_set_nonempty_and_ordered(w in arb_workload()) {
            let spec = GpuSpec::a40();
            let pts = spec.pareto_points(&w);
            prop_assert!(!pts.is_empty());
            for pair in pts.windows(2) {
                prop_assert!(pair[0].time_s < pair[1].time_s);
                prop_assert!(pair[0].energy_j > pair[1].energy_j);
            }
        }

        #[test]
        fn slowest_freq_within_is_correct(w in arb_workload(), deadline in 0.0001f64..100.0) {
            let spec = GpuSpec::a100_pcie();
            match spec.slowest_freq_within(&w, deadline) {
                Some(f) => {
                    prop_assert!(spec.time(&w, f) <= deadline + 1e-9);
                    // One step slower would miss the deadline (if one exists).
                    if f > spec.min_freq() {
                        let slower = FreqMHz(f.0 - spec.step_mhz);
                        prop_assert!(spec.time(&w, slower) > deadline - 1e-9);
                    }
                }
                None => prop_assert!(spec.time(&w, spec.max_freq()) > deadline),
            }
        }

        #[test]
        fn energy_consistent_with_power_time(w in arb_workload()) {
            let spec = GpuSpec::a100_pcie();
            for f in [spec.min_freq(), FreqMHz(705), spec.max_freq()] {
                let e = spec.energy(&w, f);
                prop_assert!((e - spec.power(f, w.util) * spec.time(&w, f)).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn cap_zone_flattens_top_clocks() {
    // Above the knee, time barely improves while power keeps climbing —
    // the phenomenon that makes small slowdowns nearly free (Zeus's
    // power-limit observation).
    let a100 = GpuSpec::a100_pcie();
    let w = sample_workload();
    let knee = a100.clamp_freq(FreqMHz((a100.cap_knee * a100.max_freq_mhz as f64) as u32));
    let t_knee = a100.time(&w, knee);
    let t_max = a100.time(&w, a100.max_freq());
    let time_gain = t_knee / t_max - 1.0;
    let p_knee = a100.power(knee, w.util);
    let p_max = a100.power(a100.max_freq(), w.util);
    let power_cost = p_max / p_knee - 1.0;
    assert!(
        time_gain < 0.02,
        "knee -> max should buy <2% time: {time_gain:.3}"
    );
    assert!(
        power_cost > 2.0 * time_gain,
        "but cost real power: {power_cost:.3}"
    );
}

#[test]
fn perf_curve_is_monotone_and_normalized() {
    for spec in [GpuSpec::a100_pcie(), GpuSpec::a40(), GpuSpec::h100_sxm()] {
        let freqs = spec.frequencies();
        let mut prev = 0.0;
        for f in &freqs {
            let p = spec.perf_curve(*f);
            assert!(p > prev, "{}: perf curve must strictly increase", spec.name);
            prev = p;
        }
        assert!((spec.perf_curve(spec.max_freq()) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn min_energy_frequency_is_realistic() {
    // Zeus measured ~1005 MHz as the A100's typical minimum-energy clock;
    // the calibrated model should land in that neighborhood (0.6-0.85 of
    // max) for a typical compute-bound layer.
    let a100 = GpuSpec::a100_pcie();
    let w = sample_workload();
    let f_opt = a100.min_energy_freq(&w).as_f64() / a100.max_freq_mhz as f64;
    assert!(
        f_opt > 0.55 && f_opt < 0.85,
        "A100 f_opt/f_max = {f_opt:.2}"
    );
}

#[test]
fn clock_skew_shifts_time_and_floors_at_zero() {
    let mut gpu = SimGpu::new(GpuSpec::a100_pcie());
    gpu.run(&sample_workload());
    let t = gpu.clock_s();
    assert!(t > 0.0);
    gpu.apply_clock_skew(2.5);
    assert!((gpu.clock_s() - (t + 2.5)).abs() < 1e-12);
    // A backwards skew larger than the clock itself floors at zero — the
    // emulated NTP step never produces negative timestamps.
    gpu.apply_clock_skew(-1e9);
    assert_eq!(gpu.clock_s(), 0.0);
}

#[test]
fn power_state_default_model_validates_everywhere() {
    for gpu in [
        GpuSpec::a100_pcie(),
        GpuSpec::a100_sxm(),
        GpuSpec::a40(),
        GpuSpec::h100_sxm(),
        GpuSpec::v100(),
    ] {
        let model = PowerStateModel::default_for(&gpu);
        model.validate(&gpu).unwrap();
        for s in &model.states {
            assert!(s.power_w < gpu.blocking_w);
        }
    }
}

#[test]
fn power_state_validation_rejects_bad_states() {
    let gpu = GpuSpec::a100_pcie();
    let hot = PowerStateModel {
        states: vec![PowerState {
            name: "hot",
            power_w: gpu.blocking_w,
            entry_s: 0.0,
            exit_s: 0.0,
        }],
    };
    assert!(matches!(
        hot.validate(&gpu),
        Err(PowerStateError::InvalidPower { .. })
    ));
    let laggy = PowerStateModel {
        states: vec![PowerState {
            name: "laggy",
            power_w: 10.0,
            entry_s: -1.0,
            exit_s: 0.0,
        }],
    };
    assert!(matches!(
        laggy.validate(&gpu),
        Err(PowerStateError::InvalidLatency { .. })
    ));
    // Empty models are valid: they just never sleep.
    PowerStateModel::none().validate(&gpu).unwrap();
}

#[test]
fn power_state_best_for_amortizes_transitions() {
    let gpu = GpuSpec::a100_pcie();
    let model = PowerStateModel::default_for(&gpu);
    // Bubble shorter than every transition: no profitable state.
    assert!(model.best_for(0.001, gpu.blocking_w).is_none());
    // Medium bubble: the light state wins (deep can't amortize 100 ms).
    let (s, saved) = model.best_for(0.020, gpu.blocking_w).unwrap();
    assert_eq!(s.name, "clock-gate");
    assert!(saved > 0.0);
    // Long bubble: the deep state's lower draw dominates.
    let (s, deep_saved) = model.best_for(2.0, gpu.blocking_w).unwrap();
    assert_eq!(s.name, "deep-sleep");
    assert!(deep_saved > saved);
    // Savings formula matches the state's own accounting.
    assert!((deep_saved - s.saved_j(2.0, gpu.blocking_w)).abs() < 1e-12);
}

#[test]
fn power_state_model_persist_round_trips() {
    use perseus_store::{ByteReader, ByteWriter, Persist};

    let gpu = GpuSpec::a40();
    let model = PowerStateModel::default_for(&gpu);
    let mut w = ByteWriter::new();
    model.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes);
    let back = PowerStateModel::decode(&mut r).unwrap();
    assert_eq!(model, back);

    // Corrupt draw is rejected at decode time.
    let mut w = ByteWriter::new();
    PowerState {
        name: "nan",
        power_w: f64::NAN,
        entry_s: 0.0,
        exit_s: 0.0,
    }
    .encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes);
    assert!(PowerState::decode(&mut r).is_err());
}
