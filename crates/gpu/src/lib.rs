//! Simulated GPU substrate for Perseus.
//!
//! The paper controls execution speed by locking the GPU's SM frequency
//! through NVML (§3.2, footnote 2) and measures per-computation time and
//! energy. We have no physical GPUs (the training stack is absent), so this
//! crate substitutes an **analytic device model** that preserves the two
//! properties the Perseus algorithm actually consumes:
//!
//! 1. **Discrete frequency choices** with realistic ranges (A100:
//!    210–1410 MHz, A40: 210–1740 MHz, H100: 210–1980 MHz, 15 MHz steps)
//!    and a convex Pareto-optimal time–energy curve per computation with an
//!    *interior* minimum-energy frequency (§5: "profiled from the highest
//!    to the lowest ... stopped when energy consumption increases").
//! 2. A constant blocking power `P_blocking` drawn while the GPU waits on
//!    communication (Eq. 3).
//!
//! The time model splits a computation into a clock-proportional part and a
//! clock-insensitive part: `t(f) = w_c / f + t_m`. The power model is
//! `P(f) = P_static + (TDP − P_static) · util · (f / f_max)^α` with
//! `α ≈ 2.4` (dynamic power ∝ C·V²·f, with voltage rising with frequency).
//!
//! [`SimGpu`] wraps the model in an NVML-shaped device: lock/unlock SM
//! clocks with a ~10 ms set latency, run workloads, accumulate an energy
//! counter, and optionally inject measurement noise and thermal throttling.
//!
//! # Examples
//!
//! ```
//! use perseus_gpu::{GpuSpec, Workload};
//!
//! let a100 = GpuSpec::a100_pcie();
//! let w = Workload::new(40.0, 0.01, 0.9); // 40 MHz·s compute, 10 ms mem
//! let t_fast = a100.time(&w, a100.max_freq());
//! let t_slow = a100.time(&w, a100.min_freq());
//! assert!(t_fast < t_slow);
//! let f_opt = a100.min_energy_freq(&w);
//! assert!(f_opt > a100.min_freq() && f_opt < a100.max_freq());
//! ```

mod device;
mod model;
mod persist;
mod power_state;

pub use device::{DeviceError, NoiseModel, SimGpu};
pub use model::{FreqMHz, GpuSpec, ParetoPoint, Workload, CAP_ZONE_SLOPE};
pub use power_state::{PowerState, PowerStateError, PowerStateModel};

#[cfg(test)]
mod tests;
