//! Analytic GPU time/power/energy model.

use std::fmt;

/// An SM clock frequency in MHz.
///
/// NVML exposes the supported clocks as a discrete list; Perseus plans in
/// terms of these discrete values (§4.1 notes this discreteness is one
/// source of NP-hardness).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FreqMHz(pub u32);

impl FreqMHz {
    /// Frequency as `f64` MHz, for arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Debug for FreqMHz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

impl fmt::Display for FreqMHz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// One computation's execution characteristics, frequency-independent.
///
/// * `compute` — clock-proportional work in MHz·s: a computation with
///   `compute = 1410.0` takes one second of pure compute at 1410 MHz.
/// * `mem_time` — clock-insensitive seconds (memory stalls, kernel launch,
///   exposed communication); constant across frequencies.
/// * `util` — fraction of the dynamic power envelope this computation
///   exercises while running (0..=1]. Backward passes typically run hotter
///   than forward passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Clock-proportional work, in MHz·s.
    pub compute: f64,
    /// Clock-insensitive latency, in seconds.
    pub mem_time: f64,
    /// Dynamic-power utilization in (0, 1].
    pub util: f64,
}

impl Workload {
    /// Creates a workload; clamps `util` into `(0, 1]`.
    pub fn new(compute: f64, mem_time: f64, util: f64) -> Self {
        Workload {
            compute: compute.max(0.0),
            mem_time: mem_time.max(0.0),
            util: util.clamp(0.05, 1.0),
        }
    }

    /// A workload scaled by `k` (e.g. replicating a layer `k` times).
    pub fn scaled(&self, k: f64) -> Workload {
        Workload {
            compute: self.compute * k,
            mem_time: self.mem_time * k,
            util: self.util,
        }
    }

    /// Sum of two workloads executed back to back (utilization averaged,
    /// weighted by duration at a nominal 1 GHz clock, which keeps the
    /// MHz·s compute term and the seconds mem term commensurable).
    pub fn fused(&self, other: &Workload) -> Workload {
        const NOMINAL_MHZ: f64 = 1000.0;
        let wa = self.compute / NOMINAL_MHZ + self.mem_time;
        let wb = other.compute / NOMINAL_MHZ + other.mem_time;
        let total = (wa + wb).max(1e-12);
        Workload {
            compute: self.compute + other.compute,
            mem_time: self.mem_time + other.mem_time,
            util: (self.util * wa + other.util * wb) / total,
        }
    }
}

/// Marginal throughput slope above the cap knee: clocks past
/// `cap_knee · f_max` still speed execution up, but only at 12% of the
/// proportional rate. Strictly positive so execution time stays strictly
/// monotone in clock (real measurements never tie exactly, and §4.3's
/// slowest-frequency-within-deadline conversion relies on max frequency
/// being uniquely fastest).
pub const CAP_ZONE_SLOPE: f64 = 0.12;

/// A single (frequency, time, energy) operating point of a computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// SM frequency producing this point.
    pub freq: FreqMHz,
    /// Computation latency in seconds.
    pub time_s: f64,
    /// Computation energy in joules.
    pub energy_j: f64,
}

/// Static description of a GPU model: its supported SM frequencies and its
/// power envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"NVIDIA A100-PCIe-80GB"`.
    pub name: &'static str,
    /// Lowest supported SM clock (MHz).
    pub min_freq_mhz: u32,
    /// Highest supported SM clock (MHz).
    pub max_freq_mhz: u32,
    /// Clock step (MHz); NVIDIA GPUs expose 15 MHz steps.
    pub step_mhz: u32,
    /// Board power limit in watts.
    pub tdp_w: f64,
    /// Static (leakage + idle-active) power in watts, drawn whenever the
    /// SMs are clocked, regardless of frequency.
    pub static_w: f64,
    /// Power drawn while blocking on communication, in watts
    /// (`P_blocking` in Eq. 3). Between idle and static-active.
    pub blocking_w: f64,
    /// Dynamic-power exponent: `P_dyn ∝ (f/f_max)^α`.
    pub alpha: f64,
    /// Effective achievable FLOP/s per MHz of SM clock for large GEMM-heavy
    /// kernels (peak tensor throughput × sustained efficiency ÷ max clock).
    /// Converts model FLOP counts into clock-proportional work.
    pub flops_per_mhz_s: f64,
    /// Clock-to-throughput cap knee `x_c ∈ (0, 1]`: sustained throughput
    /// scales linearly with clock up to `x_c · f_max` and nearly flattens
    /// above (marginal gain [`CAP_ZONE_SLOPE`]) — power-limit throttling
    /// and memory walls make the top clock bins almost pure waste.
    /// `x_c = 1` recovers ideal linear scaling. This near-flat zone is
    /// what makes small slowdowns nearly free in time yet valuable in
    /// energy — the effect Perseus exploits (the Zeus paper measured it
    /// directly: cutting an A100's power limit well below TDP barely
    /// moves training throughput).
    pub cap_knee: f64,
}

impl GpuSpec {
    /// NVIDIA A100 PCIe 80 GB: 210–1410 MHz, 300 W (testbed GPU of §6.1).
    pub fn a100_pcie() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA A100-PCIe-80GB",
            min_freq_mhz: 210,
            max_freq_mhz: 1410,
            step_mhz: 15,
            tdp_w: 300.0,
            static_w: 105.0,
            blocking_w: 75.0,
            alpha: 2.6,
            flops_per_mhz_s: 1.0e11,
            cap_knee: 0.95,
        }
    }

    /// NVIDIA A100 SXM 80 GB: 210–1410 MHz, 400 W (used for the paper's
    /// large-scale emulation, §6.3).
    pub fn a100_sxm() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA A100-SXM-80GB",
            min_freq_mhz: 210,
            max_freq_mhz: 1410,
            step_mhz: 15,
            tdp_w: 400.0,
            static_w: 132.0,
            blocking_w: 85.0,
            alpha: 2.6,
            flops_per_mhz_s: 1.05e11,
            cap_knee: 0.93,
        }
    }

    /// NVIDIA A40 48 GB: 210–1740 MHz, 300 W (testbed GPU of §6.1). The
    /// wider clock range is why the paper reports larger savings on A40.
    pub fn a40() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA A40-48GB",
            min_freq_mhz: 210,
            max_freq_mhz: 1740,
            step_mhz: 15,
            tdp_w: 300.0,
            static_w: 98.0,
            blocking_w: 62.0,
            alpha: 3.1,
            flops_per_mhz_s: 3.6e10,
            cap_knee: 0.93,
        }
    }

    /// NVIDIA H100 SXM: 210–1980 MHz, 700 W (§6.2 projects better savings
    /// for newer GPUs with higher max clocks).
    pub fn h100_sxm() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA H100-SXM",
            min_freq_mhz: 210,
            max_freq_mhz: 1980,
            step_mhz: 15,
            tdp_w: 700.0,
            static_w: 185.0,
            blocking_w: 110.0,
            alpha: 3.0,
            flops_per_mhz_s: 2.0e11,
            cap_knee: 0.90,
        }
    }

    /// NVIDIA V100 SXM2: 135–1530 MHz, 300 W.
    pub fn v100() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA V100-SXM2-32GB",
            min_freq_mhz: 135,
            max_freq_mhz: 1530,
            step_mhz: 15,
            tdp_w: 300.0,
            static_w: 100.0,
            blocking_w: 60.0,
            alpha: 2.4,
            flops_per_mhz_s: 3.3e10,
            cap_knee: 0.96,
        }
    }

    /// Lowest supported frequency.
    pub fn min_freq(&self) -> FreqMHz {
        FreqMHz(self.min_freq_mhz)
    }

    /// Highest supported frequency.
    pub fn max_freq(&self) -> FreqMHz {
        FreqMHz(self.max_freq_mhz)
    }

    /// All supported SM frequencies, ascending.
    pub fn frequencies(&self) -> Vec<FreqMHz> {
        (self.min_freq_mhz..=self.max_freq_mhz)
            .step_by(self.step_mhz as usize)
            .map(FreqMHz)
            .collect()
    }

    /// True iff `f` is one of the supported clock steps.
    pub fn supports(&self, f: FreqMHz) -> bool {
        f.0 >= self.min_freq_mhz
            && f.0 <= self.max_freq_mhz
            && (f.0 - self.min_freq_mhz).is_multiple_of(self.step_mhz)
    }

    /// Clamps an arbitrary frequency to the nearest supported step.
    pub fn clamp_freq(&self, f: FreqMHz) -> FreqMHz {
        let c = f.0.clamp(self.min_freq_mhz, self.max_freq_mhz);
        let steps = (c - self.min_freq_mhz + self.step_mhz / 2) / self.step_mhz;
        FreqMHz(self.min_freq_mhz + steps * self.step_mhz)
    }

    /// Sustained-throughput multiplier at frequency `f`, normalized to 1 at
    /// `f_max`: linear in clock up to the cap knee, rising at
    /// [`CAP_ZONE_SLOPE`] above it.
    pub fn perf_curve(&self, f: FreqMHz) -> f64 {
        let x = f.as_f64() / self.max_freq_mhz as f64;
        let k = self.cap_knee;
        let raw = if x <= k {
            x
        } else {
            k + (x - k) * CAP_ZONE_SLOPE
        };
        raw / (k + (1.0 - k) * CAP_ZONE_SLOPE)
    }

    /// Latency of `w` at frequency `f`:
    /// `w.compute / (f_max · p(f/f_max)) + w.mem_time` — the
    /// clock-proportional part scales with *sustained* throughput, which
    /// saturates near the top clocks (see [`GpuSpec::cap_knee`]).
    pub fn time(&self, w: &Workload, f: FreqMHz) -> f64 {
        w.compute / (self.max_freq_mhz as f64 * self.perf_curve(f)) + w.mem_time
    }

    /// Average power while executing at `f` with utilization `util`.
    pub fn power(&self, f: FreqMHz, util: f64) -> f64 {
        let x = f.as_f64() / self.max_freq_mhz as f64;
        self.static_w + (self.tdp_w - self.static_w) * util * x.powf(self.alpha)
    }

    /// Energy of executing `w` at `f`, in joules.
    pub fn energy(&self, w: &Workload, f: FreqMHz) -> f64 {
        self.power(f, w.util) * self.time(w, f)
    }

    /// The frequency minimizing [`GpuSpec::energy`] for `w`.
    ///
    /// Because static power dominates at low clocks, this optimum is
    /// interior (above `min_freq`) for any compute-bound workload — the
    /// fact §5's profiler exploits by stopping its downward sweep when
    /// energy starts increasing.
    pub fn min_energy_freq(&self, w: &Workload) -> FreqMHz {
        let mut best = self.max_freq();
        let mut best_e = f64::INFINITY;
        for f in self.frequencies() {
            let e = self.energy(w, f);
            if e < best_e {
                best_e = e;
                best = f;
            }
        }
        best
    }

    /// The slowest frequency whose execution time does not exceed
    /// `deadline` seconds, or `None` if even `max_freq` is too slow.
    ///
    /// This is §4.3's "convert planned time to the slowest GPU frequency
    /// that executes *faster* than t": on the critical path, slightly fast
    /// is safe, slightly slow delays the whole DAG.
    pub fn slowest_freq_within(&self, w: &Workload, deadline: f64) -> Option<FreqMHz> {
        // time is monotone decreasing in f: binary search the frequency list.
        let freqs = self.frequencies();
        if self.time(w, *freqs.last().expect("non-empty table")) > deadline + 1e-12 {
            return None;
        }
        let (mut lo, mut hi) = (0usize, freqs.len() - 1);
        // Invariant: time(freqs[hi]) <= deadline.
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.time(w, freqs[mid]) <= deadline + 1e-12 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(freqs[hi])
    }

    /// All Pareto-optimal (time, energy) operating points of `w`,
    /// ascending in time (descending in frequency from `max_freq` down to
    /// the minimum-energy frequency).
    ///
    /// A point is kept iff no other frequency gives both less-or-equal time
    /// and strictly less energy.
    pub fn pareto_points(&self, w: &Workload) -> Vec<ParetoPoint> {
        let mut pts: Vec<ParetoPoint> = self
            .frequencies()
            .into_iter()
            .map(|f| ParetoPoint {
                freq: f,
                time_s: self.time(w, f),
                energy_j: self.energy(w, f),
            })
            .collect();
        // Ascending time == descending frequency.
        pts.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        let mut out: Vec<ParetoPoint> = Vec::with_capacity(pts.len());
        let mut best_e = f64::INFINITY;
        for p in pts {
            if p.energy_j < best_e {
                best_e = p.energy_j;
                out.push(p);
            }
        }
        out
    }
}
