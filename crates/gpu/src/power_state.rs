//! GPU idle power-state modeling for joint dynamic + static planning.
//!
//! Perseus only shapes *dynamic* energy: frequency planning trades compute
//! joules against time, but `P_static` burns unconditionally for the whole
//! makespan, so pipeline bubbles still waste energy no frequency plan can
//! touch. Kareus (the Chung/Chowdhury follow-up) closes that gap by putting
//! the GPU into a low-power idle state during bubbles that are long enough
//! to amortize the state's entry/exit latency.
//!
//! This module models the menu of idle states a device exposes:
//!
//! * [`PowerState`] — one idle state: residual power draw plus the latency
//!   to enter and leave it. Transitions are drawn at `P_blocking` (the GPU
//!   is awake but useless while ramping), so a bubble of length `L` saves
//!   `(P_blocking − power) · (L − entry − exit)` joules.
//! * [`PowerStateModel`] — the full menu, validated against a [`GpuSpec`]
//!   (a sleep state must draw *less* than blocking power, or "sleeping"
//!   would cost energy).
//!
//! The model is pure data: the planner queries [`PowerStateModel::best_for`]
//! per bubble and records the winning state in its sleep plan.
//!
//! # Examples
//!
//! ```
//! use perseus_gpu::{GpuSpec, PowerStateModel};
//!
//! let gpu = GpuSpec::a100_pcie();
//! let model = PowerStateModel::default_for(&gpu);
//! model.validate(&gpu).unwrap();
//! // A 10 ms bubble is worth a light doze, not a deep sleep.
//! let (state, saved) = model.best_for(0.010, gpu.blocking_w).unwrap();
//! assert_eq!(state.name, "clock-gate");
//! assert!(saved > 0.0);
//! // A 1 s bubble amortizes the deep state's 100 ms round-trip.
//! let (state, _) = model.best_for(1.0, gpu.blocking_w).unwrap();
//! assert_eq!(state.name, "deep-sleep");
//! ```

use std::fmt;

use crate::model::GpuSpec;

/// One idle power state: residual draw plus entry/exit latencies.
///
/// While *in* the state the device draws `power_w`; while transitioning in
/// or out it draws full blocking power (the clocks are ramping, nothing
/// useful runs). A bubble shorter than `entry_s + exit_s` cannot profit
/// from this state at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerState {
    /// Human-readable state name (e.g. `"clock-gate"`, `"deep-sleep"`).
    pub name: &'static str,
    /// Residual power draw while parked in this state, in watts.
    pub power_w: f64,
    /// Time to enter the state, in seconds (drawn at blocking power).
    pub entry_s: f64,
    /// Time to leave the state, in seconds (drawn at blocking power).
    pub exit_s: f64,
}

impl PowerState {
    /// Round-trip transition latency: the minimum bubble length that can
    /// even reach the parked state.
    pub fn transition_s(&self) -> f64 {
        self.entry_s + self.exit_s
    }

    /// Joules saved by parking in this state for a bubble of `bubble_s`
    /// seconds, versus idling at `p_blocking_w` the whole time.
    ///
    /// Returns a non-positive number when the bubble cannot amortize the
    /// transition or the state draws at least blocking power.
    pub fn saved_j(&self, bubble_s: f64, p_blocking_w: f64) -> f64 {
        (p_blocking_w - self.power_w) * (bubble_s - self.transition_s())
    }
}

/// Why a [`PowerStateModel`] was rejected for a given [`GpuSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum PowerStateError {
    /// The model has no states; a planner asked for sleep support anyway.
    Empty,
    /// A state's residual draw is negative, NaN, or at least blocking
    /// power (sleeping would save nothing, or "generate" energy).
    InvalidPower {
        /// Offending state name.
        state: String,
        /// Its residual draw, in watts.
        power_w: f64,
        /// The device's blocking power the draw must stay under.
        blocking_w: f64,
    },
    /// A state's entry or exit latency is negative or non-finite.
    InvalidLatency {
        /// Offending state name.
        state: String,
        /// Entry latency, in seconds.
        entry_s: f64,
        /// Exit latency, in seconds.
        exit_s: f64,
    },
}

impl fmt::Display for PowerStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerStateError::Empty => write!(f, "power-state model has no states"),
            PowerStateError::InvalidPower {
                state,
                power_w,
                blocking_w,
            } => write!(
                f,
                "power state {state:?} draws {power_w} W; must be in [0, {blocking_w}) W"
            ),
            PowerStateError::InvalidLatency {
                state,
                entry_s,
                exit_s,
            } => write!(
                f,
                "power state {state:?} has invalid entry/exit latency {entry_s}/{exit_s} s"
            ),
        }
    }
}

impl std::error::Error for PowerStateError {}

/// The menu of idle states a device can park in between computations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerStateModel {
    /// Available idle states, in no particular order.
    pub states: Vec<PowerState>,
}

impl PowerStateModel {
    /// A model with no states: planners degrade to frequency-only plans.
    pub fn none() -> Self {
        PowerStateModel { states: Vec::new() }
    }

    /// The default two-state menu for a device, scaled off its blocking
    /// power the same way the analytic power model scales off TDP:
    ///
    /// * `"clock-gate"` — light doze at 45% of blocking power, ~4 ms
    ///   round-trip; profitable in ordinary 1F1B bubbles.
    /// * `"deep-sleep"` — 12% of blocking power, 100 ms round-trip; only
    ///   pays off in the long bubbles of deep or imbalanced pipelines.
    pub fn default_for(gpu: &GpuSpec) -> Self {
        PowerStateModel {
            states: vec![
                PowerState {
                    name: "clock-gate",
                    power_w: 0.45 * gpu.blocking_w,
                    entry_s: 0.0015,
                    exit_s: 0.0025,
                },
                PowerState {
                    name: "deep-sleep",
                    power_w: 0.12 * gpu.blocking_w,
                    entry_s: 0.040,
                    exit_s: 0.060,
                },
            ],
        }
    }

    /// Check every state against the device's blocking power.
    ///
    /// An empty model is valid (it simply never sleeps); individual states
    /// must draw a finite `[0, blocking_w)` watts and have finite
    /// non-negative latencies.
    pub fn validate(&self, gpu: &GpuSpec) -> Result<(), PowerStateError> {
        for s in &self.states {
            if !s.power_w.is_finite() || s.power_w < 0.0 || s.power_w >= gpu.blocking_w {
                return Err(PowerStateError::InvalidPower {
                    state: s.name.to_string(),
                    power_w: s.power_w,
                    blocking_w: gpu.blocking_w,
                });
            }
            if !s.entry_s.is_finite() || !s.exit_s.is_finite() || s.entry_s < 0.0 || s.exit_s < 0.0
            {
                return Err(PowerStateError::InvalidLatency {
                    state: s.name.to_string(),
                    entry_s: s.entry_s,
                    exit_s: s.exit_s,
                });
            }
        }
        Ok(())
    }

    /// True when the model offers no states at all.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The most profitable state for a bubble of `bubble_s` seconds, with
    /// the joules it saves versus idling at `p_blocking_w`.
    ///
    /// Returns `None` when no state saves a strictly positive amount —
    /// either every transition is longer than the bubble, or the model is
    /// empty. Ties break toward the earlier state in the menu, keeping the
    /// choice deterministic across runs.
    pub fn best_for(&self, bubble_s: f64, p_blocking_w: f64) -> Option<(&PowerState, f64)> {
        let mut best: Option<(&PowerState, f64)> = None;
        for s in &self.states {
            let saved = s.saved_j(bubble_s, p_blocking_w);
            if saved <= 0.0 {
                continue;
            }
            match best {
                Some((_, b)) if b >= saved => {}
                _ => best = Some((s, saved)),
            }
        }
        best
    }
}
