//! NVML-shaped simulated device.
//!
//! Mirrors the subset of NVML that the Perseus client uses: lock the SM
//! clock (≈10 ms latency, §3.2 footnote 2), read an energy counter, and run
//! work. Adds two knobs real datacenters impose on you whether you like it
//! or not: measurement noise and thermal/power throttling (a straggler
//! source from §2.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

use crate::model::{FreqMHz, GpuSpec, Workload};

/// Multiplicative Gaussian measurement noise applied to simulated time and
/// energy readings.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Relative standard deviation of time readings (e.g. `0.01` = 1%).
    pub time_rel_sigma: f64,
    /// Relative standard deviation of energy readings.
    pub energy_rel_sigma: f64,
    /// RNG seed, so simulations are reproducible.
    pub seed: u64,
}

impl NoiseModel {
    /// A small, realistic noise level (±1% time, ±1.5% energy).
    pub fn realistic(seed: u64) -> NoiseModel {
        NoiseModel {
            time_rel_sigma: 0.01,
            energy_rel_sigma: 0.015,
            seed,
        }
    }
}

/// Errors from [`SimGpu`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The requested SM clock is not in the device's supported list.
    UnsupportedFrequency(FreqMHz),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnsupportedFrequency(x) => write!(f, "unsupported SM clock {x}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Default latency of an NVML `nvmlDeviceSetGpuLockedClocks` call.
pub const DEFAULT_FREQ_SET_LATENCY_S: f64 = 0.010;

/// A simulated GPU with a virtual clock and an energy counter.
///
/// All time is simulated: [`SimGpu::run`] advances the device's clock by
/// the model-predicted latency and charges the energy counter; nothing
/// sleeps. This keeps cluster-scale emulation fast and deterministic.
#[derive(Debug, Clone)]
pub struct SimGpu {
    spec: GpuSpec,
    locked: FreqMHz,
    throttle_cap: Option<FreqMHz>,
    clock_s: f64,
    energy_j: f64,
    freq_sets: u64,
    freq_set_latency_s: f64,
    noise: Option<(NoiseModel, StdRng)>,
}

impl SimGpu {
    /// Creates a device locked at its maximum frequency (the default mode
    /// of operation the paper measures savings against).
    pub fn new(spec: GpuSpec) -> SimGpu {
        let locked = spec.max_freq();
        SimGpu {
            spec,
            locked,
            throttle_cap: None,
            clock_s: 0.0,
            energy_j: 0.0,
            freq_sets: 0,
            freq_set_latency_s: DEFAULT_FREQ_SET_LATENCY_S,
            noise: None,
        }
    }

    /// Enables measurement noise.
    pub fn with_noise(mut self, noise: NoiseModel) -> SimGpu {
        self.noise = Some((noise, StdRng::seed_from_u64(noise.seed)));
        self
    }

    /// Static spec of this device.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Currently locked SM clock (before throttling).
    pub fn locked_freq(&self) -> FreqMHz {
        self.locked
    }

    /// The clock the silicon actually runs at: the locked clock, capped by
    /// any active thermal/power throttle.
    pub fn effective_freq(&self) -> FreqMHz {
        match self.throttle_cap {
            Some(cap) if cap < self.locked => cap,
            _ => self.locked,
        }
    }

    /// Simulated wall-clock time of this device, seconds.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Total energy consumed so far, joules (NVML's
    /// `nvmlDeviceGetTotalEnergyConsumption` equivalent).
    pub fn energy_counter_j(&self) -> f64 {
        self.energy_j
    }

    /// Number of frequency-set calls issued (overhead accounting, §6.5).
    pub fn freq_set_count(&self) -> u64 {
        self.freq_sets
    }

    /// Locks the SM clock, charging the NVML call latency. No-op (and free)
    /// if the clock is already at `f` — the asynchronous controller in the
    /// client relies on this.
    ///
    /// # Errors
    ///
    /// [`DeviceError::UnsupportedFrequency`] if `f` is not a supported step.
    pub fn set_frequency(&mut self, f: FreqMHz) -> Result<(), DeviceError> {
        if !self.spec.supports(f) {
            return Err(DeviceError::UnsupportedFrequency(f));
        }
        if f != self.locked {
            self.locked = f;
            self.freq_sets += 1;
            // The set call runs on the host; the GPU keeps idling meanwhile.
            self.clock_s += self.freq_set_latency_s;
            self.energy_j += self.spec.blocking_w * self.freq_set_latency_s;
        }
        Ok(())
    }

    /// Applies (or clears, with `None`) a thermal/power throttle cap. Used
    /// to inject §2.3-style stragglers.
    pub fn set_throttle_cap(&mut self, cap: Option<FreqMHz>) {
        self.throttle_cap = cap.map(|c| self.spec.clamp_freq(c));
    }

    /// Executes `w` at the effective clock; returns `(time_s, energy_j)` as
    /// the profiler would measure them (noise included if enabled) and
    /// advances the device clock and energy counter.
    pub fn run(&mut self, w: &Workload) -> (f64, f64) {
        let f = self.effective_freq();
        let mut t = self.spec.time(w, f);
        let mut e = self.spec.energy(w, f);
        if let Some((n, rng)) = &mut self.noise {
            t *= gaussian_factor(rng, n.time_rel_sigma);
            e *= gaussian_factor(rng, n.energy_rel_sigma);
        }
        self.clock_s += t;
        self.energy_j += e;
        (t, e)
    }

    /// Blocks on communication for `dur_s` seconds, charging
    /// `P_blocking · dur_s` joules.
    pub fn block(&mut self, dur_s: f64) {
        self.clock_s += dur_s;
        self.energy_j += self.spec.blocking_w * dur_s;
    }

    /// Skews the device's simulated wall clock by `skew_s` seconds
    /// (negative = backwards), clamping at zero. Fault injection for
    /// chaos testing: emulated timestamps drift the way mis-synchronized
    /// host clocks do, while the energy counter — a hardware accumulator,
    /// immune to host clock trouble — stays untouched.
    pub fn apply_clock_skew(&mut self, skew_s: f64) {
        self.clock_s = (self.clock_s + skew_s).max(0.0);
    }

    /// Resets clock and energy counter (not the locked frequency).
    pub fn reset_counters(&mut self) {
        self.clock_s = 0.0;
        self.energy_j = 0.0;
        self.freq_sets = 0;
    }
}

/// Multiplicative noise factor `max(0.5, 1 + N(0, sigma))`, via Box–Muller.
fn gaussian_factor(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (1.0 + sigma * z).max(0.5)
}
