//! Multi-iteration training-segment simulation (an extension beyond the
//! paper's per-iteration tables): replay a straggler *trace* — stragglers
//! appearing, changing degree, and recovering over the course of training —
//! and account energy iteration by iteration, including the cost of the
//! server's reaction latency.
//!
//! §2.3 notes stragglers are usually announced by the infrastructure; this
//! module quantifies what announcement latency is worth: while the server
//! has not reacted yet, non-straggler pipelines either waste energy
//! (straggler appeared, schedule still fast) or *become the straggler
//! themselves* (straggler recovered, schedule still slow).

use perseus_core::BloatLedger;

use crate::emulator::{Emulator, EmulatorError, Policy, StragglerCause};

/// One event of a straggler trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Iteration index at which the event takes effect.
    pub at_iteration: usize,
    /// Pipeline the event concerns.
    pub pipeline: usize,
    /// New cause, or `None` when the pipeline recovers.
    pub cause: Option<StragglerCause>,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Iterations to simulate.
    pub iterations: usize,
    /// Iterations between a straggler state change and the schedule that
    /// accounts for it reaching the clients (0 = instant reaction; the
    /// paper's lookup makes the server side effectively free, so this is
    /// dominated by notification/deployment latency).
    pub reaction_delay_iters: usize,
}

/// Per-iteration record of a simulated run.
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// Synchronized iteration time (everyone waits for the slowest).
    pub sync_time_s: f64,
    /// Cluster energy of this iteration, joules.
    pub energy_j: f64,
    /// The straggler iteration time the deployed schedule believed in.
    pub believed_t_prime_s: Option<f64>,
    /// The actual straggler iteration time.
    pub actual_t_prime_s: Option<f64>,
}

/// Aggregate result of a simulated training segment.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Policy that was simulated.
    pub policy: Policy,
    /// Total cluster energy over the segment, joules.
    pub total_energy_j: f64,
    /// Total wall-clock time of the segment, seconds.
    pub total_time_s: f64,
    /// Per-iteration records.
    pub per_iteration: Vec<IterationRecord>,
}

impl RunSummary {
    /// Average cluster power over the segment, watts.
    pub fn avg_power_w(&self) -> f64 {
        self.total_energy_j / self.total_time_s
    }
}

/// The straggler state a trace implies at any iteration: which pipelines
/// are slow, from what cause, and the worst effective `T'`. Extracted
/// from [`simulate_run`] so fault-injection harnesses replaying their own
/// event streams reuse the same replay semantics (events may arrive in
/// any order; later events for the same pipeline override earlier ones).
#[derive(Debug, Clone)]
pub struct StragglerTimeline {
    events: Vec<TraceEvent>,
}

impl StragglerTimeline {
    /// Builds a timeline from trace events (sorted internally; the sort
    /// is stable, so same-iteration events keep their submission order).
    pub fn new(trace: &[TraceEvent]) -> StragglerTimeline {
        let mut events = trace.to_vec();
        events.sort_by_key(|e| e.at_iteration);
        StragglerTimeline { events }
    }

    /// Straggler state per pipeline in effect at iteration `iter`.
    pub fn state_at(&self, iter: usize) -> Vec<(usize, StragglerCause)> {
        let mut active: std::collections::HashMap<usize, StragglerCause> =
            std::collections::HashMap::new();
        for e in self.events.iter().take_while(|e| e.at_iteration <= iter) {
            match e.cause {
                Some(c) => {
                    active.insert(e.pipeline, c);
                }
                None => {
                    active.remove(&e.pipeline);
                }
            }
        }
        active.into_iter().collect()
    }

    /// The effective straggler iteration time at `iter`: the worst `T'`
    /// over every active cause, or `None` with no straggler.
    ///
    /// # Errors
    ///
    /// Propagates emulation failures (e.g. invalid straggler degrees).
    pub fn t_prime_at(&self, emu: &Emulator, iter: usize) -> Result<Option<f64>, EmulatorError> {
        let mut worst: Option<f64> = None;
        for (_, cause) in self.state_at(iter) {
            let t = emu.straggler_iteration_time(cause)?;
            worst = Some(worst.map_or(t, |w: f64| w.max(t)));
        }
        Ok(worst)
    }
}

/// Simulates `cfg.iterations` synchronized iterations of `emu`'s cluster
/// under `policy`, replaying `trace` (events may arrive in any order;
/// later events for the same pipeline override earlier ones).
///
/// The straggler itself always runs at maximum frequency; `policy` governs
/// the non-straggler pipelines, reacting to trace events after
/// `cfg.reaction_delay_iters` iterations.
///
/// # Errors
///
/// Propagates emulation failures (e.g. invalid straggler degrees).
pub fn simulate_run(
    emu: &Emulator,
    policy: Policy,
    trace: &[TraceEvent],
    cfg: &RunConfig,
) -> Result<RunSummary, EmulatorError> {
    simulate_run_impl(emu, policy, trace, cfg, None, None)
}

/// Like [`simulate_run`], but each iteration's energy is additionally
/// attributed into `ledger` (useful / intrinsic / extrinsic, per stage and
/// per instruction kind) via [`Emulator::attribute_with_belief`].
///
/// Attribution is observation only: the returned [`RunSummary`] is
/// bit-identical to [`simulate_run`]'s for the same inputs.
///
/// # Errors
///
/// Propagates emulation failures (e.g. invalid straggler degrees).
pub fn simulate_run_with_ledger(
    emu: &Emulator,
    policy: Policy,
    trace: &[TraceEvent],
    cfg: &RunConfig,
    ledger: &mut BloatLedger,
) -> Result<RunSummary, EmulatorError> {
    simulate_run_impl(emu, policy, trace, cfg, Some(ledger), None)
}

/// Like [`simulate_run`], but each iteration is additionally fed into the
/// streaming observability pipeline `obs` (time series, drift detectors,
/// SLOs) as an [`perseus_telemetry::IterationSample`].
///
/// Observation only: the pipeline reads the same per-iteration numbers
/// the summary reports and never steers the run — the returned
/// [`RunSummary`] is bit-identical to [`simulate_run`]'s for the same
/// inputs.
///
/// # Errors
///
/// Propagates emulation failures (e.g. invalid straggler degrees).
pub fn simulate_run_observed(
    emu: &Emulator,
    policy: Policy,
    trace: &[TraceEvent],
    cfg: &RunConfig,
    obs: &perseus_telemetry::ObsPipeline,
) -> Result<RunSummary, EmulatorError> {
    simulate_run_impl(emu, policy, trace, cfg, None, Some(obs))
}

fn simulate_run_impl(
    emu: &Emulator,
    policy: Policy,
    trace: &[TraceEvent],
    cfg: &RunConfig,
    mut ledger: Option<&mut BloatLedger>,
    obs: Option<&perseus_telemetry::ObsPipeline>,
) -> Result<RunSummary, EmulatorError> {
    let tel = emu.telemetry();
    let _span = perseus_telemetry::span!(tel, "simulate_run", policy = policy);
    let timeline = StragglerTimeline::new(trace);
    let mut per_iteration = Vec::with_capacity(cfg.iterations);
    let mut total_energy = 0.0;
    let mut total_time = 0.0;
    // Per-stage busy/idle accumulators, flushed to telemetry at the end of
    // the run (pure observation; never feeds back into the simulation).
    let mut stage_busy = vec![0.0_f64; emu.config().n_stages];
    let mut stage_idle = vec![0.0_f64; emu.config().n_stages];
    for iter in 0..cfg.iterations {
        let actual = timeline.t_prime_at(emu, iter)?;
        let believed = timeline.t_prime_at(emu, iter.saturating_sub(cfg.reaction_delay_iters))?;
        let report = emu.report_with_belief(policy, believed, actual)?;
        total_energy += report.total_j();
        total_time += report.sync_time_s;
        if tel.is_enabled() {
            accumulate_stage_occupancy(
                emu,
                policy,
                believed,
                report.sync_time_s,
                &mut stage_busy,
                &mut stage_idle,
            )?;
        }
        if ledger.is_some() || obs.is_some() {
            let attribution = emu.attribute_with_belief(policy, believed, actual)?;
            if let Some(obs) = obs {
                let breakdown = attribution.total();
                let plan = emu.plan_of(policy)?;
                let schedule = plan.select(believed);
                let (mut freq_min, mut freq_max) = (u32::MAX, 0u32);
                for freq in schedule.freqs.iter().flatten() {
                    freq_min = freq_min.min(freq.0);
                    freq_max = freq_max.max(freq.0);
                }
                obs.ingest(&perseus_telemetry::IterationSample {
                    iteration: iter as u64,
                    sync_time_s: report.sync_time_s,
                    useful_j: breakdown.useful_j,
                    intrinsic_j: breakdown.intrinsic_j,
                    extrinsic_j: breakdown.extrinsic_j,
                    freq_min_mhz: if freq_min == u32::MAX { 0 } else { freq_min },
                    freq_max_mhz: freq_max,
                    degraded: false,
                    degraded_lookups: 0,
                    faults: 0,
                });
            }
            if let Some(ledger) = ledger.as_deref_mut() {
                attribution.record_into(ledger);
            }
        }
        per_iteration.push(IterationRecord {
            sync_time_s: report.sync_time_s,
            energy_j: report.total_j(),
            believed_t_prime_s: believed,
            actual_t_prime_s: actual,
        });
    }
    if tel.is_enabled() {
        let policy_name = policy.name();
        tel.counter_with(
            "perseus_emulator_iterations_total",
            &[("policy", policy_name)],
        )
        .add(cfg.iterations as u64);
        for (stage, (busy, idle)) in stage_busy.iter().zip(&stage_idle).enumerate() {
            let stage_label = stage.to_string();
            let labels = [("policy", policy_name), ("stage", stage_label.as_str())];
            tel.float_counter_with("perseus_emulator_stage_busy_seconds_total", &labels)
                .add(*busy);
            tel.float_counter_with("perseus_emulator_stage_idle_seconds_total", &labels)
                .add(*idle);
        }
    }
    Ok(RunSummary {
        policy,
        total_energy_j: total_energy,
        total_time_s: total_time,
        per_iteration,
    })
}

/// Adds one iteration's per-stage busy time (the planned computation
/// durations of the deployed schedule) and idle time (the remainder of the
/// synchronized iteration) into the accumulators.
fn accumulate_stage_occupancy(
    emu: &Emulator,
    policy: Policy,
    believed_t_prime: Option<f64>,
    sync_time_s: f64,
    stage_busy: &mut [f64],
    stage_idle: &mut [f64],
) -> Result<(), EmulatorError> {
    let ctx = emu.ctx();
    let plan = emu.plan_of(policy)?;
    let schedule = plan.select(believed_t_prime);
    let n_stages = stage_busy.len().max(1);
    let mut busy_now = vec![0.0_f64; n_stages];
    for info in ctx.plan_info.iter().flatten() {
        // Interleaved schedules fold virtual stages back onto the physical
        // stage index.
        busy_now[info.key.stage % n_stages] += schedule.realized_dur[info.node.index()];
    }
    for (stage, busy) in busy_now.iter().enumerate() {
        stage_busy[stage] += busy;
        stage_idle[stage] += (sync_time_s - busy).max(0.0);
    }
    Ok(())
}

/// A synthetic thermal-cycling trace: `pipeline` throttles to
/// `degree` every `period` iterations for `duty` iterations (datacenter
/// hot spots oscillate like this, §2.3).
pub fn thermal_cycle_trace(
    pipeline: usize,
    degree: f64,
    period: usize,
    duty: usize,
    iterations: usize,
) -> Vec<TraceEvent> {
    let mut trace = Vec::new();
    let mut at = 0;
    while at < iterations {
        trace.push(TraceEvent {
            at_iteration: at,
            pipeline,
            cause: Some(StragglerCause::Slowdown { degree }),
        });
        trace.push(TraceEvent {
            at_iteration: (at + duty).min(iterations),
            pipeline,
            cause: None,
        });
        at += period;
    }
    trace
}
